"""Ablation — link-weight schemes (DESIGN.md §6).

The paper chooses exponentially growing weights (c1=e^0, c2=e^1, c3=e^3)
"to reflect the increasing cost of high-density, high-speed switches".
This ablation compares the paper's weights against gentler exponential and
linear schemes: steeper weights localize traffic harder, pushing a larger
share of the remaining traffic down to the rack level.
"""

import pytest

from conftest import canonical_config
from repro.sim import build_environment, run_experiment

SCHEMES = ["paper", "exponential", "linear"]


def _run(weights: str):
    config = canonical_config("sparse", policy="hlf", weights=weights)
    env = build_environment(config)
    result = run_experiment(config, environment=env)
    by_level = env.cost_model.traffic_by_level(env.allocation, env.traffic)
    total = sum(by_level.values())
    core_share = by_level[3] / total if total else 0.0
    local_share = (by_level[0] + by_level[1]) / total if total else 0.0
    return result, core_share, local_share


@pytest.mark.parametrize("weights", SCHEMES)
def test_ablation_link_weights(benchmark, emit, weights):
    result, core_share, local_share = benchmark.pedantic(
        _run, args=(weights,), rounds=1, iterations=1
    )
    emit(
        f"[Ablation weights] {weights:12s} cost_reduction={result.report.cost_reduction:.0%} "
        f"final core-traffic share={core_share:.1%} "
        f"rack-local share={local_share:.1%} "
        f"migrations={result.report.total_migrations}"
    )
    # Any increasing weight scheme must still localize most traffic.
    assert local_share > 0.5
    assert result.report.cost_reduction > 0.3


def test_ablation_steeper_weights_localize_harder(benchmark, emit):
    def _compare():
        return {w: _run(w) for w in ("paper", "linear")}

    results = benchmark.pedantic(_compare, rounds=1, iterations=1)
    paper_core = results["paper"][1]
    linear_core = results["linear"][1]
    emit(
        f"[Ablation weights] final core-traffic share: paper={paper_core:.2%} "
        f"linear={linear_core:.2%} (steeper weights should not leave more "
        f"traffic in the core)"
    )
    assert paper_core <= linear_core + 0.02
