"""Fig. 2 — Ratio of migrated VMs in 5 consecutive token iterations.

Paper result: the ratio plummets after the second iteration; S-CORE
converges to a stable allocation within ~2 rounds for both RR and HLF.
"""

import pytest

from conftest import canonical_config
from repro.sim import run_experiment


def _run(policy: str):
    config = canonical_config("sparse", policy=policy, n_iterations=5)
    return run_experiment(config)


@pytest.mark.parametrize("policy", ["rr", "hlf"])
def test_fig2_migrated_vm_ratio(benchmark, emit, policy):
    result = benchmark.pedantic(_run, args=(policy,), rounds=1, iterations=1)
    series = result.report.migrated_ratio_series()
    emit(
        f"[Fig 2] policy={policy}  migrated-VM ratio per iteration: "
        + "  ".join(f"it{i}:{r:.3f}" for i, r in series)
    )
    ratios = [r for _, r in series]
    # Paper shape: sharp drop after iteration 2, near-zero tail.
    assert ratios[0] > ratios[2]
    assert ratios[-1] <= 0.1
    assert ratios[2] <= 0.5 * max(ratios[0], 1e-9)
