"""Scalability — the 'S' in S-CORE.

The paper's scalability argument is architectural: each decision uses only
VM-local state, and the token is 5 bytes per VM.  This bench quantifies
both: per-token-hold decision time must stay roughly flat as the DC grows
(the per-VM work depends on the VM's degree, not on |V|), and the token
wire size must grow exactly linearly at 5 bytes/VM.
"""

import time

import pytest

from conftest import canonical_config
from repro.core.token import Token
from repro.sim import build_environment, run_experiment

SCALES = [8, 16, 32]  # racks; hosts = racks * 4


def _per_hold_times():
    rows = []
    for racks in SCALES:
        config = canonical_config(
            "sparse", n_racks=racks, tors_per_agg=4, policy="rr", n_iterations=2
        )
        env = build_environment(config)
        n_vms = env.allocation.n_vms
        t0 = time.perf_counter()
        result = run_experiment(config, environment=env)
        elapsed = time.perf_counter() - t0
        holds = sum(stats.visits for stats in result.report.iterations)
        rows.append((racks, n_vms, elapsed / holds * 1e6))
    return rows


def test_scalability_per_hold_decision_time(benchmark, emit):
    rows = benchmark.pedantic(_per_hold_times, rounds=1, iterations=1)
    emit(
        "[Scalability] per-token-hold decision time: "
        + "  ".join(f"{racks}racks/{vms}vms:{us:.0f}us" for racks, vms, us in rows)
    )
    smallest = rows[0][2]
    largest = rows[-1][2]
    # 4x the DC must not make a single decision 4x slower: the work is
    # degree-local, not global.
    assert largest < 3.0 * smallest


def test_scalability_token_wire_size(benchmark, emit):
    def _sizes():
        return [(n, Token(range(1, n + 1)).wire_size) for n in (100, 1000, 10000)]

    sizes = benchmark.pedantic(_sizes, rounds=1, iterations=1)
    emit(
        "[Scalability] token wire size: "
        + "  ".join(f"{n}vms:{size}B" for n, size in sizes)
    )
    for n, size in sizes:
        assert size == 5 * n  # u32 ID + u8 level per entry (§V-B2)
