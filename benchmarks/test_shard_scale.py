"""Hyperscale sharded-scheduler benchmark (``paper_canonical_sharded``).

Runs one S-CORE iteration on a canonical tree twenty times the paper's
published scale — 52,000 hosts / ~707k VMs — twice: through the default
single-domain wave engine, and through the sharded coordinator
(``repro.shard``: community partition -> per-domain wave engines ->
cross-domain reconciliation).  Records both wall-clocks, the sharded
run's per-phase split (partition / domain-build / domain-solve / merge /
reconcile) and the headline ``speedup_vs_single_domain`` into
``BENCH_fastcost.json``.

The speedup on a single-core runner comes from decomposition, not
parallelism: candidate probing scales with the *global* rack count, so
96 pod-aligned domains of ~27 racks each do a small fraction of the
dense grid work the 2600-rack global engine does — forked workers
stack on top when cores exist.

``paper_canonical_sharded_parallel`` adds the multicore headline: the
same hyperscale run through the 8-worker shared-memory executor
(zero-copy slab transport + pipelined merge), pinned bit-exact to the
serial sharded reference; its wall-clock floors only gate on runners
that actually have the cores.
"""

from __future__ import annotations

import gc
import json
import os
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.cluster.allocation import Allocation
from repro.cluster.cluster import Cluster
from repro.cluster.manager import PlacementManager
from repro.cluster.server import ServerCapacity
from repro.core.cost import CostModel, LinkWeights
from repro.core.fastcost import FastCostEngine
from repro.core.migration import MigrationEngine
from repro.core.policies import policy_by_name
from repro.core.scheduler import SCOREScheduler
from repro.topology.tree import CanonicalTree
from repro.traffic.matrix import TrafficMatrix

#: 20x the paper's canonical tree: 2600 racks x 20 hosts = 52,000 hosts,
#: 260 pods of 200 hosts; 16 slots/host at 0.85 fill -> 707,200 VMs.
N_RACKS = 2600
HOSTS_PER_RACK = 20
TORS_PER_AGG = 10
N_CORES = 4
VMS_PER_HOST = 16
FILL = 0.85

#: Domain cap: a few pods (~27 racks) per domain.  Small domains slash
#: the dense grid work (it scales with the local rack count) but pay a
#: fixed cost per wave; the measured build+solve knee is flat between
#: 48 and 192 domains here, with the fewest-waves side slightly ahead.
N_DOMAINS = 96

#: Acceptance floor: the full sharded pipeline (partition + build +
#: solve + merge + reconcile) must beat the single-domain iteration.
SHARD_SPEEDUP_FLOOR = 2.0

@contextmanager
def _gc_quiesced():
    """Run a timed region with the cyclic GC off (collect first).

    The domain fleet makes millions of allocations, and inside a full
    suite run each one risks a gen-2 pass over every object the earlier
    tests left behind — seconds of wall-clock that say nothing about the
    code under test (the standalone speedup measured ~2.4x where the
    in-suite one sagged below 2x).  Both sides of every recorded ratio
    run under this same regime, so the comparison stays fair on any
    runner.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_fastcost.json")
SCHEMA = "repro-bench/fastcost/v1"


def _write_report(record: dict) -> None:
    """Merge one record into the shared JSON report (keyed by name)."""
    report = {"schema": SCHEMA, "results": []}
    if os.path.exists(REPORT_PATH):
        try:
            with open(REPORT_PATH) as fh:
                existing = json.load(fh)
            if existing.get("schema") == SCHEMA:
                report = existing
        except (OSError, ValueError):
            pass
    report["results"] = [
        r for r in report.get("results", []) if r.get("name") != record["name"]
    ] + [record]
    report["results"].sort(key=lambda r: r["name"])
    with open(REPORT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _build_hyperscale(seed: int = 0, cross_fraction: float = 0.01):
    """52k-host environment with pod-aligned community traffic.

    Everything is built through numpy (deterministic modulo placement,
    per-pod pair sampling) — the generic random-placement path spends
    its time in python loops that dominate the bench at this scale.
    """
    topology = CanonicalTree(
        n_racks=N_RACKS,
        hosts_per_rack=HOSTS_PER_RACK,
        tors_per_agg=TORS_PER_AGG,
        n_cores=N_CORES,
    )
    capacity = ServerCapacity(
        max_vms=VMS_PER_HOST,
        ram_mb=VMS_PER_HOST * 512,
        cpu=max(1.0, VMS_PER_HOST * 0.25),
    )
    cluster = Cluster(topology, capacity)
    manager = PlacementManager(cluster)
    n_hosts = topology.n_hosts
    n_vms = int(n_hosts * VMS_PER_HOST * FILL)
    vms = manager.create_vms(n_vms, ram_mb=512, cpu=0.25)
    allocation = Allocation(cluster)
    hosts = (np.arange(n_vms) % n_hosts).tolist()
    allocation.add_vms(vms, hosts)

    # Community traffic aligned to pods: each VM talks to ~1.1 random
    # peers inside its own pod, plus a small cross-pod tail so the
    # reconciliation pass has real boundary work.
    rng = np.random.default_rng(seed)
    vm_ids = np.array([vm.vm_id for vm in vms])
    hosts_per_pod = HOSTS_PER_RACK * TORS_PER_AGG
    pod_of_vm = (np.asarray(hosts) // hosts_per_pod).astype(np.int64)
    order = np.argsort(pod_of_vm, kind="stable")
    sorted_ids = vm_ids[order]
    counts = np.bincount(pod_of_vm)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    us_parts, vs_parts = [], []
    for pod in range(len(counts)):
        members = sorted_ids[offsets[pod] : offsets[pod + 1]]
        n_pairs = int(len(members) * 1.1)
        u = members[rng.integers(0, len(members), n_pairs)]
        v = members[rng.integers(0, len(members), n_pairs)]
        keep = u != v
        us_parts.append(np.minimum(u[keep], v[keep]))
        vs_parts.append(np.maximum(u[keep], v[keep]))
    n_cross = int(n_vms * cross_fraction)
    u = vm_ids[rng.integers(0, n_vms, n_cross)]
    v = vm_ids[rng.integers(0, n_vms, n_cross)]
    keep = u != v
    us_parts.append(np.minimum(u[keep], v[keep]))
    vs_parts.append(np.maximum(u[keep], v[keep]))
    us = np.concatenate(us_parts)
    vs = np.concatenate(vs_parts)
    key = us * np.int64(n_vms) + vs
    _, first = np.unique(key, return_index=True)
    us, vs = us[first], vs[first]
    rates = rng.uniform(1e5, 1e7, len(us))
    traffic = TrafficMatrix.from_pair_arrays(us, vs, rates)
    cost_model = CostModel(topology, LinkWeights.paper())
    return allocation, traffic, cost_model


def _make_scheduler(allocation, traffic, cost_model, **kwargs):
    return SCOREScheduler(
        allocation,
        traffic,
        policy_by_name("rr"),
        MigrationEngine(cost_model),
        **kwargs,
    )


@pytest.mark.smoke
@pytest.mark.slow
def test_sharded_iteration_at_hyperscale(emit):
    t0 = time.perf_counter()
    alloc_single, traffic_single, cm_single = _build_hyperscale()
    build_s = time.perf_counter() - t0
    alloc_sharded, traffic_sharded, cm_sharded = _build_hyperscale()

    single = _make_scheduler(alloc_single, traffic_single, cm_single)
    with _gc_quiesced():
        t1 = time.perf_counter()
        r_single = single.run(n_iterations=1)
        single_s = time.perf_counter() - t1

    sharded = _make_scheduler(
        alloc_sharded,
        traffic_sharded,
        cm_sharded,
        use_sharding=True,
        n_domains=N_DOMAINS,
        n_workers=1,
        # One-shot rounds never warm the per-domain score caches, so the
        # cache bookkeeping is pure overhead here; the cached/uncached
        # wave trajectories are pinned identical in tests.
        use_round_cache=False,
    )
    profile = sharded.enable_profiling()
    with _gc_quiesced():
        t2 = time.perf_counter()
        r_sharded = sharded.run(n_iterations=1)
        sharded_s = time.perf_counter() - t2

    # Exactness at scale: the incrementally maintained global cost must
    # match a from-scratch snapshot of the final allocation.
    fresh = FastCostEngine(alloc_sharded, traffic_sharded)
    assert r_sharded.final_cost == pytest.approx(
        fresh.total_cost(), rel=1e-6
    )

    speedup = single_s / sharded_s
    shard_phases = {
        name: round(secs, 3) for name, secs in sorted(profile.seconds.items())
    }
    record = {
        "name": "paper_canonical_sharded",
        "topology": "canonical",
        "n_hosts": alloc_single.topology.n_hosts,
        "n_vms": alloc_single.n_vms,
        "n_pairs": traffic_single.n_pairs,
        "n_domains": N_DOMAINS,
        "build_s": round(build_s, 3),
        "single_iteration_s": round(single_s, 3),
        "sharded_iteration_s": round(sharded_s, 3),
        "speedup_vs_single_domain": round(speedup, 1),
        "phases": shard_phases,
        "initial_cost": r_sharded.initial_cost,
        "single_final_cost": r_single.final_cost,
        "sharded_final_cost": r_sharded.final_cost,
        "migrations_single": r_single.total_migrations,
        "migrations_sharded": r_sharded.total_migrations,
    }
    _write_report(record)
    emit(
        f"[hyperscale] {alloc_single.n_vms} VMs on "
        f"{alloc_single.topology.n_hosts} hosts, "
        f"{traffic_single.n_pairs} pairs, {N_DOMAINS} domains",
        f"[hyperscale]   single {single_s:7.2f}s   sharded {sharded_s:7.2f}s"
        f"   speedup {speedup:.1f}x",
        f"[hyperscale]   phases "
        + "  ".join(f"{k} {v:.2f}s" for k, v in shard_phases.items()),
        f"[hyperscale]   cost {r_sharded.initial_cost:.3e} -> "
        f"single {r_single.final_cost:.3e} / "
        f"sharded {r_sharded.final_cost:.3e}",
    )

    assert r_single.initial_cost == pytest.approx(r_sharded.initial_cost)
    assert r_single.final_cost < r_single.initial_cost
    assert r_sharded.final_cost < r_sharded.initial_cost
    assert speedup >= SHARD_SPEEDUP_FLOOR, (
        f"sharded pipeline {sharded_s:.1f}s vs single-domain "
        f"{single_s:.1f}s -> {speedup:.2f}x; "
        f">= {SHARD_SPEEDUP_FLOOR:.0f}x is required"
    )


#: Acceptance floors for the parallel executor — only asserted when the
#: runner actually has the cores (the record is written regardless, and
#: the serial/parallel bit-exact differential always runs).
PARALLEL_SPEEDUP_FLOOR = 2.5
PARALLEL_SPEEDUP_CORES = 8
EFFICIENCY_FLOOR = 0.6
EFFICIENCY_CORES = 4


def _run_sharded_hyperscale(n_workers: int, n_iterations: int = 2):
    """One fresh hyperscale build + a profiled sharded run."""
    allocation, traffic, cost_model = _build_hyperscale()
    scheduler = _make_scheduler(
        allocation,
        traffic,
        cost_model,
        use_sharding=True,
        n_domains=N_DOMAINS,
        n_workers=n_workers,
        use_round_cache=False,
    )
    profile = scheduler.enable_profiling()
    with _gc_quiesced():
        t0 = time.perf_counter()
        report = scheduler.run(n_iterations=n_iterations)
        wall_s = time.perf_counter() - t0
    scheduler.close()
    return allocation, report, profile, wall_s


@pytest.mark.smoke
@pytest.mark.slow
def test_sharded_parallel_at_hyperscale(emit):
    """The multicore headline: 8 shm workers vs the serial sharded run.

    Two identical 52k-host builds run the same two sharded iterations —
    one through the in-process :class:`SerialExecutor`, one through the
    8-worker shared-memory executor with the pipelined merge — and the
    final mapping and cost are pinned **exactly** equal (the canonical
    domain-major merge order makes the parallel gather deterministic).
    Wall-clock floors only apply when the runner has the cores; the
    ``paper_canonical_sharded_parallel`` record is written either way.
    """
    cores = len(os.sched_getaffinity(0))

    alloc_serial, r_serial, prof_serial, serial_s = _run_sharded_hyperscale(1)
    alloc_par, r_par, prof_par, par_s = _run_sharded_hyperscale(8)

    # The bit-exact differential — always asserted, any core count.
    assert r_par.final_cost == r_serial.final_cost
    assert r_par.total_migrations == r_serial.total_migrations
    assert alloc_par.as_dict() == alloc_serial.as_dict()

    speedup = serial_s / par_s
    serial_solve = prof_serial.seconds.get("domain-solve", 0.0)
    imbalance = prof_par.gauges.get("shard-imbalance", 1.0)

    efficiency_4w = None
    if cores >= EFFICIENCY_CORES:
        _, r_4w, prof_4w, wall_4w = _run_sharded_hyperscale(4)
        assert r_4w.final_cost == r_serial.final_cost
        par_solve = prof_4w.seconds.get("domain-solve", 0.0)
        if par_solve > 0:
            efficiency_4w = serial_solve / (4 * par_solve)

    record = {
        "name": "paper_canonical_sharded_parallel",
        "topology": "canonical",
        "n_hosts": alloc_serial.topology.n_hosts,
        "n_vms": alloc_serial.n_vms,
        "n_domains": N_DOMAINS,
        "n_iterations": 2,
        "cores": cores,
        "executor": r_par.shard_executor,
        "serial_sharded_s": round(serial_s, 3),
        "shm_8workers_s": round(par_s, 3),
        "speedup_8workers_vs_serial_sharded": round(speedup, 2),
        "scaling_efficiency_4workers": (
            round(efficiency_4w, 3) if efficiency_4w is not None else None
        ),
        "imbalance": round(float(imbalance), 3),
        "phases": {
            name: round(secs, 3)
            for name, secs in sorted(prof_par.seconds.items())
        },
        "final_cost": r_par.final_cost,
        "migrations": r_par.total_migrations,
        "bit_exact_vs_serial": True,
    }
    _write_report(record)
    emit(
        f"[parallel] {alloc_serial.n_vms} VMs, {N_DOMAINS} domains, "
        f"{cores} core(s): serial sharded {serial_s:7.2f}s   "
        f"shm x8 {par_s:7.2f}s   speedup {speedup:.2f}x",
        f"[parallel]   executor {r_par.shard_executor}   "
        f"imbalance {imbalance:.2f}   efficiency@4w "
        + (f"{efficiency_4w:.2f}" if efficiency_4w is not None else "n/a"),
        f"[parallel]   bit-exact vs serial: cost {r_par.final_cost:.6e}, "
        f"{r_par.total_migrations} migrations",
    )

    if cores >= PARALLEL_SPEEDUP_CORES:
        assert speedup >= PARALLEL_SPEEDUP_FLOOR, (
            f"8-worker shm run {par_s:.1f}s vs serial sharded "
            f"{serial_s:.1f}s -> {speedup:.2f}x on {cores} cores; "
            f">= {PARALLEL_SPEEDUP_FLOOR}x is required"
        )
    if efficiency_4w is not None:
        assert efficiency_4w >= EFFICIENCY_FLOOR, (
            f"per-worker scaling efficiency {efficiency_4w:.2f} at 4 "
            f"workers on {cores} cores; >= {EFFICIENCY_FLOOR} is required"
        )
