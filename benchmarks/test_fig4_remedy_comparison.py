"""Fig. 4 — S-CORE vs Remedy under a stressed sparse TM.

(a) link-utilization CDFs at core and aggregation layers: S-CORE greatly
reduces upper-layer utilization, Remedy only marginally (it balances load
instead of localizing it);
(b) communication-cost ratio over time: S-CORE improves the cost
substantially (paper: ~40%), Remedy barely (paper: ~10%).
"""

import numpy as np
import pytest

from conftest import canonical_config
from repro.baselines.remedy import RemedyConfig, RemedyController
from repro.sim import build_environment, run_experiment
from repro.sim.network import LinkLoadCalculator


def _stressed_environment(config, target_peak=0.9):
    env = build_environment(config)
    calc = LinkLoadCalculator(env.topology)
    peak = calc.max_utilization(env.allocation, env.traffic)
    env.traffic = env.traffic.scale(target_peak / peak)
    return env, calc


def _run_comparison():
    # Sparse TM: the regime where Remedy performs best (paper §VI-B).
    config = canonical_config("sparse", policy="hlf", n_iterations=5)
    score_env, calc = _stressed_environment(config)
    remedy_env, _ = _stressed_environment(config)
    before = calc.utilizations_by_level(score_env.allocation, score_env.traffic)

    score_result = run_experiment(config, environment=score_env)
    score_after = calc.utilizations_by_level(score_env.allocation, score_env.traffic)

    remedy = RemedyController(
        remedy_env.allocation,
        remedy_env.traffic,
        remedy_env.cost_model,
        RemedyConfig(utilization_threshold=0.5, max_rounds=40),
    )
    remedy_report = remedy.run()
    remedy_after = calc.utilizations_by_level(
        remedy_env.allocation, remedy_env.traffic
    )
    return before, score_result, score_after, remedy_report, remedy_after


@pytest.fixture(scope="module")
def comparison():
    return _run_comparison()


def test_fig4a_link_utilization_cdf(benchmark, emit):
    before, score_result, score_after, remedy_report, remedy_after = (
        benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    )
    layer_name = {2: "Aggregation", 3: "Core"}
    for level in (3, 2):
        rows = []
        for label, utils in (
            ("initial", before),
            ("Remedy", remedy_after),
            ("S-CORE", score_after),
        ):
            values = np.asarray(utils[level])
            rows.append(
                f"{label:8s} mean={values.mean():.4f} p95={np.percentile(values, 95):.4f} "
                f"max={values.max():.4f}"
            )
        emit(f"[Fig 4a] {layer_name[level]} link utilization: " + " | ".join(rows))
        # S-CORE must reduce upper-layer utilization far more than Remedy.
        assert np.mean(score_after[level]) <= np.mean(before[level]) + 1e-12
        assert np.mean(score_after[level]) <= np.mean(remedy_after[level]) + 1e-12


def test_fig4b_cost_reduction_comparison(benchmark, emit):
    before, score_result, score_after, remedy_report, remedy_after = (
        benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    )
    score_red = score_result.report.cost_reduction
    remedy_red = remedy_report.cost_reduction
    emit(
        f"[Fig 4b] communication-cost reduction: S-CORE={score_red:.0%} "
        f"(paper ~40%+), Remedy={remedy_red:.0%} (paper ~10%); "
        f"Remedy migrations={remedy_report.n_migrations}, "
        f"peak util {remedy_report.initial_max_utilization:.2f}->"
        f"{remedy_report.final_max_utilization:.2f}"
    )
    # Paper shape: S-CORE's reduction dwarfs Remedy's.
    assert score_red > 0.3
    assert score_red > remedy_red + 0.2
    # Remedy does balance: its peak utilization must drop.
    assert remedy_report.final_max_utilization < remedy_report.initial_max_utilization
