"""Fig. 3g-i — Communication-cost ratio vs GA-optimal, fat-tree.

Same protocol as Fig. 3d-f over the fat-tree topology.  Paper findings:
S-CORE achieves similar proximity to the GA-optimal but the *reduction
ratio is smaller* than on the canonical tree (the initial allocation is
less costly relative to optimal, thanks to the fat-tree's path diversity)
— S-CORE is "topology-neutral".
"""

import pytest

from conftest import (
    PAPER_SCALE,
    bench_ga_config,
    canonical_config,
    fattree_config,
    format_series,
)
from repro.baselines.ga import GeneticOptimizer
from repro.sim import build_environment, run_experiment
from repro.sim.metrics import resample_series

PATTERNS = ["sparse", "medium", "dense"]
FIG_LABEL = {"sparse": "3g", "medium": "3h", "dense": "3i"}


def _run_pattern(pattern: str):
    config = fattree_config(pattern, n_iterations=5)
    env = build_environment(config)
    ga = GeneticOptimizer(
        env.allocation, env.traffic, env.cost_model, bench_ga_config(config.seed)
    ).run()
    runs = {}
    for policy in ("rr", "hlf"):
        policy_env = build_environment(config.with_(policy=policy))
        runs[policy] = run_experiment(
            config.with_(policy=policy), environment=policy_env
        )
    return ga, runs


@pytest.mark.parametrize("pattern", PATTERNS)
def test_fig3ghi_fattree_cost_ratio(benchmark, emit, pattern):
    ga, runs = benchmark.pedantic(
        _run_pattern, args=(pattern,), rounds=1, iterations=1
    )
    label = FIG_LABEL[pattern]
    for policy, result in runs.items():
        reference = min(ga.best_cost, result.final_cost)
        series = result.report.cost_ratio_series(reference)
        grid = [series[-1][0] * f for f in (0, 0.125, 0.25, 0.5, 0.75, 1.0)]
        sampled = resample_series(series, grid)
        start, final = sampled[0][1], sampled[-1][1]
        emit(
            f"[Fig {label}] fat-tree TM={pattern:7s} {policy.upper():3s}  "
            f"ratio(t): " + format_series(sampled)
        )
        emit(
            f"[Fig {label}]   {policy.upper():3s} start={start:.2f} final={final:.2f}  "
            f"migrations={result.report.total_migrations}"
        )
        assert final < start  # cost strictly improves
        assert final < 2.2    # settles near the optimal


def test_fig3_fattree_vs_canonical_topology_neutrality(benchmark, emit):
    """Cross-figure claim (Fig. 3d vs 3g): S-CORE is topology-neutral.

    Both topologies settle similarly close to their GA-optimal from the
    same protocol — that is the claim this bench pins at every scale.  The
    paper additionally reports a smaller reduction *span* on the fat-tree
    (Fig. 3g starts ~3.2x optimal vs ~4.5x in Fig. 3d); in the Eq. 2 cost
    model that gap is purely a level-geometry effect — a canonical tree
    and a fat-tree with identical rack/pod host fractions produce
    *identical* costs — so it only reproduces with the paper's own scales
    (`REPRO_BENCH_SCALE=paper`), where the two instances' absolute sizes
    differ.  The laptop-scale configs have mismatched pod fractions (1/4
    vs 1/8 of hosts), which used to flip the span inequality once the
    population-matrix GA started finding deeper fat-tree optima than the
    old per-individual loop; the span is therefore reported
    informationally at reduced scale rather than asserted.
    """

    def _both():
        out = {}
        for name, factory in (("canonical", canonical_config), ("fattree", fattree_config)):
            cfg = factory("sparse", policy="hlf")
            env = build_environment(cfg)
            ga = GeneticOptimizer(
                env.allocation, env.traffic, env.cost_model, bench_ga_config(cfg.seed)
            ).run()
            result = run_experiment(cfg, environment=env)
            reference = min(ga.best_cost, result.final_cost)
            out[name] = (
                result.initial_cost / reference,
                result.final_cost / reference,
            )
        return out

    ratios = benchmark.pedantic(_both, rounds=1, iterations=1)
    (start_c, final_c) = ratios["canonical"]
    (start_f, final_f) = ratios["fattree"]
    emit(
        f"[Fig 3d vs 3g] cost ratio vs GA-optimal: "
        f"canonical start={start_c:.2f}x final={final_c:.2f}x   "
        f"fat-tree start={start_f:.2f}x final={final_f:.2f}x"
    )
    # Topology neutrality: both converge similarly near their optimum.
    assert final_c < 2.2 and final_f < 2.2
    assert 0.4 < final_c / final_f < 2.5
    if PAPER_SCALE:
        # The published-scale span claim: fat-tree starts closer to optimal.
        assert start_f < start_c
