"""Shared benchmark infrastructure.

Every benchmark regenerates one of the paper's tables/figures and prints
the corresponding rows/series directly to the terminal (bypassing pytest
capture), so `pytest benchmarks/ --benchmark-only` doubles as the
reproduction report.  Scales are reduced from the paper's 2560-host ns-3
runs to laptop budgets; the *shapes* (who wins, by what factor, where the
curves settle) are what is reproduced.  Set ``REPRO_BENCH_SCALE=paper`` to
run the full published scale instead.
"""

from __future__ import annotations

import os

import pytest

from repro.baselines.ga import GAConfig
from repro.sim import ExperimentConfig

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper"


def canonical_config(pattern: str = "sparse", **overrides) -> ExperimentConfig:
    """Canonical-tree bench config (paper: 2560 hosts / 128 ToRs)."""
    if PAPER_SCALE:
        return ExperimentConfig.paper_canonical(pattern, **overrides)
    base = ExperimentConfig(
        topology="canonical",
        n_racks=32,
        hosts_per_rack=4,
        tors_per_agg=8,
        n_cores=4,
        vms_per_host=8,
        fill_fraction=0.85,
        pattern=pattern,
        seed=42,
    )
    return base.with_(**overrides) if overrides else base


def fattree_config(pattern: str = "sparse", **overrides) -> ExperimentConfig:
    """Fat-tree bench config (paper: k=16, 1024 hosts)."""
    if PAPER_SCALE:
        return ExperimentConfig.paper_fattree(pattern, **overrides)
    base = ExperimentConfig(
        topology="fattree",
        fattree_k=8,
        vms_per_host=8,
        fill_fraction=0.85,
        pattern=pattern,
        seed=42,
    )
    return base.with_(**overrides) if overrides else base


def bench_ga_config(seed: int = 42) -> GAConfig:
    """GA reference sized for bench budgets (paper: population 1,000)."""
    if PAPER_SCALE:
        return GAConfig.paper_scale(seed=seed)
    return GAConfig(population_size=60, max_generations=120, seed=seed)


@pytest.fixture
def emit(capsys):
    """Print lines to the real terminal, bypassing pytest capture."""

    def _emit(*lines: str) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)

    return _emit


def format_series(series, every: int = 1) -> str:
    """Render a (t, value) series compactly: 't:v t:v ...'."""
    points = series[::every] if every > 1 else series
    return "  ".join(f"{t:7.1f}s:{v:6.3f}" for t, v in points)
