"""Ablation — token-policy design space (§V-A and the TR's extra policies).

Compares all four implemented policies on identical starts: final cost,
convergence iteration, and how front-loaded the reduction is (cost after
the first iteration).  Paper claim: HLF converges faster than RR because
it prioritizes VMs whose traffic crosses the highest layers.
"""

import pytest

from conftest import canonical_config
from repro.sim import build_environment, run_experiment
from repro.sim.metrics import convergence_iteration

POLICIES = ["rr", "hlf", "random", "lrv"]


def _run_all():
    rows = {}
    for policy in POLICIES:
        config = canonical_config("sparse", policy=policy, n_iterations=5)
        result = run_experiment(config)
        first_iteration_cost = result.report.iterations[0].cost_at_end
        rows[policy] = {
            "reduction": result.report.cost_reduction,
            "converged_at": convergence_iteration(result.report, tolerance=0.01),
            "first_iter_fraction": (
                (result.initial_cost - first_iteration_cost)
                / max(result.initial_cost - result.final_cost, 1e-12)
            ),
            "migrations": result.report.total_migrations,
        }
    return rows


def test_ablation_token_policies(benchmark, emit):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for policy, row in rows.items():
        emit(
            f"[Ablation policy] {policy:6s} reduction={row['reduction']:.0%} "
            f"converged@it{row['converged_at']} "
            f"first-iteration share={row['first_iter_fraction']:.0%} "
            f"migrations={row['migrations']}"
        )
    # All policies decide with the same Theorem 1 rule, so final reductions
    # must be in the same ballpark; the ordering claim is about speed.
    reductions = [row["reduction"] for row in rows.values()]
    assert min(reductions) > 0.5 * max(reductions)
    # HLF front-loads at least as much of its reduction as RR does.
    assert rows["hlf"]["first_iter_fraction"] >= 0.55
