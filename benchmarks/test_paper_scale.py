"""Paper-scale smoke benchmark for the fast-cost engine.

Runs one full S-CORE iteration (|V| token holds) at the published scales —
the 2560-host canonical tree (~35k VM slots) and the k=16 fat-tree — which
the naive per-pair loops could not finish in CI budgets, and records
wall-clock into ``BENCH_fastcost.json`` at the repo root so future PRs
have a perf trajectory to compare against.

The report schema (``repro-bench/fastcost/v1``) is one record per scenario:
name, scale (hosts/VMs/pairs), build and iteration wall-clock seconds,
holds, migrations and the start/end Eq. (2) costs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.migration import MigrationEngine
from repro.core.policies import policy_by_name
from repro.core.scheduler import SCOREScheduler
from repro.sim.experiment import ExperimentConfig, build_environment

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_fastcost.json")
SCHEMA = "repro-bench/fastcost/v1"

#: Hard ceiling from the acceptance criterion: one full S-CORE iteration
#: at paper_canonical() scale must finish inside this on a CI runner.
ITERATION_BUDGET_S = 60.0

SCENARIOS = {
    "paper_canonical_one_iteration": ExperimentConfig.paper_canonical(
        policy="rr", n_iterations=1
    ),
    "paper_fattree_one_iteration": ExperimentConfig.paper_fattree(
        policy="rr", n_iterations=1
    ),
}


def _write_report(record: dict) -> None:
    """Merge one scenario record into the JSON report (keyed by name)."""
    report = {"schema": SCHEMA, "results": []}
    if os.path.exists(REPORT_PATH):
        try:
            with open(REPORT_PATH) as fh:
                existing = json.load(fh)
            if existing.get("schema") == SCHEMA:
                report = existing
        except (OSError, ValueError):
            pass
    report["results"] = [
        r for r in report.get("results", []) if r.get("name") != record["name"]
    ] + [record]
    report["results"].sort(key=lambda r: r["name"])
    with open(REPORT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.smoke
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_one_score_iteration_at_paper_scale(name, emit):
    config = SCENARIOS[name]
    t0 = time.perf_counter()
    env = build_environment(config)
    build_s = time.perf_counter() - t0

    engine = MigrationEngine(env.cost_model)
    scheduler = SCOREScheduler(
        env.allocation,
        env.traffic,
        policy_by_name(config.policy, seed=config.seed),
        engine,
        use_fastcost=True,
    )
    t1 = time.perf_counter()
    report = scheduler.run(n_iterations=1)
    iteration_s = time.perf_counter() - t1

    record = {
        "name": name,
        "topology": config.topology,
        "n_hosts": env.topology.n_hosts,
        "n_vms": env.allocation.n_vms,
        "n_pairs": env.traffic.n_pairs,
        "build_s": round(build_s, 3),
        "iteration_s": round(iteration_s, 3),
        "holds": report.iterations[0].visits,
        "migrations": report.total_migrations,
        "initial_cost": report.initial_cost,
        "final_cost": report.final_cost,
    }
    _write_report(record)
    emit(
        f"[paper-scale] {name}: {env.allocation.n_vms} VMs on "
        f"{env.topology.n_hosts} hosts, {env.traffic.n_pairs} pairs",
        f"[paper-scale]   build {build_s:6.2f}s   iteration {iteration_s:6.2f}s"
        f"   migrations {report.total_migrations}"
        f"   cost {report.initial_cost:.3e} -> {report.final_cost:.3e}",
    )

    assert iteration_s < ITERATION_BUDGET_S, (
        f"one S-CORE iteration took {iteration_s:.1f}s; "
        f"budget is {ITERATION_BUDGET_S:.0f}s"
    )
    assert report.final_cost < report.initial_cost
