"""Paper-scale smoke benchmark for the fast-cost engine.

Runs one full S-CORE iteration (|V| token holds) at the published scales —
the 2560-host canonical tree (~35k VM slots) and the k=16 fat-tree — which
the naive per-pair loops could not finish in CI budgets, and records
wall-clock into ``BENCH_fastcost.json`` at the repo root so future PRs
have a perf trajectory to compare against.

The report schema (``repro-bench/fastcost/v1``) is one record per scenario:
name, scale (hosts/VMs/pairs), build and iteration wall-clock seconds,
holds, migrations and the start/end Eq. (2) costs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.baselines.ga import GAConfig, GeneticOptimizer
from repro.core.migration import MigrationEngine
from repro.core.policies import policy_by_name
from repro.core.scheduler import SCOREScheduler
from repro.sim.experiment import (
    ExperimentConfig,
    build_environment,
    make_scheduler,
)
from repro.util.rng import make_rng

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_fastcost.json")
SCHEMA = "repro-bench/fastcost/v1"

#: Hard ceiling from the acceptance criterion: one full S-CORE iteration
#: at paper_canonical() scale must finish inside this on a CI runner.
ITERATION_BUDGET_S = 60.0

SCENARIOS = {
    "paper_canonical_one_iteration": ExperimentConfig.paper_canonical(
        policy="rr", n_iterations=1
    ),
    "paper_fattree_one_iteration": ExperimentConfig.paper_fattree(
        policy="rr", n_iterations=1
    ),
}


def _write_report(record: dict) -> None:
    """Merge one scenario record into the JSON report (keyed by name)."""
    report = {"schema": SCHEMA, "results": []}
    if os.path.exists(REPORT_PATH):
        try:
            with open(REPORT_PATH) as fh:
                existing = json.load(fh)
            if existing.get("schema") == SCHEMA:
                report = existing
        except (OSError, ValueError):
            pass
    report["results"] = [
        r for r in report.get("results", []) if r.get("name") != record["name"]
    ] + [record]
    report["results"].sort(key=lambda r: r["name"])
    with open(REPORT_PATH, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


@pytest.mark.smoke
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_one_score_iteration_at_paper_scale(name, emit):
    config = SCENARIOS[name]
    t0 = time.perf_counter()
    env = build_environment(config)
    build_s = time.perf_counter() - t0

    engine = MigrationEngine(env.cost_model)
    scheduler = SCOREScheduler(
        env.allocation,
        env.traffic,
        policy_by_name(config.policy, seed=config.seed),
        engine,
        use_fastcost=True,
    )
    t1 = time.perf_counter()
    report = scheduler.run(n_iterations=1)
    iteration_s = time.perf_counter() - t1

    record = {
        "name": name,
        "topology": config.topology,
        "n_hosts": env.topology.n_hosts,
        "n_vms": env.allocation.n_vms,
        "n_pairs": env.traffic.n_pairs,
        "build_s": round(build_s, 3),
        "iteration_s": round(iteration_s, 3),
        "holds": report.iterations[0].visits,
        "migrations": report.total_migrations,
        "initial_cost": report.initial_cost,
        "final_cost": report.final_cost,
    }
    _write_report(record)
    emit(
        f"[paper-scale] {name}: {env.allocation.n_vms} VMs on "
        f"{env.topology.n_hosts} hosts, {env.traffic.n_pairs} pairs",
        f"[paper-scale]   build {build_s:6.2f}s   iteration {iteration_s:6.2f}s"
        f"   migrations {report.total_migrations}"
        f"   cost {report.initial_cost:.3e} -> {report.final_cost:.3e}",
    )

    assert iteration_s < ITERATION_BUDGET_S, (
        f"one S-CORE iteration took {iteration_s:.1f}s; "
        f"budget is {ITERATION_BUDGET_S:.0f}s"
    )
    assert report.final_cost < report.initial_cost


#: The committed pre-batching wall-clock of one paper-scale canonical
#: S-CORE iteration (BENCH_fastcost.json `iteration_s` before PR 3) — the
#: baseline the wave-batched round engine is measured against.
BATCHED_ROUND_BASELINE_S = 3.052

#: Acceptance floor: the mean per-iteration wall-clock of the paper's
#: 5-iteration canonical convergence run, wave-batched, must be at least
#: this factor under the recorded pre-batching iteration time.
ROUND_SPEEDUP_FLOOR = 3.0


@pytest.mark.smoke
@pytest.mark.slow
def test_batched_rounds_at_paper_scale(emit):
    """Wave-batched S-CORE convergence run vs the recorded per-hold loop.

    Runs the paper's full 5-iteration RR convergence sequence on the
    2560-host canonical tree through the wave-batched round engine and
    records the mean per-iteration wall-clock (``round_s``), the first
    (heaviest) round, and a freshly measured one-iteration sample of the
    retained per-hold reference loop for contrast.  The acceptance floor
    compares against the *committed* pre-batching baseline of 3.052 s per
    iteration, so the assertion is stable across runner speeds relative
    to the recorded history.
    """
    config = ExperimentConfig.paper_canonical(policy="rr", n_iterations=5)
    env = build_environment(config)
    scheduler = SCOREScheduler(
        env.allocation,
        env.traffic,
        policy_by_name(config.policy, seed=config.seed),
        MigrationEngine(env.cost_model),
        # This record tracks the round-cache-free wave engine; the cached
        # path has its own record (paper_canonical_cached_rounds).
        use_round_cache=False,
    )
    t0 = time.perf_counter()
    first = scheduler.run(n_iterations=1)
    first_round_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    rest = scheduler.run(n_iterations=4)
    run_s = first_round_s + (time.perf_counter() - t1)
    round_s = run_s / 5.0
    migrations = first.total_migrations + rest.total_migrations

    ref_env = build_environment(config)
    ref_scheduler = SCOREScheduler(
        ref_env.allocation,
        ref_env.traffic,
        policy_by_name(config.policy, seed=config.seed),
        MigrationEngine(ref_env.cost_model),
    )
    t2 = time.perf_counter()
    ref_scheduler.run_reference(n_iterations=1)
    reference_round_s = time.perf_counter() - t2

    record = {
        "name": "paper_canonical_batched_round",
        "topology": config.topology,
        "n_hosts": env.topology.n_hosts,
        "n_vms": env.allocation.n_vms,
        "run_s": round(run_s, 3),
        "round_s": round(round_s, 3),
        "first_round_s": round(first_round_s, 3),
        "reference_round_s": round(reference_round_s, 3),
        "iterations": 5,
        "migrations": migrations,
        "final_cost": rest.final_cost,
        "baseline_round_s": BATCHED_ROUND_BASELINE_S,
        "speedup_vs_baseline": round(BATCHED_ROUND_BASELINE_S / round_s, 1),
    }
    _write_report(record)
    emit(
        f"[paper-scale] batched rounds: 5-iteration convergence run "
        f"{run_s:6.2f}s ({round_s:.3f}s/iteration, first {first_round_s:.2f}s)",
        f"[paper-scale]   reference per-hold iteration {reference_round_s:6.2f}s"
        f"   recorded baseline {BATCHED_ROUND_BASELINE_S:.3f}s"
        f"   speedup {BATCHED_ROUND_BASELINE_S / round_s:.1f}x"
        f"   migrations {migrations}",
    )

    assert round_s * ROUND_SPEEDUP_FLOOR <= BATCHED_ROUND_BASELINE_S, (
        f"wave-batched round averages {round_s:.3f}s/iteration; "
        f">= {ROUND_SPEEDUP_FLOOR:.0f}x vs the recorded "
        f"{BATCHED_ROUND_BASELINE_S:.3f}s is required"
    )
    assert rest.final_cost < first.initial_cost


#: The committed wave-batched 5-iteration wall clock (BENCH_fastcost.json
#: `run_s` before the round cache landed) — the denominator of the
#: cached path's recorded headline.
CACHED_RUN_BASELINE_S = 2.829

#: No-regression bound for the cold cached run, relative to the uncached
#: run measured in the same process: cache bookkeeping on an all-dirty
#: system may cost some overhead, but never this much.  A same-runner
#: ratio, unlike an absolute wall-clock, stays stable when the suite
#: runs on a loaded or slower box.
CACHED_COLD_OVERHEAD_CAP = 1.6

#: Acceptance floor: with a warm round cache, a converged 5-iteration
#: run (mostly-clean owners → sparse re-scores) must beat the same
#: warm-state run through the uncached wave engine, measured on the same
#: runner, by at least this factor.
CACHED_CONVERGED_FLOOR = 1.8


@pytest.mark.smoke
@pytest.mark.slow
def test_cached_rounds_at_paper_scale(emit):
    """Dirty-owner round cache vs the uncached wave engine.

    Runs the paper's 5-iteration RR convergence sequence twice per
    variant on the 2560-host canonical tree: the cold run (every owner
    dirty in the early rounds) and two warm follow-on runs on the
    converged system, where the cache's cross-round decision carry
    turns rounds into sparse re-scores.  Asserts the tentpole
    exact-equivalence guarantee — identical migrations and final cost,
    cold and warm — plus the converged-run speedup on the same runner
    (machine-independent) and a same-runner overhead cap on the cold
    cached run vs the uncached one; the recorded pre-cache 2.829 s
    stays in the JSON record as ``speedup_vs_recorded_run``.
    """
    config = ExperimentConfig.paper_canonical(policy="rr", n_iterations=5)

    def measure(use_round_cache):
        env = build_environment(config)
        scheduler = SCOREScheduler(
            env.allocation,
            env.traffic,
            policy_by_name(config.policy, seed=config.seed),
            MigrationEngine(env.cost_model),
            use_round_cache=use_round_cache,
        )
        t0 = time.perf_counter()
        cold = scheduler.run(n_iterations=5)
        cold_s = time.perf_counter() - t0
        warm_s = []
        warm = None
        for _ in range(2):
            t1 = time.perf_counter()
            warm = scheduler.run(n_iterations=5)
            warm_s.append(time.perf_counter() - t1)
        return scheduler, cold, cold_s, warm, min(warm_s)

    sched_u, cold_u, cold_u_s, warm_u, warm_u_s = measure(False)
    sched_c, cold_c, cold_c_s, warm_c, warm_c_s = measure(True)

    # Exact equivalence: the cached trajectory IS the uncached one.
    assert cold_c.total_migrations == cold_u.total_migrations
    assert cold_c.final_cost == cold_u.final_cost
    assert warm_c.total_migrations == warm_u.total_migrations
    assert warm_c.final_cost == warm_u.final_cost

    cache = sched_c.fastcost.round_cache()
    converged_speedup = warm_u_s / warm_c_s
    record = {
        "name": "paper_canonical_cached_rounds",
        "topology": config.topology,
        "n_hosts": env_hosts(sched_c),
        "n_vms": sched_c.allocation.n_vms,
        "iterations": 5,
        "migrations": cold_c.total_migrations,
        "final_cost": cold_c.final_cost,
        "cached_run_s": round(cold_c_s, 3),
        "uncached_run_s": round(cold_u_s, 3),
        "cached_converged_run_s": round(warm_c_s, 3),
        "uncached_converged_run_s": round(warm_u_s, 3),
        "speedup_converged": round(converged_speedup, 1),
        "speedup_vs_recorded_run": round(
            CACHED_RUN_BASELINE_S / cold_c_s, 2
        ),
        "cache_hit_ratio": round(cache.hit_ratio, 3),
    }
    _write_report(record)
    emit(
        f"[paper-scale] cached rounds: cold {cold_c_s:6.2f}s "
        f"(uncached {cold_u_s:6.2f}s, recorded "
        f"{CACHED_RUN_BASELINE_S:.3f}s)",
        f"[paper-scale]   converged run {warm_c_s:6.3f}s vs uncached "
        f"{warm_u_s:6.3f}s   speedup {converged_speedup:.1f}x   "
        f"hit rate {cache.hit_ratio:.1%}",
    )

    assert converged_speedup >= CACHED_CONVERGED_FLOOR, (
        f"warm round cache gives only {converged_speedup:.2f}x on the "
        f"converged run; >= {CACHED_CONVERGED_FLOOR:.1f}x is required"
    )
    assert cold_c_s <= CACHED_COLD_OVERHEAD_CAP * cold_u_s, (
        f"cached cold run {cold_c_s:.3f}s is more than "
        f"{CACHED_COLD_OVERHEAD_CAP:.1f}x the uncached {cold_u_s:.3f}s "
        "measured on the same runner"
    )


def env_hosts(scheduler) -> int:
    """Host count of a scheduler's bound allocation."""
    return scheduler.allocation.cluster.n_servers


#: Acceptance floor for the batched GA: one generation of the population-
#: matrix engine must beat the per-individual reference loop by at least
#: this factor at GAConfig.paper_scale() on the 2560-host topology.
GA_SPEEDUP_FLOOR = 10.0

#: Offspring sample the per-individual reference is timed on (the full
#: brood at paper scale is 500 offspring and takes ~a minute; per-offspring
#: cost is flat, so a sample extrapolates accurately and keeps the smoke
#: job inside CI budgets).
GA_REFERENCE_SAMPLE = 40


@pytest.mark.smoke
def test_ga_generation_at_paper_scale(emit):
    """Batched GA generation vs the pre-batching per-individual loop.

    Builds the paper's GA (population 1,000) on the 2560-host canonical
    tree, times full batched generations (population-matrix tournament /
    crossover / repair / scoring) and the retained per-individual
    reference generation on an offspring sample, and records both into the
    perf report.  The batched engine must be >= 10x faster per generation.
    """
    config = ExperimentConfig.paper_canonical(policy="rr", n_iterations=1)
    env = build_environment(config)
    ga = GeneticOptimizer(
        env.allocation,
        env.traffic,
        env.cost_model,
        GAConfig.paper_scale(seed=config.seed),
    )

    t0 = time.perf_counter()
    population = ga.initial_population()
    costs = ga.population_costs(population)
    seed_s = time.perf_counter() - t0

    ga.step(population, costs)  # warm caches outside the timed window
    generation_times = []
    for _ in range(3):
        t1 = time.perf_counter()
        ga.step(population, costs)
        generation_times.append(time.perf_counter() - t1)
    generation_s = min(generation_times)

    n_offspring = max(1, ga._config.population_size // 2)
    sample = min(GA_REFERENCE_SAMPLE, n_offspring)
    t2 = time.perf_counter()
    ga.step_reference(population, costs, n_offspring=sample)
    reference_sample_s = time.perf_counter() - t2
    reference_generation_s = reference_sample_s * (n_offspring / sample)
    speedup = reference_generation_s / generation_s

    record = {
        "name": "paper_canonical_ga_generation",
        "topology": config.topology,
        "n_hosts": env.topology.n_hosts,
        "n_vms": env.allocation.n_vms,
        "population": ga._config.population_size,
        "seed_population_s": round(seed_s, 3),
        "generation_s": round(generation_s, 3),
        "reference_generation_s": round(reference_generation_s, 3),
        "reference_sampled_offspring": sample,
        "speedup": round(speedup, 1),
    }
    _write_report(record)
    emit(
        f"[paper-scale] GA generation: population {ga._config.population_size} "
        f"x {env.allocation.n_vms} VMs on {env.topology.n_hosts} hosts",
        f"[paper-scale]   batched {generation_s:6.2f}s   per-individual "
        f"~{reference_generation_s:6.1f}s (sampled {sample}/{n_offspring} "
        f"offspring)   speedup {speedup:.1f}x",
    )

    assert speedup >= GA_SPEEDUP_FLOOR, (
        f"batched GA generation is only {speedup:.1f}x faster than the "
        f"per-individual loop; the floor is {GA_SPEEDUP_FLOOR:.0f}x"
    )


#: Acceptance floor for the delta path: the mean epoch transition of a
#: paper-scale multi-epoch dynamic run (traffic delta through
#: ``SCOREScheduler.apply_traffic_delta``, matrix + engine together) must
#: beat a full ``FastCostEngine.rebuild()`` by at least this factor.
EPOCH_SPEEDUP_FLOOR = 5.0

#: Epochs of the timed dynamic run.
EPOCH_BENCH_EPOCHS = 10

#: Fraction of (heaviest) pairs whose rate a sliding-window re-estimate
#: changes per epoch — the paper's premise is that hotspots drift slowly,
#: so most pairs' averages are unchanged window over window.
EPOCH_CHANGED_FRACTION = 0.05


@pytest.mark.smoke
@pytest.mark.slow
def test_epoch_transitions_at_paper_scale(emit):
    """Delta-path epoch transitions vs full rebuild on the canonical tree.

    Runs a real 10-epoch dynamic loop at paper scale: each epoch perturbs
    the heaviest ~10% of pairs (a sliding-window re-estimate under slow
    hotspot drift) through ``apply_traffic_delta`` and re-runs one token
    iteration.  Records the mean epoch-transition wall clock (``epoch_s``,
    matrix patch + engine patch) against a freshly measured full
    ``rebuild()`` (``rebuild_s``) — both on the same runner, so the
    asserted ratio is machine-independent — plus the scheduling time, to
    show epochs are dominated by scheduling, not state maintenance.
    """
    config = ExperimentConfig.paper_canonical(policy="rr", n_iterations=1)
    env = build_environment(config)
    scheduler = make_scheduler(env, config)
    scheduler.run(n_iterations=1)  # settle the heavy first round
    fast = scheduler.fastcost
    assert fast is not None

    rebuild_s = min(
        _timed(fast.rebuild) for _ in range(3)
    )

    pairs = sorted(env.traffic.pairs(), key=lambda p: -p[2])
    changed = pairs[: max(1, int(len(pairs) * EPOCH_CHANGED_FRACTION))]
    rng = make_rng(config.seed)
    transition_times = []
    schedule_times = []
    for _ in range(EPOCH_BENCH_EPOCHS):
        factors = 0.7 + 0.6 * rng.random(len(changed))
        delta = [
            (u, v, r * float(f)) for (u, v, r), f in zip(changed, factors)
        ]
        t0 = time.perf_counter()
        scheduler.apply_traffic_delta(delta)
        transition_times.append(time.perf_counter() - t0)
        t1 = time.perf_counter()
        scheduler.run(n_iterations=1)
        schedule_times.append(time.perf_counter() - t1)
    assert fast.in_sync, "the dynamic run must never need a cold rebuild"

    epoch_s = sum(transition_times) / len(transition_times)
    schedule_s = sum(schedule_times) / len(schedule_times)
    record = {
        "name": "paper_canonical_epoch_transition",
        "topology": config.topology,
        "n_hosts": env.topology.n_hosts,
        "n_vms": env.allocation.n_vms,
        "n_pairs": env.traffic.n_pairs,
        "epochs": EPOCH_BENCH_EPOCHS,
        "changed_pairs_per_epoch": len(changed),
        "epoch_s": round(epoch_s, 4),
        "rebuild_s": round(rebuild_s, 4),
        "epoch_schedule_s": round(schedule_s, 3),
        "speedup_vs_rebuild": round(rebuild_s / epoch_s, 1),
    }
    _write_report(record)
    emit(
        f"[paper-scale] epoch transitions: {len(changed)} changed pairs/epoch"
        f" over {EPOCH_BENCH_EPOCHS} epochs",
        f"[paper-scale]   delta path {epoch_s * 1e3:7.2f}ms   full rebuild "
        f"{rebuild_s * 1e3:7.2f}ms   speedup {rebuild_s / epoch_s:.1f}x   "
        f"scheduling {schedule_s:.2f}s/epoch",
    )

    assert epoch_s * EPOCH_SPEEDUP_FLOOR <= rebuild_s, (
        f"delta-path epoch transition averages {epoch_s * 1e3:.1f}ms; "
        f">= {EPOCH_SPEEDUP_FLOOR:.0f}x under the {rebuild_s * 1e3:.1f}ms "
        f"full rebuild is required"
    )
    assert schedule_s > epoch_s, (
        "epochs must be dominated by scheduling, not state maintenance"
    )


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


#: Events per burst drained through one pump at paper scale; the stream
#: below cycles surge / retirement / arrival / resize / §V-C squeeze+lift.
EVENT_BENCH_EVENTS = 60

#: Ceiling for draining the whole stream (CI-runner slack included) —
#: sustained absorption must stay interactive at paper scale.
EVENT_ABSORB_BUDGET_S = 30.0


@pytest.mark.smoke
@pytest.mark.slow
def test_event_absorption_at_paper_scale(emit):
    """Sustained event-queue absorption on the canonical 2560-host tree.

    Drains a ``EVENT_BENCH_EVENTS``-event stream (traffic surges, tenant
    retirements and arrivals, host resizes, §V-C bandwidth squeezes and
    lifts — every kind the failure scenarios inject) through
    ``EventQueueRunner.pump`` against a warmed scheduler, timing pure
    absorption: each event lands through the incremental churn/delta
    APIs plus round-cache footprint invalidation.  Records ``absorb_s``
    (trended, lower is better) and ``events_per_second`` (informational)
    as ``paper_canonical_event_absorb``, then runs one mid-round
    interleaved iteration to time the wave-loop bail path at scale.
    """
    from repro.sim.eventqueue import (
        Arrival,
        BandwidthCrunch,
        CapacityChange,
        EventQueueRunner,
        Retirement,
        TrafficSurge,
    )

    config = ExperimentConfig.paper_canonical(policy="rr", n_iterations=1)
    env = build_environment(config)
    scheduler = make_scheduler(env, config)
    runner = EventQueueRunner(scheduler, environment=env)
    scheduler.run(n_iterations=1)  # settle the heavy first round

    def stream(i):
        kind = i % 6
        if kind == 0:
            return TrafficSurge(1.5, top_pairs=32)
        if kind == 1:
            return Retirement(count=4, pick="newest")
        if kind == 2:
            return Arrival(count=4, rate=400.0)
        if kind == 3:
            return CapacityChange(
                hosts=(i % env.topology.n_hosts,), max_vms=6
            )
        if kind == 4:
            return BandwidthCrunch(0.8)
        return BandwidthCrunch(None)  # lift

    for i in range(EVENT_BENCH_EVENTS):
        runner.schedule(scheduler.clock, stream(i))
    t0 = time.perf_counter()
    runner.pump(scheduler.clock)
    absorb_s = time.perf_counter() - t0
    assert len(runner.log) == EVENT_BENCH_EVENTS
    assert all(e.changed for e in runner.log)
    events_per_second = EVENT_BENCH_EVENTS / absorb_s

    # One interleaved iteration: a mid-round surge + retirement exercise
    # the live-continuation bail (fresh candidate batch) at full scale.
    runner.schedule_at_round(
        scheduler.clock / runner.round_seconds + 0.25, TrafficSurge(2.0)
    )
    runner.schedule_at_round(
        scheduler.clock / runner.round_seconds + 0.5,
        Retirement(count=8, pick="coldest"),
    )
    t1 = time.perf_counter()
    runner.run(n_iterations=1)
    interleaved_iteration_s = time.perf_counter() - t1
    assert runner.pending == 0
    fast = scheduler.fastcost
    assert fast is not None and fast.in_sync

    record = {
        "name": "paper_canonical_event_absorb",
        "topology": config.topology,
        "n_hosts": env.topology.n_hosts,
        "n_vms": env.allocation.n_vms,
        "n_pairs": env.traffic.n_pairs,
        "n_events": EVENT_BENCH_EVENTS,
        "absorb_s": round(absorb_s, 4),
        "events_per_second": round(events_per_second, 1),
        "interleaved_iteration_s": round(interleaved_iteration_s, 3),
    }
    _write_report(record)
    emit(
        f"[paper-scale] event absorption: {EVENT_BENCH_EVENTS} events in "
        f"{absorb_s:.3f}s ({events_per_second:,.0f} events/s)",
        f"[paper-scale]   mid-round interleaved iteration "
        f"{interleaved_iteration_s:6.2f}s",
    )

    assert absorb_s < EVENT_ABSORB_BUDGET_S, (
        f"draining {EVENT_BENCH_EVENTS} events took {absorb_s:.1f}s; "
        f"budget is {EVENT_ABSORB_BUDGET_S:.0f}s"
    )


#: Acceptance floor: restoring a warm scheduler from a snapshot must beat
#: a cold rebuild (environment + scheduler + first warm iteration) by at
#: least this factor at paper scale.
SNAPSHOT_RESTORE_MIN_SPEEDUP = 5.0


@pytest.mark.smoke
@pytest.mark.slow
def test_snapshot_restore_at_paper_scale(emit, tmp_path):
    """Snapshot write + restore-to-warm vs cold rebuild on the canonical tree.

    Warms a scheduler with one full iteration at the published 2560-host /
    ~35k-VM scale, writes one atomic checksummed snapshot generation of the
    complete warm state (engine caches included), restores it into a fresh
    process-equivalent scheduler, and compares the restore wall clock with
    what reaching the same warm state from nothing costs.  Records
    ``paper_canonical_snapshot`` (write/restore/cold-boot seconds, file
    size, speedup); the restored engine must verify in sync with its
    incremental cost exact to 1e-9.
    """
    from repro.core.scheduler import SCOREScheduler

    config = ExperimentConfig.paper_canonical(policy="rr", n_iterations=1)
    t0 = time.perf_counter()
    env = build_environment(config)
    scheduler = make_scheduler(env, config)
    scheduler.run(n_iterations=1)  # the cold path to the same warm state
    cold_boot_s = time.perf_counter() - t0
    fast = scheduler.fastcost
    assert fast is not None and fast.in_sync

    t1 = time.perf_counter()
    path = scheduler.save_snapshot(str(tmp_path))
    snapshot_write_s = time.perf_counter() - t1
    snapshot_mb = os.path.getsize(path) / 1e6

    t2 = time.perf_counter()
    restored = SCOREScheduler.restore(str(tmp_path))
    restore_s = time.perf_counter() - t2
    rfast = restored.fastcost
    assert rfast is not None and rfast.in_sync
    assert abs(rfast.total_cost() - rfast.recompute_total_cost()) <= (
        1e-9 * max(1.0, abs(rfast.total_cost()))
    )
    assert restored.allocation.n_vms == env.allocation.n_vms

    speedup = cold_boot_s / restore_s
    record = {
        "name": "paper_canonical_snapshot",
        "topology": config.topology,
        "n_hosts": env.topology.n_hosts,
        "n_vms": env.allocation.n_vms,
        "n_pairs": env.traffic.n_pairs,
        "snapshot_write_s": round(snapshot_write_s, 4),
        "snapshot_mb": round(snapshot_mb, 1),
        "restore_s": round(restore_s, 4),
        "cold_boot_s": round(cold_boot_s, 3),
        "speedup_vs_cold_boot": round(speedup, 1),
    }
    _write_report(record)
    emit(
        f"[paper-scale] snapshot: write {snapshot_write_s:6.3f}s "
        f"({snapshot_mb:.1f} MB)   restore-to-warm {restore_s:6.3f}s",
        f"[paper-scale]   cold rebuild to the same warm state "
        f"{cold_boot_s:6.2f}s   speedup {speedup:.1f}x",
    )

    assert speedup >= SNAPSHOT_RESTORE_MIN_SPEEDUP, (
        f"restore-to-warm only {speedup:.1f}x faster than a cold rebuild; "
        f"the floor is {SNAPSHOT_RESTORE_MIN_SPEEDUP:.0f}x"
    )


#: Acceptance band: once the event stream is absorbed, the service's
#: final cost must sit within this relative distance of the converged
#: cost of the *same churned system* (a follow-on quiesce proves it —
#: the service only stops on a zero-migration round, so the gap is the
#: drift any remaining settle rounds would still recover).
SERVICE_CONVERGED_BAND = 1e-6


@pytest.mark.smoke
@pytest.mark.slow
def test_service_throughput_at_paper_scale(tmp_path, emit):
    """The scheduler-as-a-service daemon absorbing churn at paper scale.

    Boots a supervised service on the 2560-host canonical tree (~35k
    VMs), feeds it a seeded Poisson stream of arrivals/retirements/
    surges/crunches, and records the sustained wall-clock event
    absorption rate and the p99 admission-to-emitted-plan latency —
    the service-layer headline ``bench_trend.py`` trends.  The cost
    acceptance is convergence, not a fixed number: after the stream is
    absorbed the daemon's final cost must sit within
    ``SERVICE_CONVERGED_BAND`` of what quiescing the same churned
    system settles to.
    """
    from repro.service import PoissonSource, SchedulerService, ServiceConfig

    config = ExperimentConfig.paper_canonical(policy="rr")
    t0 = time.perf_counter()
    service = SchedulerService.create(
        config,
        str(tmp_path / "svc"),
        lambda rs: PoissonSource(2.0, rs, 4.0, seed=7),
        config=ServiceConfig(checkpoint_every=8),
    )
    boot_s = time.perf_counter() - t0
    report = service.serve()
    assert report.state == "stopped"
    assert report.events_applied > 0
    assert not report.safe_mode and not report.degraded

    # The service only stops on a zero-migration round; quiescing the
    # same system must confirm there was nothing left to settle.
    settle = service.scheduler.quiesce(max_rounds=25)
    converged_cost = settle[-1].final_cost
    gap = abs(report.final_cost - converged_cost) / max(
        1.0, abs(converged_cost)
    )
    service.close()

    record = {
        "name": "paper_canonical_service_throughput",
        "topology": config.topology,
        "n_hosts": service.environment.topology.n_hosts,
        "n_vms": service.environment.allocation.n_vms,
        "rounds": report.rounds_total,
        "events": report.events_applied,
        "boot_s": round(boot_s, 3),
        "serve_s": round(report.wall_s, 3),
        "events_per_second": round(report.events_per_second, 2),
        "p99_event_to_plan_s": round(report.p99_latency_s, 4),
        "migrations": report.migrations,
        "final_cost": report.final_cost,
        "converged_cost": converged_cost,
        "converged_gap": gap,
    }
    _write_report(record)
    emit(
        f"[paper-scale] service: {report.events_applied} events over "
        f"{report.rounds_total} rounds in {report.wall_s:6.2f}s "
        f"({report.events_per_second:.2f} events/s sustained)",
        f"[paper-scale]   p99 event->plan latency "
        f"{report.p99_latency_s:6.3f}s   migrations {report.migrations}"
        f"   cost {report.final_cost:.3e} "
        f"(converged gap {gap:.2e})",
    )

    assert gap <= SERVICE_CONVERGED_BAND, (
        f"service stopped {gap:.2e} away from the converged cost; "
        f"the band is {SERVICE_CONVERGED_BAND:.0e}"
    )
    assert report.p99_latency_s < ITERATION_BUDGET_S
