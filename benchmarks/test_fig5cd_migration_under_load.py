"""Fig. 5c/5d — Migration time and downtime under background traffic.

Paper measurements (1 Gb/s link, CBR background load 0..100%):
* total migration time grows from ~2.94 s (idle) to ~9.34 s (full load),
  sub-linearly (Fig. 5c);
* guest downtime stays an order of magnitude smaller — below 50 ms even as
  the link saturates (Fig. 5d).
"""

import numpy as np

from repro.testbed import PreCopyMigrationModel

LOADS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def _sweep(per_point=30):
    model = PreCopyMigrationModel(seed=42)
    rows = []
    for load in LOADS:
        outcomes = model.sample_migrations(per_point, background_load=load)
        rows.append(
            (
                load,
                float(np.mean([o.total_time_s for o in outcomes])),
                float(np.mean([o.downtime_ms for o in outcomes])),
                float(np.max([o.downtime_ms for o in outcomes])),
            )
        )
    return rows


def test_fig5c_migration_time_vs_load(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "[Fig 5c] total migration time vs background load: "
        + "  ".join(f"{load:.1f}:{t:.2f}s" for load, t, _, _ in rows)
    )
    times = [t for _, t, _, _ in rows]
    assert 2.0 < times[0] < 4.0      # paper: 2.94 s idle
    assert 7.0 < times[-1] < 13.0    # paper: 9.34 s at full load
    assert times == sorted(times)    # monotone in load
    # Sub-linear: the first 10% of load costs proportionally more than the
    # last 10% would under linear growth.
    assert times[-1] - times[-2] < 4 * (times[1] - times[0]) + 1.0


def test_fig5d_downtime_vs_load(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "[Fig 5d] mean downtime vs background load: "
        + "  ".join(f"{load:.1f}:{d:.1f}ms" for load, _, d, _ in rows)
    )
    worst = max(dmax for _, _, _, dmax in rows)
    emit(f"[Fig 5d] worst-case downtime across sweep: {worst:.1f}ms (paper <50ms)")
    assert worst < 50.0
    for load, total_s, downtime_ms, _ in rows:
        # Order of magnitude below total time, at every load point.
        assert downtime_ms / 1e3 < total_s / 10
