"""Ablation — oversubscription ratio of the canonical tree (§V-C).

"Operators often oversubscribe their network … the oversubscription ratio
increases dramatically from edge to core layers."  This ablation sweeps
the ToR-uplink capacity: the *cost* optimization is capacity-oblivious
(levels and weights don't change), but the *benefit* of localization —
measured as fair-share flow satisfaction — grows as the network gets more
oversubscribed.
"""

import pytest

from conftest import canonical_config
from repro.sim import build_environment, run_experiment
from repro.sim.fairshare import MaxMinFairAllocator
from repro.topology.tree import CanonicalTree


UPLINK_CAPS = [10e9, 5e9, 2.5e9]  # ToR-agg capacity: 1:0.4 -> 1:1.6 oversubscribed


def _run(uplink_bps: float):
    config = canonical_config("sparse", policy="hlf")
    topo = CanonicalTree(
        n_racks=config.n_racks,
        hosts_per_rack=config.hosts_per_rack,
        tors_per_agg=config.tors_per_agg,
        n_cores=config.n_cores,
        capacity_bps={2: uplink_bps, 3: uplink_bps},
    )
    env = build_environment(config)
    # Re-route the same workload over the capacity-modified topology for
    # the satisfaction measurements (cost levels are capacity-independent).
    allocator = MaxMinFairAllocator(topo)
    scale = env.traffic.scale(30.0)  # stress so capacity matters
    before = allocator.allocate(env.allocation, scale)
    run_experiment(config, environment=env)
    after = allocator.allocate(env.allocation, scale)
    ratio = topo.oversubscription_ratio(2)
    return ratio, before, after


@pytest.mark.parametrize("uplink_bps", UPLINK_CAPS)
def test_ablation_oversubscription(benchmark, emit, uplink_bps):
    ratio, before, after = benchmark.pedantic(
        _run, args=(uplink_bps,), rounds=1, iterations=1
    )
    gain = after.mean_satisfaction - before.mean_satisfaction
    emit(
        f"[Ablation oversub] ToR uplink={uplink_bps / 1e9:.1f}Gb/s "
        f"(oversubscription {ratio:.1f}:1): satisfaction "
        f"{before.mean_satisfaction:.1%} -> {after.mean_satisfaction:.1%} "
        f"(gain {gain:+.1%})"
    )
    assert after.mean_satisfaction >= before.mean_satisfaction - 1e-9
