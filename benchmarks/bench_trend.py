"""Fail-soft trend check over ``BENCH_fastcost.json`` wall-clock fields.

Usage::

    python benchmarks/bench_trend.py BASELINE.json CURRENT.json

Compares every ``*_s`` (seconds) field of every result record, keyed by
record name, between the committed baseline and a freshly regenerated
report; ``speedup*`` ratio fields are tracked too, in the opposite
direction (a *drop* is the regression).  A metric that regressed by more
than its threshold factor prints a GitHub Actions ``::warning::``
annotation; improvements and new records are reported informationally.
The exit code is always 0 — CI runner speed varies too much for a hard
gate, but the annotations make a real regression visible on the pull
request.

Records carrying a per-phase split (the sharded benches: partition /
domain-build / domain-solve / merge / reconcile) additionally feed a
**per-PR phase report** — a markdown table of each phase's baseline vs
current wall-clock plus the worker imbalance ratio — appended to the
CI job summary (``$GITHUB_STEP_SUMMARY``) when one exists, printed
otherwise.
"""

from __future__ import annotations

import json
import os
import sys

#: A current wall-clock more than this factor above the baseline warns.
REGRESSION_FACTOR = 2.0

#: Per-metric overrides: headline metrics with acceptance floors in
#: `benchmarks/test_paper_scale.py` carry tighter trend gates than the
#: generic wall-clock one — `round_s`/`run_s` (wave-batched rounds, 3x
#: floor) and `epoch_s` (delta-path epoch transition, 5x-vs-rebuild
#: floor; it is milliseconds, so runner noise headroom stays at 1.5x).
METRIC_FACTORS = {
    "round_s": 1.5,
    "run_s": 1.5,
    "epoch_s": 1.5,
    # The service-layer latency headline: keep it trending even when a
    # fast runner pushes it under the generic noise floor.
    "p99_event_to_plan_s": 2.0,
}

#: Wall-clocks faster than this are below timer/runner noise; skip them —
#: unless the metric carries an explicit METRIC_FACTORS gate (epoch_s is
#: a few milliseconds by design and still worth trending).
MIN_MEANINGFUL_SECONDS = 0.05

#: Ratio fields (higher is better) tracked in the reverse direction.
SPEEDUP_PREFIXES = ("speedup",)

#: Rate fields (higher is better), e.g. the service's sustained
#: ``events_per_second`` — a *drop* is the regression, like a speedup.
RATE_SUFFIXES = ("_per_second",)


def _flatten_phases(record: dict) -> dict:
    """Lift a nested ``"phases"`` dict into dotted ``phases.<name>_s`` fields.

    Sharded bench records carry per-phase wall-clocks (partition /
    domain-build / domain-solve / merge / reconcile) as a sub-dict; the
    field loop below only looks at top-level scalars, so each phase is
    flattened to ``phases.<name>_s`` and trended like any other seconds
    field.
    """
    phases = record.get("phases")
    if not isinstance(phases, dict):
        return record
    flat = {k: v for k, v in record.items() if k != "phases"}
    for phase, seconds in phases.items():
        if isinstance(seconds, (int, float)) and not isinstance(seconds, bool):
            key = phase.replace(" ", "_").replace("-", "_")
            if not key.endswith("_s"):
                key += "_s"
            flat[f"phases.{key}"] = seconds
    return flat


#: Dimensionless per-record gauges shown alongside the phase split.
GAUGE_FIELDS = ("imbalance",)


def _delta_cell(reference, value) -> str:
    """A signed percentage change, or a dash when it is meaningless."""
    if not isinstance(reference, (int, float)) or reference <= 0:
        return "—"
    return f"{(value / reference - 1.0):+.0%}"


def _phase_report(baseline: dict, current: dict) -> list:
    """Markdown lines: per-phase wall-clocks + gauges, current vs base.

    Works off the flattened records (``phases.<name>_s`` fields), so it
    covers exactly what the trend loop trends — plus the dimensionless
    gauges (the shard imbalance ratio) the loop skips.
    """
    rows = []
    for name, record in sorted(current.items()):
        base = baseline.get(name, {})
        fields = [f for f in sorted(record) if f.startswith("phases.")]
        gauges = [f for f in GAUGE_FIELDS if f in record]
        if not fields:
            continue
        for field in fields:
            value = record[field]
            if not isinstance(value, (int, float)):
                continue
            reference = base.get(field)
            shown = field[len("phases."):]
            ref_cell = (
                f"{reference:.3f}s"
                if isinstance(reference, (int, float))
                else "—"
            )
            rows.append(
                f"| {name} | {shown} | {ref_cell} | {value:.3f}s "
                f"| {_delta_cell(reference, value)} |"
            )
        for field in gauges:
            value = record[field]
            if not isinstance(value, (int, float)):
                continue
            reference = base.get(field)
            ref_cell = (
                f"{reference:.2f}"
                if isinstance(reference, (int, float))
                else "—"
            )
            rows.append(
                f"| {name} | {field} (gauge) | {ref_cell} | {value:.2f} "
                f"| {_delta_cell(reference, value)} |"
            )
    if not rows:
        return []
    return [
        "## Bench phase report",
        "",
        "| record | phase | baseline | current | Δ |",
        "|---|---|--:|--:|--:|",
        *rows,
        "",
    ]


def _emit_phase_report(lines: list) -> None:
    """Append to the CI job summary when one exists, else print."""
    if not lines:
        return
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        try:
            with open(summary_path, "a") as handle:
                handle.write("\n".join(lines) + "\n")
            return
        except OSError as error:
            print(f"bench-trend: cannot write job summary: {error}")
    for line in lines:
        print(line)


def _records(path: str) -> dict:
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"bench-trend: cannot read {path}: {error}")
        return {}
    return {
        record.get("name"): _flatten_phases(record)
        for record in report.get("results", [])
    }


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 0
    baseline = _records(argv[1])
    current = _records(argv[2])
    if not baseline or not current:
        print("bench-trend: nothing to compare")
        return 0
    regressions = 0
    for name, record in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"bench-trend: {name}: new record (no baseline)")
            continue
        for field, value in sorted(record.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            is_seconds = field.endswith("_s")
            is_speedup = (
                field.startswith(SPEEDUP_PREFIXES)
                or field.endswith("speedup")
                or field.endswith(RATE_SUFFIXES)
            )
            if not is_seconds and not is_speedup:
                continue
            reference = base.get(field)
            if reference is None:
                # A metric appearing for the first time (e.g. a new
                # cached_run_s key) has no baseline to regress against —
                # report it informationally, never as a failure.
                print(f"bench-trend: {name}.{field}: new metric (no baseline)")
                continue
            if not isinstance(reference, (int, float)) or reference <= 0:
                continue
            factor = METRIC_FACTORS.get(field, REGRESSION_FACTOR)
            if is_seconds:
                if reference < MIN_MEANINGFUL_SECONDS and field not in METRIC_FACTORS:
                    continue
                ratio = value / reference
                line = (
                    f"{name}.{field}: {reference:.3f}s -> {value:.3f}s "
                    f"({ratio:.2f}x)"
                )
                regressed = ratio > factor
            else:
                # Higher is better: warn when the speedup collapses.
                ratio = value / reference
                line = (
                    f"{name}.{field}: {reference:.1f}x -> {value:.1f}x "
                    f"({ratio:.2f} of baseline)"
                )
                regressed = ratio < 1.0 / factor
            if regressed:
                regressions += 1
                print(f"::warning title=bench regression::{line}")
            else:
                print(f"bench-trend: {line}")
    if regressions:
        print(
            f"bench-trend: {regressions} wall-clock field(s) regressed "
            f">{REGRESSION_FACTOR:.0f}x vs the committed baseline (fail-soft)"
        )
    else:
        print("bench-trend: no regressions beyond threshold")
    _emit_phase_report(_phase_report(baseline, current))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
