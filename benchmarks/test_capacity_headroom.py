"""Capacity headroom — S-CORE gives flows their bandwidth back.

The paper argues S-CORE "provid[es] the operators with increased network
capacity headroom" (§VI-B).  This bench quantifies it with the max-min
fair model: under a stressed sparse TM, compare per-flow demand
satisfaction and aggregate achieved throughput before and after S-CORE.
"""

import pytest

from conftest import canonical_config
from repro.sim import build_environment, run_experiment
from repro.sim.fairshare import MaxMinFairAllocator
from repro.sim.network import LinkLoadCalculator


def _run():
    config = canonical_config("sparse", policy="hlf")
    env = build_environment(config)
    calc = LinkLoadCalculator(env.topology)
    peak = calc.max_utilization(env.allocation, env.traffic)
    env.traffic = env.traffic.scale(2.0 / peak)  # heavy oversubscription
    allocator = MaxMinFairAllocator(env.topology)
    before = allocator.allocate(env.allocation, env.traffic)
    run_experiment(config, environment=env)
    after = allocator.allocate(env.allocation, env.traffic)
    return before, after


def test_capacity_headroom(benchmark, emit):
    before, after = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        f"[Headroom] mean flow satisfaction: {before.mean_satisfaction:.1%} -> "
        f"{after.mean_satisfaction:.1%};  fully satisfied flows: "
        f"{before.fully_satisfied_fraction:.1%} -> "
        f"{after.fully_satisfied_fraction:.1%}"
    )
    emit(
        f"[Headroom] aggregate achieved throughput: "
        f"{before.total_achieved:.3g} -> {after.total_achieved:.3g} B/s "
        f"(demand {before.total_demand:.3g} B/s);  bottleneck links: "
        f"{len(before.bottleneck_links)} -> {len(after.bottleneck_links)}"
    )
    assert after.mean_satisfaction >= before.mean_satisfaction
    assert after.total_achieved >= before.total_achieved
    assert after.fully_satisfied_fraction >= before.fully_satisfied_fraction
