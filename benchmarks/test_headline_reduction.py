"""Headline result — "S-CORE reduces communication cost by as much as
72%-87% of the GA-optimal in all scenarios, using only VM-local load
information", with deviation from GA-optimal growing only from 13% to 28%
as the TM densifies by x50.
"""

import pytest

from conftest import bench_ga_config, canonical_config, fattree_config
from repro.baselines.ga import GeneticOptimizer
from repro.sim import build_environment, run_experiment

SCENARIOS = [
    ("canonical", "sparse"),
    ("canonical", "medium"),
    ("canonical", "dense"),
    ("fattree", "sparse"),
    ("fattree", "medium"),
    ("fattree", "dense"),
]


def _run(topology: str, pattern: str):
    factory = canonical_config if topology == "canonical" else fattree_config
    config = factory(pattern, policy="hlf", n_iterations=5)
    env = build_environment(config)
    ga = GeneticOptimizer(
        env.allocation, env.traffic, env.cost_model, bench_ga_config(config.seed)
    ).run()
    result = run_experiment(config, environment=env)
    reference = min(ga.best_cost, result.final_cost)
    achievable = result.initial_cost - reference
    achieved = result.initial_cost - result.final_cost
    share = achieved / achievable if achievable > 0 else 1.0
    deviation = result.final_cost / reference - 1.0
    return share, deviation, result


@pytest.mark.parametrize("topology,pattern", SCENARIOS)
def test_headline_reduction_share(benchmark, emit, topology, pattern):
    share, deviation, result = benchmark.pedantic(
        _run, args=(topology, pattern), rounds=1, iterations=1
    )
    emit(
        f"[Headline] {topology:9s} TM={pattern:7s} HLF: achieved "
        f"{share:.0%} of the optimal reduction (paper 72-87%), "
        f"deviation from optimal {deviation:.0%} (paper 13-28%), "
        f"migrations={result.report.total_migrations}"
    )
    # The shape claim: a large majority of the optimal reduction, from
    # purely local decisions.  (At bench scale the *relative* deviation on
    # the sparse TM exceeds the paper's 13% — absolute residual costs are
    # tiny and the GA packs the few communicating services perfectly; see
    # EXPERIMENTS.md.)
    assert share > 0.6
    assert deviation < 1.5
