"""Ablation — energy as the operator objective (paper §II, §VIII).

"Through the assignment of different cost weights, the algorithm can be
exploited to optimise different performance objectives according to DC
operator policy."  This bench runs S-CORE twice from identical starts —
once with the paper's generic weights, once with energy-derived weights —
and compares the modelled network power and sleepable upper-layer links.
"""

import pytest

from conftest import canonical_config
from repro.sim import build_environment, run_experiment
from repro.sim.energy import EnergyModel, energy_link_weights


def _run():
    config = canonical_config("sparse", policy="hlf")
    model = EnergyModel()
    out = {}
    for label, weights in (("paper", None), ("energy", energy_link_weights())):
        env = build_environment(config)
        if weights is not None:
            from repro.core.cost import CostModel

            env.cost_model = CostModel(env.topology, weights)
        before_w = model.network_power_w(env.topology, env.allocation, env.traffic)
        run_experiment(config, environment=env)
        after_w = model.network_power_w(env.topology, env.allocation, env.traffic)
        sleepable = model.sleepable_links(env.topology, env.allocation, env.traffic)
        out[label] = (before_w, after_w, sleepable)
    return out


def test_ablation_energy_objective(benchmark, emit):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    for label, (before_w, after_w, sleepable) in results.items():
        emit(
            f"[Ablation energy] weights={label:7s} network power "
            f"{before_w:7.0f}W -> {after_w:7.0f}W ({1 - after_w / before_w:.0%} saved); "
            f"sleepable links L2={sleepable[2]} L3={sleepable[3]}"
        )
    emit(
        "[Ablation energy] finding: the paper's steeper exponential weights "
        "localize harder and already act as a good energy proxy; the "
        "dynamic-power-derived weights are shallower and save slightly less."
    )
    for label, (before_w, after_w, _sleepable) in results.items():
        assert after_w < before_w  # both objectives save energy via localization
    # The two objectives land in the same ballpark.
    assert results["energy"][1] <= results["paper"][1] * 1.1
