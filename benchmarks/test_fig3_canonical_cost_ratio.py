"""Fig. 3d-f — Communication-cost ratio vs GA-optimal, canonical tree.

For each traffic density (sparse/medium/dense) and each token policy
(RR/HLF), runs S-CORE and prints the cost(t)/GA-optimal series.  Paper
shapes: the ratio drops rapidly and substantially in all scenarios; the
deviation from GA-optimal stays within roughly 13%-28% even as the TM
densifies x50; HLF converges at least as fast as RR.
"""

import pytest

from conftest import bench_ga_config, canonical_config, format_series
from repro.baselines.ga import GeneticOptimizer
from repro.sim import build_environment, run_experiment
from repro.sim.metrics import resample_series

PATTERNS = ["sparse", "medium", "dense"]
FIG_LABEL = {"sparse": "3d", "medium": "3e", "dense": "3f"}


def _run_pattern(pattern: str):
    """One GA reference + both policies from identical initial allocations."""
    config = canonical_config(pattern, n_iterations=5)
    env = build_environment(config)
    ga = GeneticOptimizer(
        env.allocation, env.traffic, env.cost_model, bench_ga_config(config.seed)
    ).run()
    runs = {}
    for policy in ("rr", "hlf"):
        policy_env = build_environment(config.with_(policy=policy))
        runs[policy] = run_experiment(
            config.with_(policy=policy), environment=policy_env
        )
    return ga, runs


@pytest.mark.parametrize("pattern", PATTERNS)
def test_fig3def_canonical_cost_ratio(benchmark, emit, pattern):
    ga, runs = benchmark.pedantic(
        _run_pattern, args=(pattern,), rounds=1, iterations=1
    )
    label = FIG_LABEL[pattern]
    final = {}
    for policy, result in runs.items():
        reference = min(ga.best_cost, result.final_cost)
        series = result.report.cost_ratio_series(reference)
        grid = [series[-1][0] * f for f in (0, 0.125, 0.25, 0.5, 0.75, 1.0)]
        sampled = resample_series(series, grid)
        final[policy] = sampled[-1][1]
        emit(
            f"[Fig {label}] canonical TM={pattern:7s} {policy.upper():3s}  "
            f"ratio(t): " + format_series(sampled)
        )
    for policy, result in runs.items():
        reference = min(ga.best_cost, result.final_cost)
        start_ratio = result.initial_cost / reference
        emit(
            f"[Fig {label}]   {policy.upper():3s} start={start_ratio:.2f} "
            f"final={final[policy]:.2f}  "
            f"deviation_from_optimal={final[policy] - 1:.0%}  "
            f"migrations={result.report.total_migrations}"
        )
        # Paper shape: substantial reduction, settling near the optimal.
        assert final[policy] < 0.55 * start_ratio
        assert final[policy] < 2.2
