"""Fig. 5b — Distribution of migrated bytes per VM migration.

Paper measurements over 100+ real Xen migrations of 196 MiB guests: the
distribution is flat and wide (highly varying dirty rates), with mean
~127 MB, standard deviation ~11 MB, and every sample below 150 MB.
"""

import numpy as np

from repro.testbed import PreCopyMigrationModel


def _sample(n=300):
    model = PreCopyMigrationModel(seed=42)
    return np.array(
        [o.migrated_bytes_mb for o in model.sample_migrations(n)]
    )


def test_fig5b_migrated_bytes_distribution(benchmark, emit):
    samples = benchmark.pedantic(_sample, rounds=1, iterations=1)
    hist, edges = np.histogram(samples, bins=8)
    bars = "  ".join(
        f"{lo:.0f}-{hi:.0f}MB:{count / len(samples):.2f}"
        for lo, hi, count in zip(edges, edges[1:], hist)
    )
    emit(
        f"[Fig 5b] migrated bytes over {len(samples)} migrations: "
        f"mean={samples.mean():.0f}MB (paper 127) "
        f"std={samples.std():.1f}MB (paper 11) max={samples.max():.0f}MB (paper <150)"
    )
    emit(f"[Fig 5b] histogram: {bars}")
    assert 115 < samples.mean() < 140
    assert 5 < samples.std() < 20
    assert samples.max() < 165


def test_fig5b_spread_is_flat_and_wide(benchmark, emit):
    """No single 5 MB bucket dominates (the paper's 'flat and wide' spread)."""
    samples = benchmark.pedantic(_sample, rounds=1, iterations=1)
    hist, _ = np.histogram(samples, bins=8)
    top_share = hist.max() / hist.sum()
    emit(f"[Fig 5b] largest histogram bucket holds {top_share:.0%} of mass")
    assert top_share < 0.5
