"""Fig. 5a — Flow-table operation latency vs number of flows.

The paper stress-tests the dom0 flow table with up to one million
simultaneous flows in two shapes: *type 1* (every flow has a unique source
IP) and *type 2* (groups of 1000 flows share one source IP), and reports
that all operations stay fast (a realistic 100-flow workload needs < 100ms)
with type 2 slightly cheaper.  Bench default tops out at 10^5 flows;
``REPRO_BENCH_SCALE=paper`` raises it to the paper's 10^6.
"""

import os
import time

import pytest

from repro.testbed import FlowKey, FlowTable

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "paper"
SIZES = [100, 10_000, 100_000] + ([1_000_000] if PAPER_SCALE else [])


def _make_keys(n_flows: int, flow_type: int):
    """Type 1: unique source IPs.  Type 2: 1000 flows share a source IP."""
    keys = []
    for i in range(n_flows):
        group = i if flow_type == 1 else i // 1000
        src = f"10.{(group >> 16) & 0xFF}.{(group >> 8) & 0xFF}.{group & 0xFF}"
        dst = f"11.{(i >> 16) & 0xFF}.{(i >> 8) & 0xFF}.{i & 0xFF}"
        keys.append(FlowKey(src_ip=src, dst_ip=dst, src_port=i & 0xFFFF))
    return keys


def _timed_operations(n_flows: int, flow_type: int):
    keys = _make_keys(n_flows, flow_type)
    table = FlowTable()
    t0 = time.perf_counter()
    for key in keys:
        table.add_flow(key)
    add_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for key in keys:
        table.lookup(key)
    lookup_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for key in keys:
        table.delete_flow(key)
    delete_s = time.perf_counter() - t0
    return add_s, lookup_s, delete_s


@pytest.mark.parametrize("flow_type", [1, 2])
@pytest.mark.parametrize("n_flows", SIZES)
def test_fig5a_flowtable_operations(benchmark, emit, n_flows, flow_type):
    add_s, lookup_s, delete_s = benchmark.pedantic(
        _timed_operations, args=(n_flows, flow_type), rounds=1, iterations=1
    )
    emit(
        f"[Fig 5a] type={flow_type} flows={n_flows:>9,d}  "
        f"add={add_s:7.3f}s lookup={lookup_s:7.3f}s delete={delete_s:7.3f}s"
    )
    if n_flows == 100:
        # Paper: "no more than 100ms for a realistic DC production
        # workload of 100 concurrent flows".
        assert add_s + lookup_s + delete_s < 0.1


def test_fig5a_type2_add_not_slower(benchmark, emit):
    """Type-2 flow sets (shared source IPs) must not be slower to add."""

    def _compare():
        t1 = _timed_operations(50_000, 1)
        t2 = _timed_operations(50_000, 2)
        return t1, t2

    (add1, _, _), (add2, _, _) = benchmark.pedantic(_compare, rounds=1, iterations=1)
    emit(
        f"[Fig 5a] 50k-flow add: type1={add1:.3f}s type2={add2:.3f}s "
        f"(paper: type 2 requires less time)"
    )
    assert add2 < add1 * 1.5  # allow noise; the index is the difference
