"""Fig. 3a-c — The sparse / medium / dense ToR traffic matrices.

The paper's heatmaps show sparse matrices where "only a handful of ToRs
become hotspots" while density and load grow from (a) to (c).  The bench
prints the matrix statistics that characterize those heatmaps: pair
density, total load, and the skew (Gini) of the off-diagonal ToR matrix.
"""

import numpy as np
import pytest

from conftest import canonical_config
from repro.sim import build_environment
from repro.util.stats import gini


def _tor_stats(pattern: str):
    env = build_environment(canonical_config(pattern))
    tor = env.traffic.tor_matrix(env.allocation)
    off_diag = tor[~np.eye(len(tor), dtype=bool)]
    active = float((off_diag > 0).mean())
    return {
        "pattern": pattern,
        "vm_pairs": env.traffic.n_pairs,
        "total_rate": env.traffic.total_rate(),
        "active_tor_pairs": active,
        "tor_gini": gini(off_diag),
        "hottest_share": float(off_diag.max() / max(off_diag.sum(), 1e-12)),
    }


@pytest.mark.parametrize("pattern", ["sparse", "medium", "dense"])
def test_fig3abc_traffic_matrix(benchmark, emit, pattern):
    stats = benchmark.pedantic(_tor_stats, args=(pattern,), rounds=1, iterations=1)
    emit(
        f"[Fig 3a-c] TM={pattern:7s}  vm_pairs={stats['vm_pairs']:5d}  "
        f"total={stats['total_rate']:.3g} B/s  "
        f"active_ToR_pairs={stats['active_tor_pairs']:.2%}  "
        f"gini={stats['tor_gini']:.2f}  "
        f"hottest_pair_share={stats['hottest_share']:.2%}"
    )
    # Hotspot structure: skewed off-diagonal mass in every density.
    assert stats["tor_gini"] > 0.4


def test_fig3abc_density_progression(benchmark, emit):
    """Sparse -> medium -> dense must strictly grow pair count and load."""

    def _all():
        return [_tor_stats(p) for p in ("sparse", "medium", "dense")]

    stats = benchmark.pedantic(_all, rounds=1, iterations=1)
    sparse, medium, dense = stats
    emit(
        "[Fig 3a-c] density progression: "
        f"pairs {sparse['vm_pairs']} -> {medium['vm_pairs']} -> {dense['vm_pairs']};  "
        f"load {sparse['total_rate']:.3g} -> {medium['total_rate']:.3g} -> "
        f"{dense['total_rate']:.3g} B/s"
    )
    assert sparse["vm_pairs"] < medium["vm_pairs"] < dense["vm_pairs"]
    # The paper scales the TM x10 and x50.
    assert medium["total_rate"] > 5 * sparse["total_rate"]
    assert dense["total_rate"] > 20 * sparse["total_rate"]
