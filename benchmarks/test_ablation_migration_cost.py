"""Ablation — migration cost cm (paper §VI: "a DC operator may wish to
limit the number of VM migrations over a temporal interval, [so] we have
also experimented with different cm values").

Raising cm trades migrations for residual cost: fewer (only high-gain)
migrations happen, and the achieved reduction shrinks monotonically.
"""

import pytest

from conftest import canonical_config
from repro.sim import build_environment, run_experiment


def _sweep():
    env0 = build_environment(canonical_config("sparse"))
    # Scale cm as fractions of the mean per-pair cost so the sweep is
    # meaningful across traffic intensities.
    base = env0.cost_model.total_cost(env0.allocation, env0.traffic)
    mean_pair = base / max(env0.traffic.n_pairs, 1)
    rows = []
    for factor in (0.0, 0.1, 0.5, 2.0, 10.0):
        cm = factor * mean_pair
        config = canonical_config("sparse", policy="hlf", migration_cost=cm)
        result = run_experiment(config)
        rows.append((factor, result.report.total_migrations, result.report.cost_reduction))
    return rows


def test_ablation_migration_cost_tradeoff(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "[Ablation cm] cm(x mean pair cost) -> migrations / cost reduction: "
        + "  ".join(f"{f:g}x:{m}/{r:.0%}" for f, m, r in rows)
    )
    migrations = [m for _, m, _ in rows]
    reductions = [r for _, _, r in rows]
    # Monotone trade-off: higher cm, fewer migrations, less reduction.
    assert all(b <= a for a, b in zip(migrations, migrations[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(reductions, reductions[1:]))
    # Every migration that does happen still pays for itself.
    assert reductions[-1] >= 0
    # cm=0 migrates the most and reduces the most.
    assert migrations[0] > migrations[-1]
