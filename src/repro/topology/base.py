"""Abstract topology interface shared by the canonical tree and fat-tree.

The S-CORE cost model (paper §III) only needs, for any two *hosts*, the
*communication level* ``l(u, v) = h(x, y) / 2`` — 0 when co-located, 1 when
in the same rack, 2 within the same aggregation domain/pod, 3 across the
core.  The simulator additionally needs actual link-level paths so it can
account utilization per link (Fig. 4a).  Subclasses provide both: the level
queries run in O(1) from host coordinates, and ``path_links`` enumerates the
physical links traversed by a flow (with deterministic ECMP hashing when the
topology offers multiple equal-cost paths).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.links import Link, LinkId, Node


class Topology(ABC):
    """A layered data-center network topology.

    Hosts are identified by integer indices ``0 .. n_hosts - 1``; racks by
    integer indices ``0 .. n_racks - 1``.  The *level* terminology follows
    paper §II: links between servers and ToR switches are 1-level links,
    ToR–aggregation links are 2-level, aggregation–core links are 3-level.
    """

    #: Highest communication level in the topology (3 for both paper topologies).
    max_level: int = 3

    def __init__(self) -> None:
        self._links: Dict[LinkId, Link] = {}
        self._links_by_level: Dict[int, List[LinkId]] = {}
        self._rack_ids: Optional[np.ndarray] = None
        self._pod_ids: Optional[np.ndarray] = None
        self._dense_link_ids: Optional[List[LinkId]] = None
        self._link_dense_index: Optional[Dict[LinkId, int]] = None

    # -- structure ---------------------------------------------------------

    @property
    @abstractmethod
    def n_hosts(self) -> int:
        """Number of physical hosts (servers)."""

    @property
    @abstractmethod
    def n_racks(self) -> int:
        """Number of racks (ToR switches)."""

    @property
    def hosts(self) -> range:
        """Iterable of all host indices."""
        return range(self.n_hosts)

    @property
    def racks(self) -> range:
        """Iterable of all rack indices."""
        return range(self.n_racks)

    @abstractmethod
    def rack_of(self, host: int) -> int:
        """Rack (ToR switch) index that ``host`` is attached to."""

    @abstractmethod
    def pod_of(self, host: int) -> int:
        """Aggregation-domain (pod / agg group) index of ``host``."""

    def hosts_in_rack(self, rack: int) -> range:
        """Host indices attached to ``rack``; contiguous in both topologies."""
        per = self.n_hosts // self.n_racks
        self._check_rack(rack)
        return range(rack * per, (rack + 1) * per)

    # -- levels and paths ---------------------------------------------------

    def level_between(self, host_a: int, host_b: int) -> int:
        """Communication level between two hosts (paper §II).

        0 when co-located, 1 when same rack, 2 when same pod, 3 across core.
        """
        self._check_host(host_a)
        self._check_host(host_b)
        if host_a == host_b:
            return 0
        if self.rack_of(host_a) == self.rack_of(host_b):
            return 1
        if self.pod_of(host_a) == self.pod_of(host_b):
            return 2
        return 3

    def hops_between(self, host_a: int, host_b: int) -> int:
        """Shortest-path hop count h(x, y); always 2 * level (paper §II)."""
        return 2 * self.level_between(host_a, host_b)

    def host_rack_ids(self) -> np.ndarray:
        """Per-host rack id vector (``rack_of`` for every host, cached).

        Topologies are immutable after construction, so the vector is built
        once and shared; it is what makes vectorized level computations over
        whole candidate sets O(1) per host pair.
        """
        if self._rack_ids is None:
            self._rack_ids = np.fromiter(
                (self.rack_of(h) for h in range(self.n_hosts)),
                dtype=np.int64,
                count=self.n_hosts,
            )
            self._rack_ids.setflags(write=False)
        return self._rack_ids

    def host_pod_ids(self) -> np.ndarray:
        """Per-host pod id vector (``pod_of`` for every host, cached)."""
        if self._pod_ids is None:
            self._pod_ids = np.fromiter(
                (self.pod_of(h) for h in range(self.n_hosts)),
                dtype=np.int64,
                count=self.n_hosts,
            )
            self._pod_ids.setflags(write=False)
        return self._pod_ids

    def level_between_many(self, host: int, hosts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`level_between` of one host against many.

        Returns an int64 array of communication levels, one per entry of
        ``hosts``.
        """
        self._check_host(host)
        hosts = np.asarray(hosts, dtype=np.int64)
        if hosts.size and (hosts.min() < 0 or hosts.max() >= self.n_hosts):
            raise ValueError(
                f"host index out of range [0, {self.n_hosts}) in {hosts}"
            )
        rack = self.host_rack_ids()
        pod = self.host_pod_ids()
        levels = np.full(hosts.shape, 3, dtype=np.int64)
        levels[pod[hosts] == pod[host]] = 2
        levels[rack[hosts] == rack[host]] = 1
        levels[hosts == host] = 0
        return levels

    @abstractmethod
    def path_links(self, host_a: int, host_b: int, flow_key: int = 0) -> Tuple[LinkId, ...]:
        """Physical links traversed by traffic between two hosts.

        ``flow_key`` selects among equal-cost paths deterministically (ECMP):
        the same key always yields the same path, different keys spread load.
        Co-located hosts (level 0) traverse no physical links.
        """

    # -- link inventory ------------------------------------------------------

    @property
    def links(self) -> Dict[LinkId, Link]:
        """All physical links, keyed by canonical link id."""
        return self._links

    def links_at_level(self, level: int) -> Sequence[LinkId]:
        """Identifiers of every link at ``level`` (1-based)."""
        if level not in self._links_by_level:
            raise ValueError(
                f"level must be one of {sorted(self._links_by_level)}, got {level}"
            )
        return self._links_by_level[level]

    def link_level(self, link_id: LinkId) -> int:
        """Level of the link with id ``link_id``."""
        return self._links[link_id].level

    def _register_link(self, link: Link) -> None:
        """Record a link in the inventory (subclass constructors only)."""
        if link.link_id in self._links:
            raise ValueError(f"duplicate link {link.link_id!r}")
        self._links[link.link_id] = link
        self._links_by_level.setdefault(link.level, []).append(link.link_id)

    # -- dense link indexing (vectorized routing) -----------------------------

    def dense_link_ids(self) -> List[LinkId]:
        """Link ids in registration order; index = dense link index.

        The dense index space is what the vectorized path enumeration
        (:meth:`batch_path_link_indices`) speaks, so per-link accounting
        can run as ``np.bincount`` over integer link indices.
        """
        if self._dense_link_ids is None:
            self._dense_link_ids = list(self._links)
        return self._dense_link_ids

    def link_dense_index(self) -> Dict[LinkId, int]:
        """Mapping from link id to its dense index (built once, cached)."""
        if self._link_dense_index is None:
            self._link_dense_index = {
                link_id: i for i, link_id in enumerate(self.dense_link_ids())
            }
        return self._link_dense_index

    def batch_path_link_indices(
        self,
        hosts_u: np.ndarray,
        hosts_v: np.ndarray,
        flow_keys: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense link indices of every flow's ECMP path, flattened.

        Returns ``(link_indices, flow_indices)`` where entry ``j`` says
        flow ``flow_indices[j]`` traverses link ``link_indices[j]``; each
        flow contributes one entry per link of its path (co-located flows
        contribute none).  Paths match :meth:`path_links` with the same
        flow key exactly — the differential suite pins that.  This base
        implementation routes per pair in python; the paper topologies
        override it with fully vectorized enumeration.
        """
        index = self.link_dense_index()
        links: List[int] = []
        flows: List[int] = []
        for i, (hu, hv, key) in enumerate(
            zip(hosts_u.tolist(), hosts_v.tolist(), flow_keys.tolist())
        ):
            for link in self.path_links(int(hu), int(hv), flow_key=int(key)):
                links.append(index[link])
                flows.append(i)
        return (
            np.array(links, dtype=np.int64),
            np.array(flows, dtype=np.int64),
        )

    # -- interop -------------------------------------------------------------

    def to_networkx(self):
        """Return the topology as an undirected :mod:`networkx` graph.

        Nodes are ``(kind, index)`` tuples; host nodes additionally appear.
        Used by :class:`repro.topology.routing.ReferenceRouter` to validate
        the O(1) level computations against true shortest paths.
        """
        import networkx as nx

        graph = nx.Graph()
        for link in self._links.values():
            a, b = link.endpoints
            graph.add_edge(a, b, level=link.level, capacity_bps=link.capacity_bps)
        return graph

    # -- validation helpers ---------------------------------------------------

    def _check_host(self, host: int) -> None:
        if not 0 <= host < self.n_hosts:
            raise ValueError(f"host index {host} out of range [0, {self.n_hosts})")

    def _check_rack(self, rack: int) -> None:
        if not 0 <= rack < self.n_racks:
            raise ValueError(f"rack index {rack} out of range [0, {self.n_racks})")

    # -- convenience -----------------------------------------------------------

    def describe(self) -> str:
        """One-line human-readable description of the topology instance."""
        per_level = {
            level: len(ids) for level, ids in sorted(self._links_by_level.items())
        }
        return (
            f"{type(self).__name__}(hosts={self.n_hosts}, racks={self.n_racks}, "
            f"links_per_level={per_level})"
        )


def host_node(host: int) -> Node:
    """Node tuple for a host index."""
    return ("host", host)


def tor_node(rack: int) -> Node:
    """Node tuple for a ToR (edge) switch index."""
    return ("tor", rack)


def agg_node(agg: int) -> Node:
    """Node tuple for an aggregation switch index."""
    return ("agg", agg)


def core_node(core: int) -> Node:
    """Node tuple for a core switch index."""
    return ("core", core)
