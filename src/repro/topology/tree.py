"""Canonical layered tree topology (paper Fig. 1a).

Structure: every host attaches to one ToR switch; ToR switches are grouped,
each group hanging off one aggregation switch; every aggregation switch
connects to every core switch.  Bandwidth oversubscription grows towards the
core, which is exactly the asymmetry S-CORE exploits by localizing traffic.

The paper's simulated instance is 2560 hosts / 128 ToR switches / 20 hosts
per rack; build it with :meth:`CanonicalTree.paper_scale`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.topology.base import (
    Topology,
    agg_node,
    core_node,
    host_node,
    tor_node,
)
from repro.topology.links import (
    DEFAULT_CAPACITY_BPS,
    Link,
    LinkId,
    canonical_link_id,
)
from repro.util.validation import check_positive


class CanonicalTree(Topology):
    """Host → ToR → aggregation → core tree.

    Parameters
    ----------
    n_racks:
        Number of ToR switches.
    hosts_per_rack:
        Hosts attached to each ToR switch.
    tors_per_agg:
        ToR switches per aggregation switch (aggregation domain size).
        ``n_racks`` must be divisible by it.
    n_cores:
        Number of core switches; every aggregation switch connects to every
        core switch, giving ECMP fan-out at the core layer.
    capacity_bps:
        Optional per-level link capacities, ``{1: ..., 2: ..., 3: ...}``;
        defaults to 1 Gb/s host links and 10 Gb/s switch links.
    """

    def __init__(
        self,
        n_racks: int = 8,
        hosts_per_rack: int = 20,
        tors_per_agg: int = 4,
        n_cores: int = 2,
        capacity_bps: Optional[Dict[int, float]] = None,
    ) -> None:
        super().__init__()
        check_positive("n_racks", n_racks)
        check_positive("hosts_per_rack", hosts_per_rack)
        check_positive("tors_per_agg", tors_per_agg)
        check_positive("n_cores", n_cores)
        if n_racks % tors_per_agg != 0:
            raise ValueError(
                f"n_racks ({n_racks}) must be divisible by tors_per_agg "
                f"({tors_per_agg})"
            )
        self._n_racks = n_racks
        self._hosts_per_rack = hosts_per_rack
        self._tors_per_agg = tors_per_agg
        self._n_aggs = n_racks // tors_per_agg
        self._n_cores = n_cores
        caps = dict(DEFAULT_CAPACITY_BPS)
        if capacity_bps:
            caps.update(capacity_bps)
        self._build_links(caps)

    @classmethod
    def paper_scale(cls) -> "CanonicalTree":
        """The paper's simulation instance: 2560 hosts, 128 ToRs, 20/rack."""
        return cls(n_racks=128, hosts_per_rack=20, tors_per_agg=8, n_cores=4)

    # -- structure -----------------------------------------------------------

    @property
    def n_hosts(self) -> int:
        return self._n_racks * self._hosts_per_rack

    @property
    def n_racks(self) -> int:
        return self._n_racks

    @property
    def hosts_per_rack(self) -> int:
        """Hosts attached to each ToR switch."""
        return self._hosts_per_rack

    @property
    def n_aggs(self) -> int:
        """Number of aggregation switches (= aggregation domains)."""
        return self._n_aggs

    @property
    def n_cores(self) -> int:
        """Number of core switches."""
        return self._n_cores

    def rack_of(self, host: int) -> int:
        self._check_host(host)
        return host // self._hosts_per_rack

    def pod_of(self, host: int) -> int:
        return self.rack_of(host) // self._tors_per_agg

    def agg_of_rack(self, rack: int) -> int:
        """Aggregation switch serving ``rack``."""
        self._check_rack(rack)
        return rack // self._tors_per_agg

    # -- paths -----------------------------------------------------------------

    def path_links(self, host_a: int, host_b: int, flow_key: int = 0) -> Tuple[LinkId, ...]:
        level = self.level_between(host_a, host_b)
        if level == 0:
            return ()
        rack_a, rack_b = self.rack_of(host_a), self.rack_of(host_b)
        up_a = canonical_link_id(host_node(host_a), tor_node(rack_a))
        up_b = canonical_link_id(host_node(host_b), tor_node(rack_b))
        if level == 1:
            return (up_a, up_b)
        agg_a, agg_b = self.agg_of_rack(rack_a), self.agg_of_rack(rack_b)
        tor_up_a = canonical_link_id(tor_node(rack_a), agg_node(agg_a))
        tor_up_b = canonical_link_id(tor_node(rack_b), agg_node(agg_b))
        if level == 2:
            return (up_a, tor_up_a, tor_up_b, up_b)
        core = flow_key % self._n_cores
        agg_up_a = canonical_link_id(agg_node(agg_a), core_node(core))
        agg_up_b = canonical_link_id(agg_node(agg_b), core_node(core))
        return (up_a, tor_up_a, agg_up_a, agg_up_b, tor_up_b, up_b)

    def batch_path_link_indices(
        self,
        hosts_u: np.ndarray,
        hosts_v: np.ndarray,
        flow_keys: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`path_links` over whole flow arrays.

        Same paths, same ECMP core choice (``flow_key % n_cores``) as the
        scalar method, but computed as integer arithmetic over cached
        per-layer link-index tables — no per-pair python.
        """
        hu = np.asarray(hosts_u, dtype=np.int64)
        hv = np.asarray(hosts_v, dtype=np.int64)
        keys = np.asarray(flow_keys, dtype=np.uint64)
        host_up, tor_up, agg_core = self._link_index_tables()
        rack_of = self.host_rack_ids()
        ru, rv = rack_of[hu], rack_of[hv]
        agg_u, agg_v = ru // self._tors_per_agg, rv // self._tors_per_agg
        flows = np.arange(len(hu), dtype=np.int64)

        up = hu != hv  # level >= 1: both access links
        cross_rack = ru != rv  # level >= 2: both ToR uplinks
        cross_agg = agg_u != agg_v  # level 3: two core links
        core = (keys[cross_agg] % np.uint64(self._n_cores)).astype(np.int64)
        links = np.concatenate(
            [
                host_up[hu[up]],
                host_up[hv[up]],
                tor_up[ru[cross_rack]],
                tor_up[rv[cross_rack]],
                agg_core[agg_u[cross_agg], core],
                agg_core[agg_v[cross_agg], core],
            ]
        )
        flow_idx = np.concatenate(
            [
                flows[up],
                flows[up],
                flows[cross_rack],
                flows[cross_rack],
                flows[cross_agg],
                flows[cross_agg],
            ]
        )
        return links, flow_idx

    def _link_index_tables(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached dense-link-index tables per layer (host, ToR, agg×core)."""
        if not hasattr(self, "_link_tables"):
            index = self.link_dense_index()
            host_up = np.array(
                [
                    index[
                        canonical_link_id(
                            host_node(h), tor_node(h // self._hosts_per_rack)
                        )
                    ]
                    for h in range(self.n_hosts)
                ],
                dtype=np.int64,
            )
            tor_up = np.array(
                [
                    index[
                        canonical_link_id(
                            tor_node(r), agg_node(r // self._tors_per_agg)
                        )
                    ]
                    for r in range(self._n_racks)
                ],
                dtype=np.int64,
            )
            agg_core = np.array(
                [
                    [
                        index[canonical_link_id(agg_node(a), core_node(c))]
                        for c in range(self._n_cores)
                    ]
                    for a in range(self._n_aggs)
                ],
                dtype=np.int64,
            )
            self._link_tables = (host_up, tor_up, agg_core)
        return self._link_tables

    # -- construction ------------------------------------------------------------

    def _build_links(self, caps: Dict[int, float]) -> None:
        for host in range(self.n_hosts):
            rack = host // self._hosts_per_rack
            self._register_link(
                Link(
                    link_id=canonical_link_id(host_node(host), tor_node(rack)),
                    level=1,
                    capacity_bps=caps[1],
                )
            )
        for rack in range(self._n_racks):
            agg = rack // self._tors_per_agg
            self._register_link(
                Link(
                    link_id=canonical_link_id(tor_node(rack), agg_node(agg)),
                    level=2,
                    capacity_bps=caps[2],
                )
            )
        for agg in range(self._n_aggs):
            for core in range(self._n_cores):
                self._register_link(
                    Link(
                        link_id=canonical_link_id(agg_node(agg), core_node(core)),
                        level=3,
                        capacity_bps=caps[3],
                    )
                )

    def oversubscription_ratio(self, level: int) -> float:
        """Worst-case oversubscription at ``level`` (downlink : uplink capacity).

        Quantifies the paper's premise that upper layers are oversubscribed:
        e.g. a ToR with 20 × 1 Gb/s host links and a single 10 Gb/s uplink is
        2:1 oversubscribed at level 2.
        """
        caps = {link.level: link.capacity_bps for link in self._links.values()}
        if level == 2:
            down = self._hosts_per_rack * caps[1]
            up = caps[2]
        elif level == 3:
            down = self._tors_per_agg * caps[2]
            up = self._n_cores * caps[3]
        else:
            raise ValueError(f"oversubscription is defined for levels 2 and 3, got {level}")
        return down / up
