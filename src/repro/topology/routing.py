"""Reference shortest-path routing used to validate topologies.

The concrete topologies compute communication levels and paths analytically
in O(1).  :class:`ReferenceRouter` performs the same queries with networkx
shortest paths over the full link graph; tests assert both agree, which
pins the analytical formulas (`level = hops / 2`, paper §II) to the actual
wiring.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import networkx as nx

from repro.topology.base import Topology, host_node
from repro.topology.links import LinkId, canonical_link_id


class ReferenceRouter:
    """Dijkstra-based oracle over a topology's link graph."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._graph = topology.to_networkx()

    def hops_between(self, host_a: int, host_b: int) -> int:
        """True shortest-path hop count between two hosts."""
        if host_a == host_b:
            return 0
        return nx.shortest_path_length(
            self._graph, host_node(host_a), host_node(host_b)
        )

    def level_between(self, host_a: int, host_b: int) -> int:
        """Communication level derived from true hop counts (hops / 2)."""
        hops = self.hops_between(host_a, host_b)
        if hops % 2 != 0:
            raise AssertionError(
                f"layered tree invariant violated: odd hop count {hops} "
                f"between hosts {host_a} and {host_b}"
            )
        return hops // 2

    def shortest_path_links(self, host_a: int, host_b: int) -> Tuple[LinkId, ...]:
        """One shortest path between the hosts, as canonical link ids."""
        if host_a == host_b:
            return ()
        nodes = nx.shortest_path(self._graph, host_node(host_a), host_node(host_b))
        return tuple(
            canonical_link_id(a, b) for a, b in zip(nodes, nodes[1:])
        )

    def is_connected(self) -> bool:
        """Whether every pair of nodes can reach each other."""
        return nx.is_connected(self._graph)

    def validate_path(self, host_a: int, host_b: int, flow_key: int = 0) -> bool:
        """Check the topology's analytic path is a valid shortest path.

        The path must (i) consist of existing links, (ii) form a host-to-host
        walk, and (iii) have exactly ``hops_between`` links.
        """
        path = self._topology.path_links(host_a, host_b, flow_key)
        expected_len = self.hops_between(host_a, host_b)
        if len(path) != expected_len:
            return False
        if not path:
            return host_a == host_b
        for link_id in path:
            if link_id not in self._topology.links:
                return False
        # Walk continuity: consecutive links must share an endpoint, and the
        # walk must start/end at the two hosts.
        endpoints = [set(link) for link in path]
        if host_node(host_a) not in endpoints[0]:
            return False
        if host_node(host_b) not in endpoints[-1]:
            return False
        for first, second in zip(endpoints, endpoints[1:]):
            if not first & second:
                return False
        return True
