"""Data-center network topologies (paper §II, Fig. 1).

Two concrete layered tree topologies are provided, mirroring the paper's
evaluation setups:

:class:`CanonicalTree`
    The classic host → ToR → aggregation → core tree (Fig. 1a).  The paper's
    simulation instance uses 2560 hosts, 128 ToR switches and 20 hosts per
    rack; :meth:`CanonicalTree.paper_scale` builds exactly that.
:class:`FatTree`
    A k-ary fat-tree (Fig. 1b).  The paper uses k = 16 (1024 hosts);
    :meth:`FatTree.paper_scale` builds it.

Both expose the same :class:`Topology` interface: O(1) *communication level*
queries (``level_between``), per-level link inventories, and deterministic
ECMP path enumeration used for link-utilization accounting.
"""

from repro.topology.base import Node, Topology
from repro.topology.links import Link, LinkId, canonical_link_id
from repro.topology.tree import CanonicalTree
from repro.topology.fattree import FatTree
from repro.topology.routing import ReferenceRouter

__all__ = [
    "Node",
    "Topology",
    "Link",
    "LinkId",
    "canonical_link_id",
    "CanonicalTree",
    "FatTree",
    "ReferenceRouter",
]
