"""Link primitives for layered DC topologies.

A *node* is a ``(kind, index)`` tuple, e.g. ``("host", 17)`` or
``("tor", 3)``.  A *link* is an undirected edge between two nodes; its
identifier is the endpoint pair in canonical (sorted) order so that
``(a, b)`` and ``(b, a)`` refer to the same link.

Links carry the *level* they belong to (paper §II): 1-level links connect
servers to ToR switches, 2-level links connect ToR to aggregation switches,
3-level links connect aggregation to core switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

Node = Tuple[str, int]
LinkId = Tuple[Node, Node]

#: Default link capacities in bits/second per level, reflecting commodity DC
#: gear: 1 Gb/s host uplinks, 10 Gb/s switch-to-switch links.
DEFAULT_CAPACITY_BPS = {1: 1e9, 2: 10e9, 3: 10e9}


def canonical_link_id(a: Node, b: Node) -> LinkId:
    """Return the canonical (order-independent) identifier for link a—b."""
    if a == b:
        raise ValueError(f"a link must connect two distinct nodes, got {a!r} twice")
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class Link:
    """An undirected physical link between two topology nodes.

    Attributes
    ----------
    link_id:
        Canonical endpoint pair.
    level:
        Topology layer of this link (1 = host–ToR, 2 = ToR–agg, 3 = agg–core).
    capacity_bps:
        Nominal capacity in bits per second.
    """

    link_id: LinkId
    level: int
    capacity_bps: float

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ValueError(f"link level must be >= 1, got {self.level}")
        if self.capacity_bps <= 0:
            raise ValueError(
                f"link capacity must be positive, got {self.capacity_bps}"
            )
        if canonical_link_id(*self.link_id) != self.link_id:
            raise ValueError(f"link_id {self.link_id!r} is not in canonical order")

    @property
    def endpoints(self) -> Tuple[Node, Node]:
        """The two nodes this link connects."""
        return self.link_id
