"""k-ary fat-tree topology (paper Fig. 1b; Al-Fares et al., SIGCOMM'08).

A fat-tree with parameter ``k`` (even) has ``k`` pods.  Each pod contains
``k/2`` edge (ToR) switches and ``k/2`` aggregation switches; each edge
switch serves ``k/2`` hosts, so the tree hosts ``k^3 / 4`` servers in total.
There are ``(k/2)^2`` core switches arranged in ``k/2`` groups of ``k/2``:
the j-th aggregation switch of every pod connects to every core switch of
group j.  All links have the same capacity — the fat-tree achieves full
bisection bandwidth through path multiplicity, not faster upper links.

The paper's instance is k = 16 (1024 hosts); build it with
:meth:`FatTree.paper_scale`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.topology.base import (
    Topology,
    agg_node,
    core_node,
    host_node,
    tor_node,
)
from repro.topology.links import Link, LinkId, canonical_link_id
from repro.util.rng import stable_hash32, stable_hash32_of_ints


class FatTree(Topology):
    """k-ary fat-tree.

    Parameters
    ----------
    k:
        Arity; must be even and >= 2.  Yields ``k^3/4`` hosts.
    capacity_bps:
        Uniform link capacity (fat-trees use homogeneous commodity links);
        defaults to 1 Gb/s.
    """

    def __init__(self, k: int = 4, capacity_bps: float = 1e9) -> None:
        super().__init__()
        if k < 2 or k % 2 != 0:
            raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")
        if capacity_bps <= 0:
            raise ValueError(f"capacity_bps must be positive, got {capacity_bps}")
        self._k = k
        self._half = k // 2
        self._capacity = capacity_bps
        self._build_links()

    @classmethod
    def paper_scale(cls) -> "FatTree":
        """The paper's simulation instance: k = 16, 1024 hosts."""
        return cls(k=16)

    # -- structure -----------------------------------------------------------

    @property
    def k(self) -> int:
        """Fat-tree arity."""
        return self._k

    @property
    def n_hosts(self) -> int:
        return self._k**3 // 4

    @property
    def n_racks(self) -> int:
        # One rack per edge switch: k pods x k/2 edge switches.
        return self._k * self._half

    @property
    def n_pods(self) -> int:
        """Number of pods (= k)."""
        return self._k

    @property
    def hosts_per_rack(self) -> int:
        """Hosts per edge switch (= k/2)."""
        return self._half

    @property
    def n_cores(self) -> int:
        """Number of core switches (= (k/2)^2)."""
        return self._half * self._half

    def rack_of(self, host: int) -> int:
        self._check_host(host)
        return host // self._half

    def pod_of(self, host: int) -> int:
        hosts_per_pod = self._half * self._half
        self._check_host(host)
        return host // hosts_per_pod

    def agg_index(self, pod: int, j: int) -> int:
        """Global index of the j-th aggregation switch in ``pod``."""
        if not 0 <= pod < self._k:
            raise ValueError(f"pod {pod} out of range [0, {self._k})")
        if not 0 <= j < self._half:
            raise ValueError(f"agg position {j} out of range [0, {self._half})")
        return pod * self._half + j

    def core_index(self, group: int, member: int) -> int:
        """Global index of core switch ``member`` within core ``group``."""
        if not 0 <= group < self._half or not 0 <= member < self._half:
            raise ValueError(
                f"core (group={group}, member={member}) out of range for k={self._k}"
            )
        return group * self._half + member

    # -- paths -------------------------------------------------------------------

    def path_links(self, host_a: int, host_b: int, flow_key: int = 0) -> Tuple[LinkId, ...]:
        level = self.level_between(host_a, host_b)
        if level == 0:
            return ()
        rack_a, rack_b = self.rack_of(host_a), self.rack_of(host_b)
        up_a = canonical_link_id(host_node(host_a), tor_node(rack_a))
        up_b = canonical_link_id(host_node(host_b), tor_node(rack_b))
        if level == 1:
            return (up_a, up_b)
        # ECMP choice of the aggregation "column" j is deterministic in the
        # flow key; mixing with FNV keeps consecutive keys well spread.
        mixed = stable_hash32(str(flow_key))
        j = mixed % self._half
        pod_a, pod_b = self.pod_of(host_a), self.pod_of(host_b)
        agg_a = self.agg_index(pod_a, j)
        tor_up_a = canonical_link_id(tor_node(rack_a), agg_node(agg_a))
        if level == 2:
            tor_up_b = canonical_link_id(tor_node(rack_b), agg_node(agg_a))
            return (up_a, tor_up_a, tor_up_b, up_b)
        member = (mixed >> 8) % self._half
        core = self.core_index(j, member)
        agg_b = self.agg_index(pod_b, j)
        agg_up_a = canonical_link_id(agg_node(agg_a), core_node(core))
        agg_up_b = canonical_link_id(agg_node(agg_b), core_node(core))
        tor_up_b = canonical_link_id(tor_node(rack_b), agg_node(agg_b))
        return (up_a, tor_up_a, agg_up_a, agg_up_b, tor_up_b, up_b)

    def batch_path_link_indices(
        self,
        hosts_u: np.ndarray,
        hosts_v: np.ndarray,
        flow_keys: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`path_links` over whole flow arrays.

        The ECMP column/core choice replays the scalar method bit-for-bit:
        the flow key is FNV-hashed (vectorized decimal-digit FNV-1a), the
        aggregation column is ``hash % (k/2)`` and the core member
        ``(hash >> 8) % (k/2)``.
        """
        hu = np.asarray(hosts_u, dtype=np.int64)
        hv = np.asarray(hosts_v, dtype=np.int64)
        keys = np.asarray(flow_keys, dtype=np.uint64)
        host_up, tor_agg, agg_core = self._link_index_tables()
        rack_of = self.host_rack_ids()
        pod_of = self.host_pod_ids()
        ru, rv = rack_of[hu], rack_of[hv]
        pu, pv = pod_of[hu], pod_of[hv]
        flows = np.arange(len(hu), dtype=np.int64)

        up = hu != hv
        cross_rack = ru != rv
        cross_pod = pu != pv
        same_pod_cross_rack = cross_rack & ~cross_pod

        mixed = stable_hash32_of_ints(keys)
        j = (mixed % np.uint64(self._half)).astype(np.int64)
        member = ((mixed >> np.uint64(8)) % np.uint64(self._half)).astype(
            np.int64
        )

        # Level 2 (same pod): up through column j's agg of the shared pod.
        m2 = same_pod_cross_rack
        # Level 3: each pod's column-j agg plus the chosen core of group j.
        m3 = cross_pod
        agg_a3 = pu[m3] * self._half + j[m3]
        agg_b3 = pv[m3] * self._half + j[m3]
        links = np.concatenate(
            [
                host_up[hu[up]],
                host_up[hv[up]],
                tor_agg[ru[m2], j[m2]],
                tor_agg[rv[m2], j[m2]],
                tor_agg[ru[m3], j[m3]],
                tor_agg[rv[m3], j[m3]],
                agg_core[agg_a3, member[m3]],
                agg_core[agg_b3, member[m3]],
            ]
        )
        flow_idx = np.concatenate(
            [
                flows[up],
                flows[up],
                flows[m2],
                flows[m2],
                flows[m3],
                flows[m3],
                flows[m3],
                flows[m3],
            ]
        )
        return links, flow_idx

    def _link_index_tables(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached dense-link-index tables (host, ToR×column, agg×member)."""
        if not hasattr(self, "_link_tables"):
            index = self.link_dense_index()
            host_up = np.array(
                [
                    index[
                        canonical_link_id(
                            host_node(h), tor_node(h // self._half)
                        )
                    ]
                    for h in range(self.n_hosts)
                ],
                dtype=np.int64,
            )
            tor_agg = np.array(
                [
                    [
                        index[
                            canonical_link_id(
                                tor_node(rack),
                                agg_node((rack // self._half) * self._half + j),
                            )
                        ]
                        for j in range(self._half)
                    ]
                    for rack in range(self.n_racks)
                ],
                dtype=np.int64,
            )
            agg_core = np.array(
                [
                    [
                        index[
                            canonical_link_id(
                                agg_node(agg),
                                core_node(
                                    (agg % self._half) * self._half + member
                                ),
                            )
                        ]
                        for member in range(self._half)
                    ]
                    for agg in range(self._k * self._half)
                ],
                dtype=np.int64,
            )
            self._link_tables = (host_up, tor_agg, agg_core)
        return self._link_tables

    # -- construction ----------------------------------------------------------------

    def _build_links(self) -> None:
        cap = self._capacity
        for host in range(self.n_hosts):
            rack = host // self._half
            self._register_link(
                Link(
                    link_id=canonical_link_id(host_node(host), tor_node(rack)),
                    level=1,
                    capacity_bps=cap,
                )
            )
        for pod in range(self._k):
            for e in range(self._half):
                rack = pod * self._half + e
                for j in range(self._half):
                    agg = self.agg_index(pod, j)
                    self._register_link(
                        Link(
                            link_id=canonical_link_id(tor_node(rack), agg_node(agg)),
                            level=2,
                            capacity_bps=cap,
                        )
                    )
        for pod in range(self._k):
            for j in range(self._half):
                agg = self.agg_index(pod, j)
                for member in range(self._half):
                    core = self.core_index(j, member)
                    self._register_link(
                        Link(
                            link_id=canonical_link_id(agg_node(agg), core_node(core)),
                            level=3,
                            capacity_bps=cap,
                        )
                    )
