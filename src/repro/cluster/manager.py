"""Centralized VM instance placement manager (paper §V-A).

The manager hands out unique 32-bit VM IDs ("capable of representing over
4 billion IDs before recycling") and renders them as IPv4 addresses — the
paper uses the VM's IPv4 address *as* its token ID (§V-B2).  It also owns
the per-rack server addressing scheme used for location identification
(§V-B4): servers get IPs from a subnet associated with each rack, so a VM
can infer the communication level to a peer from the two dom0 addresses
alone.
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.vm import MAX_VM_ID, VM
from repro.topology.base import Topology

#: VM tenant address space; VM id N maps to 10.0.0.0/8 + N.
_VM_NET = int(ipaddress.IPv4Address("10.0.0.0"))
#: Server (dom0) address space; rack r, position p maps to 172.16.r.p
#: style addressing generalized to wide racks.
_DOM0_NET = int(ipaddress.IPv4Address("172.16.0.0"))


def vm_ip(vm_id: int) -> str:
    """IPv4 address rendering of a VM ID (10.0.0.0/8 offset by the ID)."""
    if not 0 <= vm_id <= MAX_VM_ID:
        raise ValueError(f"vm_id out of 32-bit range: {vm_id}")
    # Only ~16.7M VMs fit in 10/8 without wrapping; plenty for any instance.
    return str(ipaddress.IPv4Address(_VM_NET + (vm_id % 2**24)))


def vm_id_from_ip(ip: str) -> int:
    """Inverse of :func:`vm_ip` for addresses inside 10.0.0.0/8."""
    addr = int(ipaddress.IPv4Address(ip))
    if not _VM_NET <= addr < _VM_NET + 2**24:
        raise ValueError(f"{ip} is not a VM tenant address")
    return addr - _VM_NET


class PlacementManager:
    """Allocates VM IDs, renders addresses, and answers location queries."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._next_id = 1  # ID 0 is reserved (paper's v0 is "lowest ID")
        self._issued: Dict[int, VM] = {}

    @property
    def cluster(self) -> Cluster:
        """The managed cluster."""
        return self._cluster

    # -- ID allocation ---------------------------------------------------------

    def create_vm(self, ram_mb: int = 1024, cpu: float = 1.0) -> VM:
        """Mint a VM with the next unique ID."""
        if self._next_id > MAX_VM_ID:
            raise RuntimeError("VM ID space exhausted")
        vm = VM(vm_id=self._next_id, ram_mb=ram_mb, cpu=cpu)
        self._issued[vm.vm_id] = vm
        self._next_id += 1
        return vm

    def create_vms(self, count: int, ram_mb: int = 1024, cpu: float = 1.0) -> List[VM]:
        """Mint ``count`` VMs with consecutive unique IDs."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return [self.create_vm(ram_mb=ram_mb, cpu=cpu) for _ in range(count)]

    def issued_vms(self) -> List[VM]:
        """All VMs ever minted by this manager, in ID order."""
        return [self._issued[i] for i in sorted(self._issued)]

    # -- addressing --------------------------------------------------------------

    def dom0_ip(self, host: int) -> str:
        """Server (dom0) address, drawn from the subnet of the host's rack.

        Racks can be wider than 254 hosts; the layout packs rack index into
        the upper bits and the host's position within the rack into the
        lower bits, so two servers share a /24-style prefix iff they share
        a rack.
        """
        topology = self._cluster.topology
        rack = topology.rack_of(host)
        per_rack = topology.n_hosts // topology.n_racks
        position = host - rack * per_rack
        return str(ipaddress.IPv4Address(_DOM0_NET + rack * 256 + position + 1))

    def host_from_dom0_ip(self, ip: str) -> int:
        """Inverse of :func:`dom0_ip`."""
        topology = self._cluster.topology
        offset = int(ipaddress.IPv4Address(ip)) - _DOM0_NET
        if offset <= 0:
            raise ValueError(f"{ip} is not a dom0 address")
        rack, position = divmod(offset - 1, 256)
        per_rack = topology.n_hosts // topology.n_racks
        host = rack * per_rack + position
        if not (0 <= host < topology.n_hosts and topology.rack_of(host) == rack):
            raise ValueError(f"{ip} does not map to a valid host")
        return host

    def rack_from_dom0_ip(self, ip: str) -> int:
        """Rack inferred from a dom0 address alone (the §V-B4 property)."""
        offset = int(ipaddress.IPv4Address(ip)) - _DOM0_NET
        if offset <= 0:
            raise ValueError(f"{ip} is not a dom0 address")
        return (offset - 1) // 256

    def level_between_dom0(self, ip_a: str, ip_b: str) -> int:
        """Communication level between two servers given their dom0 IPs.

        This is the "precomputed location cost mapping" of §V-B4: the token
        holder resolves peer dom0 addresses and looks levels up locally.
        """
        host_a = self.host_from_dom0_ip(ip_a)
        host_b = self.host_from_dom0_ip(ip_b)
        return self._cluster.topology.level_between(host_a, host_b)
