"""Virtual machine model.

VMs are identified by unique 32-bit integers (paper §V-A uses the VM's IPv4
address as its ID; here the ID is the integer form and the IP rendering
lives in :mod:`repro.cluster.manager`).  Resource demands are what the
capacity checks of §V-B5 inspect on a candidate target server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

MAX_VM_ID = 2**32 - 1


@dataclass(frozen=True, order=True)
class VM:
    """A virtual machine and its resource demand.

    Ordering is by ``vm_id``, which the Round-Robin token policy relies on
    (token circulates in ascending ID order, §V-A1).

    Attributes
    ----------
    vm_id:
        Unique 32-bit identifier.
    ram_mb:
        Memory footprint in MiB; this is what live migration must copy
        (the testbed VMs use 196 MiB, §VI-C).
    cpu:
        CPU demand in cores (may be fractional).
    """

    vm_id: int
    ram_mb: int = field(default=1024, compare=False)
    cpu: float = field(default=1.0, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.vm_id <= MAX_VM_ID:
            raise ValueError(
                f"vm_id must fit in 32 bits (0..{MAX_VM_ID}), got {self.vm_id}"
            )
        if self.ram_mb <= 0:
            raise ValueError(f"ram_mb must be positive, got {self.ram_mb}")
        if self.cpu <= 0:
            raise ValueError(f"cpu must be positive, got {self.cpu}")
