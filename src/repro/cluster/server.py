"""Physical server model with capacity accounting.

The paper caps each host at 16 VMs "to model a typical DC server's capacity"
(§VI) and additionally checks residual RAM and bandwidth on migration
targets (§V-B5: the capacity response reports how many more VMs a host can
take and its available RAM; §V-C adds a link-load threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.cluster.vm import VM


@dataclass(frozen=True)
class ServerCapacity:
    """Static resource capacity of one server.

    Attributes
    ----------
    max_vms:
        VM slots (the paper's value is 16).
    ram_mb:
        Total RAM available for guest VMs.
    cpu:
        Total CPU cores available for guests.
    nic_bps:
        NIC line rate in bits/second (1 Gb/s in the testbed).
    """

    max_vms: int = 16
    ram_mb: int = 32768
    cpu: float = 16.0
    nic_bps: float = 1e9

    def __post_init__(self) -> None:
        # 0 slots is legal: a drained host held offline for maintenance
        # (no VM may land on it) that still exists in the topology.
        if self.max_vms < 0:
            raise ValueError(f"max_vms must be >= 0, got {self.max_vms}")
        if self.ram_mb <= 0:
            raise ValueError(f"ram_mb must be positive, got {self.ram_mb}")
        if self.cpu <= 0:
            raise ValueError(f"cpu must be positive, got {self.cpu}")
        if self.nic_bps <= 0:
            raise ValueError(f"nic_bps must be positive, got {self.nic_bps}")


class Server:
    """A physical host: identity, capacity and the VMs it currently runs."""

    def __init__(self, host: int, capacity: ServerCapacity = ServerCapacity()) -> None:
        if host < 0:
            raise ValueError(f"host index must be >= 0, got {host}")
        self._host = host
        self._capacity = capacity
        self._vms: Dict[int, VM] = {}
        self._used_ram = 0
        self._used_cpu = 0.0

    @property
    def host(self) -> int:
        """Host (topology) index of this server."""
        return self._host

    @property
    def capacity(self) -> ServerCapacity:
        """Static capacity of this server."""
        return self._capacity

    def set_capacity(self, capacity: ServerCapacity) -> None:
        """Resize this server in place (maintenance, hardware upgrade).

        The new capacity must cover whatever the server currently runs;
        shrinking below usage would corrupt the admission accounting.
        """
        if (
            len(self._vms) > capacity.max_vms
            or self._used_ram > capacity.ram_mb
            or self._used_cpu > capacity.cpu
        ):
            raise ValueError(
                f"host {self._host} usage ({len(self._vms)} VMs, "
                f"{self._used_ram}MiB, {self._used_cpu} cores) exceeds the "
                f"requested capacity"
            )
        self._capacity = capacity

    @property
    def vm_ids(self) -> FrozenSet[int]:
        """IDs of the VMs currently hosted here."""
        return frozenset(self._vms)

    @property
    def n_vms(self) -> int:
        """Number of VMs currently hosted."""
        return len(self._vms)

    @property
    def free_slots(self) -> int:
        """Remaining VM slots (the §V-B5 capacity-response field)."""
        return self._capacity.max_vms - len(self._vms)

    @property
    def free_ram_mb(self) -> int:
        """Remaining guest RAM (the other §V-B5 capacity-response field)."""
        return self._capacity.ram_mb - self._used_ram

    @property
    def free_cpu(self) -> float:
        """Remaining CPU cores."""
        return self._capacity.cpu - self._used_cpu

    def hosts_vm(self, vm_id: int) -> bool:
        """Whether the VM with ``vm_id`` currently runs on this server."""
        return vm_id in self._vms

    def can_host(self, vm: VM) -> bool:
        """Whether this server has slot, RAM and CPU headroom for ``vm``."""
        return (
            self.free_slots >= 1
            and self.free_ram_mb >= vm.ram_mb
            and self.free_cpu >= vm.cpu
        )

    def admit(self, vm: VM) -> None:
        """Place ``vm`` on this server (in-migration); capacity-checked."""
        if vm.vm_id in self._vms:
            raise ValueError(f"VM {vm.vm_id} is already on host {self._host}")
        if not self.can_host(vm):
            raise ValueError(
                f"host {self._host} cannot accommodate VM {vm.vm_id}: "
                f"slots={self.free_slots}, free_ram={self.free_ram_mb}MiB, "
                f"free_cpu={self.free_cpu}"
            )
        self._vms[vm.vm_id] = vm
        self._used_ram += vm.ram_mb
        self._used_cpu += vm.cpu

    def evict(self, vm_id: int) -> VM:
        """Remove a VM from this server (out-migration) and return it."""
        if vm_id not in self._vms:
            raise KeyError(f"VM {vm_id} is not on host {self._host}")
        vm = self._vms.pop(vm_id)
        self._used_ram -= vm.ram_mb
        self._used_cpu -= vm.cpu
        return vm

    def __repr__(self) -> str:
        return (
            f"Server(host={self._host}, vms={len(self._vms)}/"
            f"{self._capacity.max_vms})"
        )
