"""Initial placement strategies.

The paper notes (§III) that VMs "are initially allocated either at random or
in a load-balanced manner"; S-CORE then improves whatever it is handed.
Four strategies are provided:

``place_random``
    Each VM goes to a uniformly random feasible server.
``place_round_robin``
    Load-balanced: VMs are dealt one per server cyclically.
``place_packed``
    Servers are filled to capacity in host order (dense packing; this is
    also how the GA baseline seeds its population, §VI-A).
``place_striped``
    Consecutive VM IDs are spread across *racks*, maximizing initial
    communication cost for locality-structured workloads — a worst-case
    stress start for S-CORE.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.cluster.allocation import Allocation, CapacityError
from repro.cluster.cluster import Cluster
from repro.cluster.vm import VM
from repro.util.rng import SeedLike, make_rng


def _require_capacity(cluster: Cluster, vms: Sequence[VM]) -> None:
    if len(vms) > cluster.total_vm_slots:
        raise CapacityError(
            f"{len(vms)} VMs exceed the cluster's {cluster.total_vm_slots} slots"
        )


def place_packed(cluster: Cluster, vms: Iterable[VM]) -> Allocation:
    """Fill servers to capacity in host order."""
    vms = list(vms)
    _require_capacity(cluster, vms)
    allocation = Allocation(cluster)
    host = 0
    for vm in vms:
        while host < cluster.n_servers and not allocation.can_host(host, vm):
            host += 1
        if host >= cluster.n_servers:
            raise CapacityError(f"ran out of servers placing VM {vm.vm_id}")
        allocation.add_vm(vm, host)
    return allocation


def place_round_robin(cluster: Cluster, vms: Iterable[VM]) -> Allocation:
    """Deal VMs one per server cyclically (load-balanced placement)."""
    vms = list(vms)
    _require_capacity(cluster, vms)
    allocation = Allocation(cluster)
    n = cluster.n_servers
    cursor = 0
    for vm in vms:
        placed = False
        for offset in range(n):
            host = (cursor + offset) % n
            if allocation.can_host(host, vm):
                allocation.add_vm(vm, host)
                cursor = (host + 1) % n
                placed = True
                break
        if not placed:
            raise CapacityError(f"no server can accommodate VM {vm.vm_id}")
    return allocation


def place_random(cluster: Cluster, vms: Iterable[VM], seed: SeedLike = None) -> Allocation:
    """Place each VM on a uniformly random feasible server.

    Free slot/RAM/CPU headroom is tracked in flat numpy arrays so the
    per-VM feasibility scan is one vectorized mask instead of O(hosts)
    ``can_host`` calls — at the paper's full scale (2560 hosts x ~35k VMs)
    this is the difference between sub-second and a minute of placement.
    The candidate list (and hence the consumed RNG stream) is identical to
    the per-host scan's, so seeded placements are unchanged.
    """
    vms = list(vms)
    _require_capacity(cluster, vms)
    rng = make_rng(seed)
    allocation = Allocation(cluster)
    n = cluster.n_servers
    cap_slots, cap_ram, cap_cpu, _ = cluster.capacity_arrays()
    free_slots = cap_slots.copy()
    free_ram = cap_ram.copy()
    used_cpu = np.zeros(n, dtype=float)
    for vm in vms:
        # cap - used mirrors Allocation.free_cpu bit-for-bit, so the
        # feasible set (and the seeded RNG draw) matches can_host exactly.
        feasible = np.nonzero(
            (free_slots >= 1)
            & (free_ram >= vm.ram_mb)
            & (cap_cpu - used_cpu >= vm.cpu)
        )[0]
        if feasible.size == 0:
            raise CapacityError(f"no server can accommodate VM {vm.vm_id}")
        host = int(rng.choice(feasible))
        allocation.add_vm(vm, host)
        free_slots[host] -= 1
        free_ram[host] -= vm.ram_mb
        used_cpu[host] += vm.cpu
    return allocation


def place_striped(cluster: Cluster, vms: Iterable[VM]) -> Allocation:
    """Spread consecutive VMs across racks (adversarial locality).

    VM i goes to rack ``i mod n_racks``, to the first feasible host there;
    falls back to any feasible host when the target rack is full.
    """
    vms = list(vms)
    _require_capacity(cluster, vms)
    allocation = Allocation(cluster)
    topology = cluster.topology
    n_racks = topology.n_racks
    for index, vm in enumerate(vms):
        rack = index % n_racks
        placed = False
        for host in topology.hosts_in_rack(rack):
            if allocation.can_host(host, vm):
                allocation.add_vm(vm, host)
                placed = True
                break
        if not placed:
            for host in range(cluster.n_servers):
                if allocation.can_host(host, vm):
                    allocation.add_vm(vm, host)
                    placed = True
                    break
        if not placed:
            raise CapacityError(f"no server can accommodate VM {vm.vm_id}")
    return allocation


def locality_probe_order(topology, preferred_rack: Optional[int] = None) -> List[int]:
    """Hosts in rack → same-pod → anywhere preference order from a rack.

    The shared spill order of arrival placement (:func:`place_arrivals`)
    and maintenance drains (``SCOREScheduler.drain_hosts``): the
    preferred rack's hosts first (ascending), then the other racks of its
    pod, then the rest of the topology.  ``None`` degrades to plain
    ascending host order.
    """
    if preferred_rack is None:
        return list(topology.hosts)
    order: List[int] = list(topology.hosts_in_rack(preferred_rack))
    pod = topology.pod_of(order[0])
    for rack in range(topology.n_racks):
        if rack == preferred_rack:
            continue
        hosts = topology.hosts_in_rack(rack)
        if topology.pod_of(hosts[0]) == pod:
            order.extend(hosts)
    in_order = set(order)
    order.extend(h for h in topology.hosts if h not in in_order)
    return order


def place_arrivals(
    allocation: Allocation,
    vms: Sequence[VM],
    preferred_rack: Optional[int] = None,
) -> List[int]:
    """Choose hosts for a batch of arriving VMs on a *live* allocation.

    Models tenant arrivals into a running data centre: each VM lands on
    the first feasible host of ``preferred_rack`` (ascending host order);
    when that rack is full the VM *spills* to the other racks of the same
    pod, then anywhere (:func:`locality_probe_order`).  Without a
    preferred rack, hosts are probed in ascending order directly.
    Returns the chosen host per VM (the VMs are NOT placed; pair with
    :meth:`Allocation.add_vms`) and raises :class:`CapacityError` when
    any VM fits nowhere.
    """
    topology = allocation.topology
    probe_order = locality_probe_order(topology, preferred_rack)

    # Track headroom consumed by earlier arrivals of this same batch so
    # the chosen hosts stay feasible when the batch lands together.
    slots = {h: allocation.free_slots(h) for h in probe_order}
    ram = {h: allocation.free_ram_mb(h) for h in probe_order}
    cpu = {h: allocation.free_cpu(h) for h in probe_order}
    chosen: List[int] = []
    for vm in vms:
        for host in probe_order:
            if slots[host] >= 1 and ram[host] >= vm.ram_mb and cpu[host] >= vm.cpu:
                chosen.append(host)
                slots[host] -= 1
                ram[host] -= vm.ram_mb
                cpu[host] -= vm.cpu
                break
        else:
            raise CapacityError(f"no server can accommodate VM {vm.vm_id}")
    return chosen


PLACEMENT_STRATEGIES = {
    "packed": place_packed,
    "round_robin": place_round_robin,
    "striped": place_striped,
}


def place_by_name(
    name: str, cluster: Cluster, vms: Iterable[VM], seed: SeedLike = None
) -> Allocation:
    """Dispatch a placement strategy by name (``random`` accepts a seed)."""
    if name == "random":
        return place_random(cluster, vms, seed)
    try:
        strategy = PLACEMENT_STRATEGIES[name]
    except KeyError:
        known = ["random", *sorted(PLACEMENT_STRATEGIES)]
        raise ValueError(f"unknown placement strategy {name!r}; known: {known}")
    return strategy(cluster, vms)
