"""A cluster couples a topology with one server per host."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cluster.server import Server, ServerCapacity
from repro.topology.base import Topology


class Cluster:
    """All servers of a data center, one per topology host.

    The cluster owns the :class:`Server` objects; allocations manipulate
    them through :class:`repro.cluster.allocation.Allocation`, which keeps
    the VM → host mapping consistent with server occupancy.
    """

    def __init__(
        self,
        topology: Topology,
        capacity: ServerCapacity = ServerCapacity(),
        per_host_capacity: Optional[Dict[int, ServerCapacity]] = None,
    ) -> None:
        self._topology = topology
        overrides = per_host_capacity or {}
        self._servers: List[Server] = [
            Server(host, overrides.get(host, capacity))
            for host in topology.hosts
        ]

    @property
    def topology(self) -> Topology:
        """The network topology the servers attach to."""
        return self._topology

    @property
    def n_servers(self) -> int:
        """Number of physical servers."""
        return len(self._servers)

    @property
    def total_vm_slots(self) -> int:
        """Aggregate VM capacity across all servers."""
        return sum(server.capacity.max_vms for server in self._servers)

    def server(self, host: int) -> Server:
        """The server on topology host ``host``."""
        return self._servers[host]

    def capacity_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-host (max_vms, ram_mb, cpu, nic_bps) capacity as flat arrays.

        The single source the vectorized feasibility checks (fast-cost
        engine, ``place_random``) build their mirrors from, so a new
        capacity dimension only needs wiring here.  Arrays are cached and
        read-only for callers; :meth:`set_host_capacity` is the one
        writer, patching them in place so every holder of a reference
        (live views by design) sees a resize immediately.
        """
        if not hasattr(self, "_capacity_arrays"):
            n = len(self._servers)
            slots = np.fromiter(
                (s.capacity.max_vms for s in self._servers), dtype=np.int64, count=n
            )
            ram = np.fromiter(
                (s.capacity.ram_mb for s in self._servers), dtype=np.int64, count=n
            )
            cpu = np.fromiter(
                (s.capacity.cpu for s in self._servers), dtype=float, count=n
            )
            nic = np.fromiter(
                (s.capacity.nic_bps for s in self._servers), dtype=float, count=n
            )
            for array in (slots, ram, cpu, nic):
                array.setflags(write=False)
            self._capacity_arrays = (slots, ram, cpu, nic)
        return self._capacity_arrays

    def set_host_capacity(self, host: int, capacity: ServerCapacity) -> None:
        """Resize one server in place and patch the cached capacity arrays.

        The ROADMAP capacity-gap fix: per-host capacity changes (server
        resize, heterogeneous upgrades, maintenance offlining via
        ``max_vms=0``) no longer require rebuilding every consumer —
        the cached arrays are shared views, so the fast-cost engine's
        feasibility mirrors see the change without a rebuild.  The server
        itself validates that current usage still fits.
        """
        if not 0 <= host < len(self._servers):
            raise ValueError(f"host index {host} out of range")
        self._servers[host].set_capacity(capacity)
        if hasattr(self, "_capacity_arrays"):
            slots, ram, cpu, nic = self._capacity_arrays
            for array, value in (
                (slots, capacity.max_vms),
                (ram, capacity.ram_mb),
                (cpu, capacity.cpu),
                (nic, capacity.nic_bps),
            ):
                array.setflags(write=True)
                array[host] = value
                array.setflags(write=False)

    def servers(self) -> Iterator[Server]:
        """Iterate over all servers in host order."""
        return iter(self._servers)

    def servers_in_rack(self, rack: int) -> List[Server]:
        """Servers attached to the given ToR switch."""
        return [self._servers[h] for h in self._topology.hosts_in_rack(rack)]

    def total_hosted_vms(self) -> int:
        """Number of VMs currently placed on any server."""
        return sum(server.n_vms for server in self._servers)

    def __repr__(self) -> str:
        return (
            f"Cluster(servers={self.n_servers}, "
            f"slots={self.total_vm_slots}, hosted={self.total_hosted_vms()})"
        )
