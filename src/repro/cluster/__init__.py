"""Compute-side substrate: servers, VMs, allocations and placement.

The paper (§II) models a set of VMs ``V`` hosted by servers ``S`` under an
allocation ``A`` (``server_of`` is the paper's ``sigma_A``).  Each server can
accommodate a bounded number of VMs (16 in the paper's simulations) plus
RAM/CPU/bandwidth headroom used by the migration feasibility checks (§V-B5,
§V-C).

:class:`PlacementManager` plays the role of the paper's "centralized VM
instance placement manager" (§V-A): it allocates unique 32-bit VM IDs and
per-rack IP subnets used for location identification (§V-B4).
"""

from repro.cluster.vm import VM
from repro.cluster.server import Server, ServerCapacity
from repro.cluster.cluster import Cluster
from repro.cluster.allocation import Allocation, CapacityError
from repro.cluster.placement import (
    place_arrivals,
    place_packed,
    place_random,
    place_round_robin,
    place_striped,
)
from repro.cluster.manager import PlacementManager

__all__ = [
    "VM",
    "Server",
    "ServerCapacity",
    "Cluster",
    "Allocation",
    "CapacityError",
    "place_arrivals",
    "place_packed",
    "place_random",
    "place_round_robin",
    "place_striped",
    "PlacementManager",
]
