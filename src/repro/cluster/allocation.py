"""Allocation of VMs to servers (the paper's ``A`` and ``sigma_A``).

An :class:`Allocation` is the single source of truth for *where every VM
runs*.  It enforces server capacity (slots, RAM, CPU) on every placement and
migration, supports cheap copying (the GA baseline evaluates thousands of
candidate allocations), and exposes the queries the cost model needs:
``server_of`` (the paper's ``sigma_A(u)``) and ``level_between``.

State is kept in flat dictionaries/lists rather than in the stateful
:class:`repro.cluster.server.Server` objects so that ``copy()`` is O(|V|);
the ``Server`` class models a live machine for the testbed emulation layer.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.vm import VM


class CapacityError(Exception):
    """Raised when a placement or migration would exceed server capacity."""


class Allocation:
    """A capacity-checked mapping of VMs to servers."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._vms: Dict[int, VM] = {}
        self._host_of: Dict[int, int] = {}
        n = cluster.n_servers
        self._vms_on: List[Set[int]] = [set() for _ in range(n)]
        self._used_ram: List[int] = [0] * n
        self._used_cpu: List[float] = [0.0] * n
        self._version = 0

    @property
    def version(self) -> int:
        """Counter bumped on every mutation (placement or membership).

        The fast cost engine records the version it mirrored; a mismatch
        at the next run means some writer bypassed the engine's
        incremental update path and a full resync is needed.  Batch
        operations bump it once.
        """
        return self._version

    # -- basic accessors ------------------------------------------------------

    @property
    def cluster(self) -> Cluster:
        """The cluster this allocation places VMs on."""
        return self._cluster

    @property
    def topology(self):
        """Shortcut to the cluster's network topology."""
        return self._cluster.topology

    @property
    def n_vms(self) -> int:
        """Number of placed VMs."""
        return len(self._vms)

    def vm(self, vm_id: int) -> VM:
        """The VM object with the given ID."""
        return self._vms[vm_id]

    def vms(self) -> Iterator[VM]:
        """Iterate over all placed VMs (unspecified order)."""
        return iter(self._vms.values())

    def vms_of(self, vm_ids: Sequence[int]) -> List[VM]:
        """The VM objects with the given ids, in order (KeyError on misses).

        Bulk sibling of :meth:`vm` — one ``itemgetter`` probe instead of
        a Python-level lookup per id.
        """
        ids = list(vm_ids)
        if not ids:
            return []
        if len(ids) == 1:
            return [self._vms[ids[0]]]
        return list(itemgetter(*ids)(self._vms))

    def vm_ids(self) -> Iterator[int]:
        """Iterate over all placed VM IDs."""
        return iter(self._vms.keys())

    def __contains__(self, vm_id: int) -> bool:
        return vm_id in self._vms

    def server_of(self, vm_id: int) -> int:
        """Host index currently running ``vm_id`` (the paper's sigma_A)."""
        return self._host_of[vm_id]

    def vms_on(self, host: int) -> FrozenSet[int]:
        """IDs of the VMs currently on ``host``."""
        return frozenset(self._vms_on[host])

    def level_between(self, vm_u: int, vm_v: int) -> int:
        """Communication level l_A(u, v) between two VMs (paper §II)."""
        return self.topology.level_between(
            self._host_of[vm_u], self._host_of[vm_v]
        )

    # -- capacity --------------------------------------------------------------

    def free_slots(self, host: int) -> int:
        """Remaining VM slots on ``host``."""
        cap = self._cluster.server(host).capacity
        return cap.max_vms - len(self._vms_on[host])

    def free_ram_mb(self, host: int) -> int:
        """Remaining guest RAM on ``host``."""
        cap = self._cluster.server(host).capacity
        return cap.ram_mb - self._used_ram[host]

    def free_cpu(self, host: int) -> float:
        """Remaining CPU cores on ``host``."""
        cap = self._cluster.server(host).capacity
        return cap.cpu - self._used_cpu[host]

    def can_host(self, host: int, vm: VM) -> bool:
        """Whether ``host`` has slot/RAM/CPU headroom for ``vm``."""
        return (
            self.free_slots(host) >= 1
            and self.free_ram_mb(host) >= vm.ram_mb
            and self.free_cpu(host) >= vm.cpu
        )

    # -- mutation -----------------------------------------------------------------

    def add_vm(self, vm: VM, host: int) -> None:
        """Place a new VM on ``host``; raises :class:`CapacityError` if full."""
        if vm.vm_id in self._vms:
            raise ValueError(f"VM {vm.vm_id} is already placed")
        if not 0 <= host < self._cluster.n_servers:
            raise ValueError(f"host index {host} out of range")
        if not self.can_host(host, vm):
            raise CapacityError(
                f"host {host} cannot accommodate VM {vm.vm_id}: "
                f"slots={self.free_slots(host)}, "
                f"ram={self.free_ram_mb(host)}MiB, cpu={self.free_cpu(host)}"
            )
        self._vms[vm.vm_id] = vm
        self._host_of[vm.vm_id] = host
        self._vms_on[host].add(vm.vm_id)
        self._used_ram[host] += vm.ram_mb
        self._used_cpu[host] += vm.cpu
        self._version += 1

    def add_vms(self, vms: Sequence[VM], hosts: Sequence[int]) -> None:
        """Place one batch of arriving VMs: validate all, then place.

        The first-class tenant-arrival API: capacity is checked for the
        whole batch *before* any mutation — including several arrivals
        landing on the same host — so a rejected batch raises
        :class:`CapacityError` and leaves the allocation untouched.  The
        version counter bumps once for the batch.
        """
        vms = list(vms)
        hosts = [int(h) for h in hosts]
        if len(vms) != len(hosts):
            raise ValueError(
                f"{len(vms)} VMs but {len(hosts)} hosts in the arrival batch"
            )
        ids = [vm.vm_id for vm in vms]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate VM IDs in the arrival batch")
        already = [vm_id for vm_id in ids if vm_id in self._vms]
        if already:
            raise ValueError(f"VM {already[0]} is already placed")
        need_slots: Dict[int, int] = {}
        need_ram: Dict[int, int] = {}
        need_cpu: Dict[int, float] = {}
        for vm, host in zip(vms, hosts):
            if not 0 <= host < self._cluster.n_servers:
                raise ValueError(f"host index {host} out of range")
            need_slots[host] = need_slots.get(host, 0) + 1
            need_ram[host] = need_ram.get(host, 0) + vm.ram_mb
            need_cpu[host] = need_cpu.get(host, 0.0) + vm.cpu
        for host, slots in need_slots.items():
            if (
                self.free_slots(host) < slots
                or self.free_ram_mb(host) < need_ram[host]
                or self.free_cpu(host) < need_cpu[host]
            ):
                raise CapacityError(
                    f"arrival batch rejected: host {host} lacks headroom for "
                    f"{slots} VM(s): slots={self.free_slots(host)}, "
                    f"ram={self.free_ram_mb(host)}MiB, cpu={self.free_cpu(host)}"
                )
        for vm, host in zip(vms, hosts):
            self._vms[vm.vm_id] = vm
            self._host_of[vm.vm_id] = host
            self._vms_on[host].add(vm.vm_id)
            self._used_ram[host] += vm.ram_mb
            self._used_cpu[host] += vm.cpu
        if vms:
            self._version += 1

    @classmethod
    def from_placement(
        cls, cluster: Cluster, vms: Sequence[VM], hosts: Sequence[int]
    ) -> "Allocation":
        """Bulk-construct an allocation mirroring a known placement.

        The replica path for sharded domain construction: every
        ``(vm, host)`` pair is copied from an allocation that already
        passed admission, so the per-VM bookkeeping of :meth:`add_vms`
        collapses into C-speed ``dict(zip(...))`` builds and per-host
        ``bincount`` reductions (summed in the same element order as the
        sequential loop, so the accounting is bit-identical), followed by
        one vectorized per-host capacity audit.  A placement that does
        violate capacity still raises :class:`CapacityError`.
        """
        allocation = cls(cluster)
        vms = list(vms)
        host_arr = np.asarray(hosts, dtype=np.int64)
        if len(vms) != len(host_arr):
            raise ValueError(
                f"{len(vms)} VMs but {len(host_arr)} hosts in the placement"
            )
        if not vms:
            return allocation
        n = cluster.n_servers
        if int(host_arr.min()) < 0 or int(host_arr.max()) >= n:
            bad = host_arr[(host_arr < 0) | (host_arr >= n)][0]
            raise ValueError(f"host index {int(bad)} out of range")
        ids = [vm.vm_id for vm in vms]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate VM IDs in the placement")
        host_list = host_arr.tolist()
        allocation._vms = dict(zip(ids, vms))
        allocation._host_of = dict(zip(ids, host_list))
        count = len(vms)
        ram = np.fromiter((vm.ram_mb for vm in vms), dtype=np.int64, count=count)
        cpu = np.fromiter((vm.cpu for vm in vms), dtype=float, count=count)
        used_slots = np.bincount(host_arr, minlength=n)
        used_ram = np.bincount(host_arr, weights=ram, minlength=n).astype(
            np.int64
        )
        used_cpu = np.bincount(host_arr, weights=cpu, minlength=n)
        cap_slots, cap_ram, cap_cpu, _nic = cluster.capacity_arrays()
        over = np.flatnonzero(
            (used_slots > cap_slots)
            | (used_ram > cap_ram)
            | (used_cpu > cap_cpu)
        )
        if over.size:
            host = int(over[0])
            raise CapacityError(
                f"placement rejected: host {host} over capacity "
                f"(slots {int(used_slots[host])}/{int(cap_slots[host])}, "
                f"ram {int(used_ram[host])}/{int(cap_ram[host])}MiB, "
                f"cpu {float(used_cpu[host])}/{float(cap_cpu[host])})"
            )
        order = np.argsort(host_arr, kind="stable")
        sorted_hosts = host_arr[order]
        sorted_ids = np.asarray(ids, dtype=np.int64)[order]
        uniq, starts = np.unique(sorted_hosts, return_index=True)
        bounds = np.append(starts, sorted_hosts.size).tolist()
        id_list = sorted_ids.tolist()
        vms_on = allocation._vms_on
        for i, host in enumerate(uniq.tolist()):
            vms_on[host] = set(id_list[bounds[i]:bounds[i + 1]])
        allocation._used_ram = used_ram.tolist()
        allocation._used_cpu = used_cpu.tolist()
        allocation._version = 1
        return allocation

    def remove_vm(self, vm_id: int) -> VM:
        """Remove a VM from the allocation entirely and return it."""
        vm = self._vms.pop(vm_id)
        host = self._host_of.pop(vm_id)
        self._vms_on[host].discard(vm_id)
        self._used_ram[host] -= vm.ram_mb
        self._used_cpu[host] -= vm.cpu
        self._version += 1
        return vm

    def remove_vms(self, vm_ids: Sequence[int]) -> List[VM]:
        """Remove one batch of departing VMs; all-or-nothing.

        Unknown (or duplicate) IDs raise before any removal happens; the
        version counter bumps once for the batch.  Returns the removed
        VM objects in input order.
        """
        ids = [int(v) for v in vm_ids]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate VM IDs in the departure batch")
        missing = [vm_id for vm_id in ids if vm_id not in self._vms]
        if missing:
            raise KeyError(f"VM {missing[0]} is not placed")
        removed: List[VM] = []
        for vm_id in ids:
            vm = self._vms.pop(vm_id)
            host = self._host_of.pop(vm_id)
            self._vms_on[host].discard(vm_id)
            self._used_ram[host] -= vm.ram_mb
            self._used_cpu[host] -= vm.cpu
            removed.append(vm)
        if ids:
            self._version += 1
        return removed

    def migrate(self, vm_id: int, target_host: int) -> None:
        """Move a VM to ``target_host`` (the paper's ``u -> x``).

        Raises :class:`CapacityError` when the target lacks headroom; a
        migration to the current host is a no-op.
        """
        current = self._host_of[vm_id]
        if current == target_host:
            return
        vm = self._vms[vm_id]
        if not self.can_host(target_host, vm):
            raise CapacityError(
                f"migration of VM {vm_id} to host {target_host} rejected: "
                f"slots={self.free_slots(target_host)}, "
                f"ram={self.free_ram_mb(target_host)}MiB, "
                f"cpu={self.free_cpu(target_host)}"
            )
        self._vms_on[current].discard(vm_id)
        self._used_ram[current] -= vm.ram_mb
        self._used_cpu[current] -= vm.cpu
        self._host_of[vm_id] = target_host
        self._vms_on[target_host].add(vm_id)
        self._used_ram[target_host] += vm.ram_mb
        self._used_cpu[target_host] += vm.cpu
        self._version += 1

    def migrate_many(self, moves: Iterable[tuple]) -> None:
        """Apply one wave of migrations as a batch: validate all, then move.

        ``moves`` is an iterable of ``(vm_id, target_host)``.  Capacity is
        checked for every move *before* any mutation, so a rejected wave
        raises :class:`CapacityError` and leaves the allocation untouched.
        The pre-check treats moves as independent, which is sound when
        target hosts are pairwise distinct — the contract of the wave
        planner (:func:`repro.core.migration.plan_wave`) that produces
        these batches.
        """
        host_of = self._host_of
        vms = self._vms
        vms_on = self._vms_on
        used_ram = self._used_ram
        used_cpu = self._used_cpu
        server = self._cluster.server
        moves = [
            (vm_id, target)
            for vm_id, target in moves
            if host_of[vm_id] != target
        ]
        for vm_id, target in moves:
            vm = vms[vm_id]
            cap = server(target).capacity
            if (
                cap.max_vms - len(vms_on[target]) < 1
                or cap.ram_mb - used_ram[target] < vm.ram_mb
                or cap.cpu - used_cpu[target] < vm.cpu
            ):
                raise CapacityError(
                    f"wave rejected: VM {vm_id} does not fit host {target}: "
                    f"slots={self.free_slots(target)}, "
                    f"ram={self.free_ram_mb(target)}MiB, "
                    f"cpu={self.free_cpu(target)}"
                )
        for vm_id, target in moves:
            vm = vms[vm_id]
            ram, cpu = vm.ram_mb, vm.cpu
            current = host_of[vm_id]
            vms_on[current].discard(vm_id)
            used_ram[current] -= ram
            used_cpu[current] -= cpu
            host_of[vm_id] = target
            vms_on[target].add(vm_id)
            used_ram[target] += ram
            used_cpu[target] += cpu
        if moves:
            self._version += 1

    # -- bulk / copy -----------------------------------------------------------------

    def copy(self) -> "Allocation":
        """An independent copy sharing the (immutable) cluster."""
        clone = Allocation(self._cluster)
        clone._vms = dict(self._vms)
        clone._host_of = dict(self._host_of)
        clone._vms_on = [set(s) for s in self._vms_on]
        clone._used_ram = list(self._used_ram)
        clone._used_cpu = list(self._used_cpu)
        return clone

    def as_dict(self) -> Dict[int, int]:
        """Snapshot of the VM → host mapping."""
        return dict(self._host_of)

    def mapping_arrays(
        self, vm_ids: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(host, ram_mb, cpu) arrays for the given VM ids, in order.

        C-speed bulk extraction (``itemgetter``) of what the fast engine
        mirrors at rebuild time; raises ``KeyError`` on unknown ids.
        """
        ids = list(vm_ids)
        if not ids:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.empty(0)
        if len(ids) == 1:
            vm = self._vms[ids[0]]
            return (
                np.array([self._host_of[ids[0]]], dtype=np.int64),
                np.array([vm.ram_mb], dtype=np.int64),
                np.array([vm.cpu]),
            )
        hosts = np.array(itemgetter(*ids)(self._host_of), dtype=np.int64)
        vms = itemgetter(*ids)(self._vms)
        ram = np.fromiter((vm.ram_mb for vm in vms), dtype=np.int64, count=len(ids))
        cpu = np.fromiter((vm.cpu for vm in vms), dtype=float, count=len(ids))
        return hosts, ram, cpu

    def apply_mapping(self, mapping: Dict[int, int]) -> None:
        """Re-place already-known VMs according to ``mapping``.

        Used by centralized baselines (GA) to install a computed allocation.
        All VM IDs must already exist in this allocation; capacity is
        enforced by removing every VM first and re-adding them, so a
        mapping that violates capacity raises :class:`CapacityError` and
        leaves the allocation in a *partially rebuilt* state — callers
        should validate candidate mappings beforehand (see
        :meth:`mapping_is_feasible`).
        """
        unknown = set(mapping) - set(self._vms)
        if unknown:
            raise ValueError(f"mapping contains unknown VM IDs: {sorted(unknown)[:5]}")
        vms = {vm_id: self._vms[vm_id] for vm_id in mapping}
        for vm_id in mapping:
            self.remove_vm(vm_id)
        for vm_id, host in mapping.items():
            self.add_vm(vms[vm_id], host)

    def mapping_is_feasible(self, mapping: Dict[int, int]) -> bool:
        """Whether ``mapping`` respects every server's capacity."""
        slots: Dict[int, int] = {}
        ram: Dict[int, int] = {}
        cpu: Dict[int, float] = {}
        for vm_id, host in mapping.items():
            vm = self._vms[vm_id]
            slots[host] = slots.get(host, 0) + 1
            ram[host] = ram.get(host, 0) + vm.ram_mb
            cpu[host] = cpu.get(host, 0.0) + vm.cpu
        for host, used in slots.items():
            cap = self._cluster.server(host).capacity
            if used > cap.max_vms or ram[host] > cap.ram_mb or cpu[host] > cap.cpu:
                return False
        return True

    def validate(self) -> None:
        """Internal-consistency check; raises AssertionError on corruption."""
        for vm_id, host in self._host_of.items():
            assert vm_id in self._vms_on[host], (
                f"VM {vm_id} mapped to host {host} but missing from its set"
            )
        for host, vm_ids in enumerate(self._vms_on):
            cap = self._cluster.server(host).capacity
            assert len(vm_ids) <= cap.max_vms, f"host {host} over slot capacity"
            ram = sum(self._vms[v].ram_mb for v in vm_ids)
            cpu = sum(self._vms[v].cpu for v in vm_ids)
            assert ram == self._used_ram[host], f"host {host} RAM accounting drift"
            assert abs(cpu - self._used_cpu[host]) < 1e-9, (
                f"host {host} CPU accounting drift"
            )
            assert ram <= cap.ram_mb, f"host {host} over RAM capacity"

    def __repr__(self) -> str:
        return f"Allocation(vms={len(self._vms)}, servers={self._cluster.n_servers})"
