"""Plain-text rendering of evaluation artifacts (no plotting dependencies).

The paper's figures are line plots, CDFs and heatmaps; this module renders
terminal equivalents so examples and benches can *show* results, not just
print scalars:

* :func:`render_series` — a sparkline-style line chart of (t, value) series;
* :func:`render_cdf` — a CDF curve as rows of percent-filled bars;
* :func:`render_heatmap` — a ToR traffic matrix as a shade-character grid
  (the Fig. 3a-c view);
* :func:`render_histogram` — a bucketed bar chart (the Fig. 5b view).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.util.stats import Cdf

_SHADES = " .:-=+*#%@"


def _shade(value: float, maximum: float) -> str:
    if maximum <= 0:
        return _SHADES[0]
    index = int(round((len(_SHADES) - 1) * min(1.0, value / maximum)))
    return _SHADES[index]


def render_series(
    series: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 10,
    label: str = "",
) -> str:
    """Render a (t, value) series as an ASCII line chart."""
    if not series:
        raise ValueError("cannot render an empty series")
    if width < 8 or height < 3:
        raise ValueError("width must be >= 8 and height >= 3")
    times = np.array([t for t, _ in series], dtype=float)
    values = np.array([v for _, v in series], dtype=float)
    t_min, t_max = float(times.min()), float(times.max())
    v_min, v_max = float(values.min()), float(values.max())
    v_span = (v_max - v_min) or 1.0
    t_span = (t_max - t_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in zip(times, values):
        col = int((t - t_min) / t_span * (width - 1))
        row = int((v_max - v) / v_span * (height - 1))
        grid[row][col] = "*"
    lines = []
    if label:
        lines.append(label)
    for i, row in enumerate(grid):
        edge = v_max - i * v_span / (height - 1)
        lines.append(f"{edge:10.3g} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{t_min:<10.3g}" + " " * (width - 20) + f"{t_max:>10.3g}")
    return "\n".join(lines)


def render_cdf(cdf: Cdf, points: int = 10, width: int = 40, label: str = "") -> str:
    """Render a CDF as rows of 'value | filled-bar percent'."""
    if points < 2:
        raise ValueError(f"points must be >= 2, got {points}")
    lines = [label] if label else []
    quantiles = np.linspace(0.0, 1.0, points)
    for p in quantiles:
        x = cdf.quantile(float(p)) if p > 0 else cdf.xs[0]
        filled = int(round(p * width))
        lines.append(f"{x:12.4g} |{'#' * filled}{' ' * (width - filled)}| {p:4.0%}")
    return "\n".join(lines)


def render_heatmap(matrix: np.ndarray, max_cells: int = 48, label: str = "") -> str:
    """Render a square matrix as a shade-character heatmap.

    Large matrices are downsampled by block-summing to at most
    ``max_cells`` rows/columns, mirroring how a rendered heatmap bins
    pixels.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {m.shape}")
    n = m.shape[0]
    if n > max_cells:
        factor = -(-n // max_cells)  # ceil division
        padded_size = factor * max_cells
        padded = np.zeros((padded_size, padded_size))
        padded[:n, :n] = m
        m = padded.reshape(
            max_cells, factor, max_cells, factor
        ).sum(axis=(1, 3))
        n = max_cells
    peak = float(m.max())
    lines = [label] if label else []
    for row in m:
        lines.append("".join(_shade(float(v), peak) for v in row))
    lines.append(f"(peak cell = {peak:.3g})")
    return "\n".join(lines)


def render_histogram(
    values: Sequence[float], bins: int = 8, width: int = 40, label: str = ""
) -> str:
    """Render a histogram as horizontal bars."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot render a histogram of an empty sample")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() or 1
    lines = [label] if label else []
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{lo:10.3g}-{hi:<10.3g} |{bar:<{width}}| {count}")
    return "\n".join(lines)
