"""Lightweight per-phase wall-clock accumulators (``--profile`` runs).

One :class:`PhaseTimings` instance rides along a scheduler run and is
filled by the hot loops at near-zero cost (a ``perf_counter`` pair per
phase per wave, only when profiling is enabled).  The scenario CLI
prints it so cache hit-rates and the transition / score / wave-apply /
re-mask split are observable without the bench suite.
"""

from __future__ import annotations

from typing import Dict, List


class PhaseTimings:
    """Accumulated seconds per named phase plus integer counters."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate wall-clock seconds under ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds

    def bump(self, counter: str, amount: int = 1) -> None:
        """Accumulate an integer counter (owners scored, cache hits...)."""
        self.counts[counter] = self.counts.get(counter, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record a last-value gauge (e.g. the shard imbalance ratio)."""
        self.gauges[name] = float(value)

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of owner evaluations served from the round cache."""
        seen = self.counts.get("owners", 0)
        if seen == 0:
            return 0.0
        return 1.0 - self.counts.get("owners_rescored", 0) / seen

    def lines(self, total_s: float = 0.0) -> List[str]:
        """Human-readable summary, heaviest phase first."""
        out = []
        for phase, secs in sorted(self.seconds.items(), key=lambda i: -i[1]):
            share = f"  ({secs / total_s:5.1%})" if total_s > 0 else ""
            out.append(f"{phase:12s} {secs:8.3f}s{share}")
        for name, value in sorted(self.gauges.items()):
            out.append(f"{name:12s} {value:8.3f}")
        if self.counts.get("owners", 0):
            out.append(
                f"{'cache':12s} {self.counts.get('owners_rescored', 0)}"
                f"/{self.counts['owners']} owners re-scored "
                f"(hit rate {self.cache_hit_ratio:.1%})"
            )
        return out
