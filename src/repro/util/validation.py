"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any, Type


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_type(name: str, value: Any, expected: Type) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
