"""Argument validation helpers + the engine-invariant debug harness."""

from __future__ import annotations

from typing import Any, Type


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_type(name: str, value: Any, expected: Type) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value


def check_engine_invariants(scheduler) -> None:
    """Assert every cross-layer invariant of a live scheduler stack.

    The opt-in debug harness behind event injection and the stress
    suite: after *any* mutation — a wave landing, a churn event, a
    capacity change — the whole tower must still agree:

    * the allocation's own structural invariants hold,
    * the token circulates exactly the placed VM ids, with level
      estimates in range and level buckets consistent,
    * the fast engine's snapshot/mirrors (dense index, host map,
      slot/RAM/CPU usage, per-host egress) match the allocation and
      traffic matrix bit-for-bit, capacities are never violated, and the
      incrementally maintained Lemma-3 caches agree with a from-scratch
      recomputation to 1e-9,
    * every *valid* row of the persistent round-score cache is exactly
      what a fresh ``candidate_batch`` would score.

    Raises ``AssertionError`` (with a named invariant) on the first
    violation.  Cost scales with population and valid cached rows — a
    per-event debug hook, not a production-path check.
    """
    import numpy as np

    from repro.core.token import MAX_LEVEL_VALUE

    allocation = scheduler.allocation
    token = scheduler.token
    traffic = scheduler.traffic

    allocation.validate()

    placed = sorted(allocation.vm_ids())
    assert list(token.vm_ids) == placed, (
        "token <-> allocation: token circulates "
        f"{len(token)} ids, allocation places {len(placed)}"
    )
    levels_seen = set()
    for entry in token.entries():
        assert 0 <= entry.level <= MAX_LEVEL_VALUE, (
            f"token level out of range: vm {entry.vm_id} at {entry.level}"
        )
        levels_seen.add(entry.level)
    assert set(token.levels_present()) == levels_seen, (
        "token level buckets disagree with entries"
    )
    bucketed = 0
    for level in token.levels_present():
        members = token.vms_at_level(level)
        bucketed += len(members)
        for vm_id in members:
            assert token.level_of(vm_id) == level, (
                f"token bucket desync: vm {vm_id} bucketed at {level}, "
                f"recorded {token.level_of(vm_id)}"
            )
    assert bucketed == len(token), "token buckets do not partition the ids"

    fast = scheduler.fastcost
    if fast is None:
        return
    assert fast.in_sync, "fast engine out of sync (bypassed update path)"
    snap = fast.snapshot
    assert snap.vm_ids.tolist() == placed, (
        "fast snapshot dense index disagrees with the allocation"
    )
    expected_hosts = np.fromiter(
        (allocation.server_of(v) for v in snap.vm_ids.tolist()),
        dtype=np.int64,
        count=snap.n_vms,
    )
    assert np.array_equal(fast._host_of, expected_hosts), (
        "fast host map disagrees with the allocation"
    )
    n_hosts = allocation.cluster.n_servers
    assert np.array_equal(
        fast._slot_used, np.bincount(fast._host_of, minlength=n_hosts)
    ), "slot-usage mirror desync"
    ram = np.fromiter(
        (allocation.vm(v).ram_mb for v in snap.vm_ids.tolist()),
        dtype=np.int64,
        count=snap.n_vms,
    )
    cpu = np.fromiter(
        (allocation.vm(v).cpu for v in snap.vm_ids.tolist()),
        dtype=float,
        count=snap.n_vms,
    )
    assert np.array_equal(
        fast._ram_used,
        np.bincount(fast._host_of, weights=ram, minlength=n_hosts).astype(
            np.int64
        ),
    ), "RAM-usage mirror desync"
    assert np.allclose(
        fast._cpu_used,
        np.bincount(fast._host_of, weights=cpu, minlength=n_hosts),
        rtol=1e-9, atol=1e-9,
    ), "CPU-usage mirror desync"
    assert bool((fast._slot_used <= fast._slot_cap).all()), (
        "slot capacity violated"
    )
    assert bool((fast._ram_used <= fast._ram_cap).all()), (
        "RAM capacity violated"
    )
    assert bool(
        (fast._cpu_used <= fast._cpu_cap + 1e-9).all()
    ), "CPU capacity violated"

    # Lemma-3 caches: the O(1) running total and the per-VM cost vector
    # against from-scratch recomputation over the same snapshot.
    total = fast.total_cost()
    recomputed = fast.recompute_total_cost()
    assert abs(total - recomputed) <= 1e-9 * max(1.0, abs(recomputed)), (
        f"incremental total drifted: {total} vs recomputed {recomputed}"
    )
    crossing = fast._host_of[snap.row] != fast._host_of[snap.peer]
    egress = np.bincount(
        fast._host_of[snap.row],
        weights=snap.rate * crossing,
        minlength=n_hosts,
    )
    assert np.allclose(fast._egress, egress, rtol=1e-9, atol=1e-6), (
        "per-host egress mirror desync"
    )
    n_traffic_pairs = traffic.n_pairs
    assert snap.n_pairs == n_traffic_pairs, (
        f"snapshot holds {snap.n_pairs} pairs, matrix {n_traffic_pairs}"
    )

    # Round cache: every still-valid scored row must be exactly what a
    # fresh candidate_batch over its owner would produce right now.
    cache = fast._round_cache
    if cache is None or cache._valid is None:
        return
    valid = np.nonzero(cache._valid)[0]
    if valid.size == 0:
        return
    from repro.core.roundcache import segment_rows

    fresh = fast.candidate_batch(valid, cache.max_candidates)
    rows, seg_ptr = segment_rows(cache._ptr, valid)
    assert np.array_equal(fresh.ptr, seg_ptr), (
        "round cache: valid owners' candidate counts diverged"
    )
    assert np.array_equal(fresh.host, cache._host[rows]), (
        "round cache: valid owners' candidate hosts diverged"
    )
    assert np.array_equal(fresh.delta, cache._delta[rows]), (
        "round cache: valid owners' scored deltas diverged"
    )
