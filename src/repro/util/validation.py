"""Argument validation helpers + the engine-invariant debug harness."""

from __future__ import annotations

from typing import Any, Optional, Sequence, Type


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_type(name: str, value: Any, expected: Type) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value


class InvariantViolation(AssertionError):
    """One named engine invariant failed, with everything a diagnosis needs.

    Subclasses ``AssertionError`` so every existing ``except`` /
    ``pytest.raises(AssertionError)`` treatment keeps working; carries
    structure on top of the message:

    ``invariant``
        The stable short name of the violated invariant (e.g.
        ``"slot-capacity"``, ``"round-cache-deltas"``).
    ``indices``
        The offending positions — dense rows, host ids or VM ids,
        whichever the invariant indexes by (empty when not applicable,
        clipped to the first 20).
    ``context``
        What last touched the state — the recovery and stress suites
        pass the last applied event's description, so a ``--validate``
        failure names its trigger.
    """

    MAX_INDICES = 20

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        indices: Sequence = (),
        context: Optional[str] = None,
    ) -> None:
        self.invariant = str(invariant)
        self.indices = tuple(int(i) for i in list(indices)[: self.MAX_INDICES])
        self.context = context
        text = f"[{self.invariant}] {message}"
        if self.indices:
            text += f" (offending indices: {list(self.indices)})"
        if context:
            text += f" (last applied: {context})"
        super().__init__(text)


def check_engine_invariants(
    scheduler, context: Optional[str] = None, deep: bool = True
) -> None:
    """Check every cross-layer invariant of a live scheduler stack.

    The opt-in debug harness behind event injection, the stress suite
    and crash recovery: after *any* mutation — a wave landing, a churn
    event, a capacity change, a snapshot restore — the whole tower must
    still agree:

    * the allocation's own structural invariants hold,
    * the token circulates exactly the placed VM ids, with level
      estimates in range and level buckets consistent,
    * the fast engine's snapshot/mirrors (dense index, host map,
      slot/RAM/CPU usage, per-host egress) match the allocation and
      traffic matrix bit-for-bit, capacities are never violated, and the
      incrementally maintained Lemma-3 caches agree with a from-scratch
      recomputation to 1e-9,
    * every *valid* row of the persistent round-score cache is exactly
      what a fresh ``candidate_batch`` would score.

    Raises :class:`InvariantViolation` (an ``AssertionError`` carrying
    the invariant name, offending indices and ``context`` — callers
    pass the last applied event) on the first violation.  Cost scales
    with population and valid cached rows — a per-event debug hook, not
    a production-path check.

    ``deep=False`` drops the expensive tail — the from-scratch Lemma-3
    recomputation, the egress-mirror rebuild and the round-cache
    re-scoring — keeping the O(V + hosts) structural, mirror and
    capacity checks.  That tier is cheap enough for the service daemon
    to run after every round; any desync the mirrors catch still trips
    safe mode, and the deep tier stays available on demand.
    """
    import numpy as np

    from repro.core.token import MAX_LEVEL_VALUE

    def fail(invariant, message, indices=()):
        raise InvariantViolation(
            invariant, message, indices=indices, context=context
        )

    allocation = scheduler.allocation
    token = scheduler.token
    traffic = scheduler.traffic

    try:
        allocation.validate()
    except AssertionError as exc:
        if isinstance(exc, InvariantViolation):
            raise
        fail("allocation-structure", str(exc))

    placed = sorted(allocation.vm_ids())
    if list(token.vm_ids) != placed:
        fail(
            "token-membership",
            f"token circulates {len(token)} ids, "
            f"allocation places {len(placed)}",
            indices=sorted(set(token.vm_ids) ^ set(placed)),
        )
    levels_seen = set()
    for entry in token.entries():
        if not 0 <= entry.level <= MAX_LEVEL_VALUE:
            fail(
                "token-level-range",
                f"vm {entry.vm_id} at level {entry.level}",
                indices=[entry.vm_id],
            )
        levels_seen.add(entry.level)
    if set(token.levels_present()) != levels_seen:
        fail(
            "token-level-buckets",
            "level buckets disagree with entries",
            indices=sorted(set(token.levels_present()) ^ levels_seen),
        )
    bucketed = 0
    for level in token.levels_present():
        members = token.vms_at_level(level)
        bucketed += len(members)
        for vm_id in members:
            if token.level_of(vm_id) != level:
                fail(
                    "token-bucket-desync",
                    f"vm {vm_id} bucketed at {level}, "
                    f"recorded {token.level_of(vm_id)}",
                    indices=[vm_id],
                )
    if bucketed != len(token):
        fail(
            "token-bucket-partition",
            f"buckets hold {bucketed} ids, token {len(token)}",
        )

    fast = scheduler.fastcost
    if fast is None:
        return
    if not fast.in_sync:
        fail("engine-sync", "fast engine out of sync (bypassed update path)")
    snap = fast.snapshot
    if snap.vm_ids.tolist() != placed:
        fail(
            "dense-index",
            "fast snapshot dense index disagrees with the allocation",
            indices=sorted(set(snap.vm_ids.tolist()) ^ set(placed)),
        )
    expected_hosts = np.fromiter(
        (allocation.server_of(v) for v in snap.vm_ids.tolist()),
        dtype=np.int64,
        count=snap.n_vms,
    )
    if not np.array_equal(fast._host_of, expected_hosts):
        fail(
            "host-map",
            "fast host map disagrees with the allocation",
            indices=np.nonzero(fast._host_of != expected_hosts)[0],
        )
    n_hosts = allocation.cluster.n_servers
    slot_expected = np.bincount(fast._host_of, minlength=n_hosts)
    if not np.array_equal(fast._slot_used, slot_expected):
        fail(
            "slot-mirror",
            "slot-usage mirror desync",
            indices=np.nonzero(fast._slot_used != slot_expected)[0],
        )
    ram = np.fromiter(
        (allocation.vm(v).ram_mb for v in snap.vm_ids.tolist()),
        dtype=np.int64,
        count=snap.n_vms,
    )
    cpu = np.fromiter(
        (allocation.vm(v).cpu for v in snap.vm_ids.tolist()),
        dtype=float,
        count=snap.n_vms,
    )
    ram_expected = np.bincount(
        fast._host_of, weights=ram, minlength=n_hosts
    ).astype(np.int64)
    if not np.array_equal(fast._ram_used, ram_expected):
        fail(
            "ram-mirror",
            "RAM-usage mirror desync",
            indices=np.nonzero(fast._ram_used != ram_expected)[0],
        )
    cpu_expected = np.bincount(fast._host_of, weights=cpu, minlength=n_hosts)
    if not np.allclose(fast._cpu_used, cpu_expected, rtol=1e-9, atol=1e-9):
        fail(
            "cpu-mirror",
            "CPU-usage mirror desync",
            indices=np.nonzero(
                ~np.isclose(fast._cpu_used, cpu_expected, rtol=1e-9, atol=1e-9)
            )[0],
        )
    if not bool((fast._slot_used <= fast._slot_cap).all()):
        fail(
            "slot-capacity",
            "slot capacity violated",
            indices=np.nonzero(fast._slot_used > fast._slot_cap)[0],
        )
    if not bool((fast._ram_used <= fast._ram_cap).all()):
        fail(
            "ram-capacity",
            "RAM capacity violated",
            indices=np.nonzero(fast._ram_used > fast._ram_cap)[0],
        )
    if not bool((fast._cpu_used <= fast._cpu_cap + 1e-9).all()):
        fail(
            "cpu-capacity",
            "CPU capacity violated",
            indices=np.nonzero(fast._cpu_used > fast._cpu_cap + 1e-9)[0],
        )

    if not deep:
        return

    # Lemma-3 caches: the O(1) running total and the per-VM cost vector
    # against from-scratch recomputation over the same snapshot.
    total = fast.total_cost()
    recomputed = fast.recompute_total_cost()
    if not abs(total - recomputed) <= 1e-9 * max(1.0, abs(recomputed)):
        fail(
            "lemma3-total",
            f"incremental total drifted: {total} vs recomputed {recomputed}",
        )
    crossing = fast._host_of[snap.row] != fast._host_of[snap.peer]
    egress = np.bincount(
        fast._host_of[snap.row],
        weights=snap.rate * crossing,
        minlength=n_hosts,
    )
    if not np.allclose(fast._egress, egress, rtol=1e-9, atol=1e-6):
        fail(
            "egress-mirror",
            "per-host egress mirror desync",
            indices=np.nonzero(
                ~np.isclose(fast._egress, egress, rtol=1e-9, atol=1e-6)
            )[0],
        )
    n_traffic_pairs = traffic.n_pairs
    if snap.n_pairs != n_traffic_pairs:
        fail(
            "pair-count",
            f"snapshot holds {snap.n_pairs} pairs, matrix {n_traffic_pairs}",
        )

    # Round cache: every still-valid scored row must be exactly what a
    # fresh candidate_batch over its owner would produce right now.
    cache = fast._round_cache
    if cache is None or cache._valid is None:
        return
    valid = np.nonzero(cache._valid)[0]
    if valid.size == 0:
        return
    from repro.core.roundcache import segment_rows

    fresh = fast.candidate_batch(valid, cache.max_candidates)
    rows, seg_ptr = segment_rows(cache._ptr, valid)
    if not np.array_equal(fresh.ptr, seg_ptr):
        fail(
            "round-cache-counts",
            "valid owners' candidate counts diverged",
            indices=valid[np.nonzero(np.diff(fresh.ptr) != np.diff(seg_ptr))[0]],
        )
    if not np.array_equal(fresh.host, cache._host[rows]):
        fail(
            "round-cache-hosts",
            "valid owners' candidate hosts diverged",
            indices=np.nonzero(fresh.host != cache._host[rows])[0],
        )
    if not np.array_equal(fresh.delta, cache._delta[rows]):
        fail(
            "round-cache-deltas",
            "valid owners' scored deltas diverged",
            indices=np.nonzero(fresh.delta != cache._delta[rows])[0],
        )
