"""Utility helpers shared across the S-CORE reproduction.

The submodules are intentionally tiny and dependency-free:

``rng``
    Deterministic random-number helpers.  Every stochastic component in the
    library (traffic generation, placement, GA, migration models) accepts an
    explicit seed and derives independent streams through :func:`spawn_rng`.
``stats``
    Small statistics toolkit (CDFs, summaries, distribution fitting helpers)
    used by the metrics and benchmark layers.
``validation``
    Argument-checking helpers that raise consistent, descriptive errors.
"""

from repro.util.rng import make_rng, spawn_rng
from repro.util.stats import (
    Cdf,
    Summary,
    empirical_cdf,
    summarize,
)
from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "make_rng",
    "spawn_rng",
    "Cdf",
    "Summary",
    "empirical_cdf",
    "summarize",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
