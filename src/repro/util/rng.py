"""Deterministic random number generation helpers.

All stochastic behaviour in the library flows through :class:`numpy.random.
Generator` objects created here.  Components never call the global numpy RNG;
they receive a seed (or an already-constructed generator) so that experiments
are exactly reproducible and independent components do not perturb each
other's random streams.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int`` (deterministic stream), an existing generator
    (returned unchanged, so callers can thread one generator through a
    pipeline), or ``None`` (OS entropy; only sensible for ad-hoc use).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child is seeded from the parent's bit stream mixed with ``stream`` so
    that, e.g., the traffic generator and the placement engine of one
    experiment use decorrelated streams while remaining reproducible.
    """
    if stream < 0:
        raise ValueError(f"stream index must be non-negative, got {stream}")
    root = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng((root, stream))


def stable_hash32(value: str) -> int:
    """Return a stable (process-independent) 32-bit hash of ``value``.

    Python's built-in ``hash`` is salted per process which would break
    reproducibility of anything keyed on it.  This is FNV-1a, which is cheap
    and well distributed for short identifier strings.
    """
    h = 0x811C9DC5
    for byte in value.encode("utf-8"):
        h ^= byte
        h = (h * 0x01000193) & 0xFFFFFFFF
    return h


def stable_hash32_of_ints(values: np.ndarray) -> np.ndarray:
    """Vectorized ``stable_hash32(str(v))`` for arrays of non-negative ints.

    Feeds each value's decimal digits through FNV-1a exactly as the scalar
    form hashes the number's string representation (the fat-tree ECMP hash),
    but digit-position by digit-position over the whole array — the per-key
    python loop this replaces dominated paper-scale link-load accounting.
    """
    keys = np.asarray(values, dtype=np.uint64)
    n_digits = np.ones(keys.shape, dtype=np.int64)
    remaining = keys // np.uint64(10)
    while np.any(remaining > 0):
        n_digits[remaining > 0] += 1
        remaining //= np.uint64(10)
    hashes = np.full(keys.shape, 0x811C9DC5, dtype=np.uint64)
    mask32 = np.uint64(0xFFFFFFFF)
    prime = np.uint64(0x01000193)
    for position in range(int(n_digits.max()) if keys.size else 0):
        active = n_digits > position
        shift = np.clip(n_digits - 1 - position, 0, None)
        digit = (keys // np.power(np.uint64(10), shift.astype(np.uint64))) % np.uint64(10)
        updated = ((hashes ^ (digit + np.uint64(48))) * prime) & mask32
        hashes = np.where(active, updated, hashes)
    return hashes
