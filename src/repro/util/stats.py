"""Small statistics toolkit used by metrics and benchmarks.

Provides empirical CDFs (for the link-utilization plots of Fig. 4a), and
scalar summaries (mean/std/percentiles) used throughout the evaluation
harness.  Kept dependency-light: numpy only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Scalar summary of a sample: count, mean, std, min/percentiles/max."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    p99: float
    maximum: float

    def as_row(self) -> Tuple[float, ...]:
        """Return the summary as a flat tuple (useful for table printing)."""
        return (
            self.count,
            self.mean,
            self.std,
            self.minimum,
            self.p25,
            self.median,
            self.p75,
            self.p95,
            self.p99,
            self.maximum,
        )


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    Raises ``ValueError`` on an empty sample — an empty summary is almost
    always a bug in the caller's experiment wiring.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q = np.percentile(arr, [25, 50, 75, 95, 99])
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        p25=float(q[0]),
        median=float(q[1]),
        p75=float(q[2]),
        p95=float(q[3]),
        p99=float(q[4]),
        maximum=float(arr.max()),
    )


@dataclass(frozen=True)
class Cdf:
    """An empirical cumulative distribution function.

    ``xs`` are the sorted sample points and ``ps`` the cumulative
    probabilities, i.e. ``ps[i]`` is the fraction of samples ``<= xs[i]``.
    """

    xs: Tuple[float, ...]
    ps: Tuple[float, ...]

    def quantile(self, p: float) -> float:
        """Return the smallest x with CDF(x) >= p."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        idx = int(np.searchsorted(np.asarray(self.ps), p, side="left"))
        idx = min(idx, len(self.xs) - 1)
        return self.xs[idx]

    def at(self, x: float) -> float:
        """Return CDF(x): the fraction of samples <= x."""
        idx = int(np.searchsorted(np.asarray(self.xs), x, side="right"))
        if idx == 0:
            return 0.0
        return self.ps[idx - 1]

    def sampled(self, points: Sequence[float]) -> List[Tuple[float, float]]:
        """Evaluate the CDF at each point; handy for printing fixed grids."""
        return [(float(x), self.at(float(x))) for x in points]


def empirical_cdf(values: Iterable[float]) -> Cdf:
    """Build an empirical CDF from a sample."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    ps = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return Cdf(xs=tuple(arr.tolist()), ps=tuple(ps.tolist()))


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform, →1 = skewed).

    Used to characterize traffic-matrix sparsity: the paper's TMs are sparse
    with a handful of hotspots, i.e. a high Gini coefficient.
    """
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("cannot compute gini of an empty sample")
    if np.any(arr < 0):
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    cum = np.cumsum(arr)
    return float((n + 1 - 2 * (cum / total).sum()) / n)
