"""The named-scenario registry.

Scenarios register once (the shipped catalogue does so on import of
:mod:`repro.scenarios`) and are then addressable everywhere by name —
``python -m repro scenario <name>``, the tier-1 scenario smoke test, the
benchmarks.  Registering is how a user grows the catalogue::

    from repro.scenarios import Scenario, DriftSpec, register_scenario

    register_scenario(Scenario(
        name="my-burst",
        description="...",
        drift=DriftSpec(kind="jitter", noise=0.3),
    ))
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.scenario import Scenario

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry (name collisions raise unless
    ``replace``); returns the scenario for chaining."""
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def scenario_by_name(name: str) -> Scenario:
    """Look a registered scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def iter_scenarios() -> List[Scenario]:
    """All registered scenarios, in name order."""
    return [_REGISTRY[name] for name in scenario_names()]
