"""The scenario runner: multi-epoch S-CORE over drift + churn, delta-path.

One epoch is: apply the scenario's churn events (arrivals, departures,
maintenance drains), advance the drift process and feed its change list
through ``SCOREScheduler.apply_traffic_delta``, then run the token loop
for ``iterations_per_epoch`` rounds.  Every transition goes through the
engine's incremental state-delta APIs, so a multi-epoch run never pays a
full snapshot rebuild — the wall-clock split between ``transition_s`` and
``schedule_s`` in each :class:`EpochStats` shows epochs dominated by
scheduling, not by state maintenance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.scenarios.registry import scenario_by_name
from repro.scenarios.scenario import Scenario
from repro.core.scheduler import SchedulerReport
from repro.sim.dynamics import count_returning_migrations
from repro.sim.experiment import Environment, build_environment, make_scheduler
from repro.util.validation import check_engine_invariants


@dataclass(frozen=True)
class EpochStats:
    """One epoch of a scenario run, summarized."""

    epoch: int
    n_vms: int
    migrations: int
    returning: int
    arrivals: int
    departures: int
    drained: int
    cost_before: float
    cost_after: float
    #: Epoch-transition wall clock: churn + drift through the delta path.
    transition_s: float
    #: Token-loop wall clock for the epoch's iterations.
    schedule_s: float
    #: Timestamped events the continuous-time queue applied this epoch
    #: (mid-round and boundary injections alike; 0 without an event queue).
    events: int = 0
    #: Recovery provenance: which snapshot generation + journal position
    #: this epoch's run resumed from (``"snapshot-00000003.snap@seq42"``,
    #: ``"cold-rebuild@seq1"``), None for an uninterrupted run.
    recovered_from: Optional[str] = None


@dataclass
class ScenarioResult:
    """Full record of one scenario run."""

    scenario: Scenario
    environment: Environment
    epoch_stats: List[EpochStats] = field(default_factory=list)
    epoch_reports: List[SchedulerReport] = field(default_factory=list)
    initial_cost: float = 0.0
    final_cost: float = 0.0
    #: Per-phase wall clock + cache counters (None unless profiled).
    profile: Optional[object] = None
    #: True when a graceful-shutdown request (SIGINT/SIGTERM through a
    #: durable run's ``stop_requested`` hook) ended the run early — the
    #: final checkpoint was still flushed, so ``--recover-from`` resumes.
    interrupted: bool = False

    @property
    def total_migrations(self) -> int:
        """Migrations performed across every epoch."""
        return sum(s.migrations for s in self.epoch_stats)

    @property
    def returning_migrations(self) -> int:
        """Migrations that returned a VM to a host it previously left."""
        return sum(s.returning for s in self.epoch_stats)

    @property
    def oscillation_index(self) -> float:
        """Fraction of migrations that were returns (§VI-B ping-pong)."""
        total = self.total_migrations
        return self.returning_migrations / total if total else 0.0

    @property
    def migrations_per_epoch(self) -> List[int]:
        """Per-epoch migration counts, epoch order."""
        return [s.migrations for s in self.epoch_stats]

    @property
    def events_applied(self) -> int:
        """Timestamped events the continuous-time queue applied in total."""
        return sum(s.events for s in self.epoch_stats)

    @property
    def settled(self) -> bool:
        """Whether the final epoch needed no migrations at all."""
        return bool(self.epoch_stats) and self.epoch_stats[-1].migrations == 0

    @property
    def total_transition_s(self) -> float:
        """Aggregate epoch-transition wall clock (delta path)."""
        return sum(s.transition_s for s in self.epoch_stats)

    @property
    def total_schedule_s(self) -> float:
        """Aggregate token-loop wall clock."""
        return sum(s.schedule_s for s in self.epoch_stats)


def run_scenario(
    scenario: Union[Scenario, str],
    scale: Optional[str] = None,
    epochs: Optional[int] = None,
    iterations_per_epoch: Optional[int] = None,
    seed: Optional[int] = None,
    profile: bool = False,
    validate: bool = False,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
    recover_from: Optional[str] = None,
    stop_requested=None,
) -> ScenarioResult:
    """Run one scenario (by value or registered name) end to end.

    ``scale`` picks a named topology scale (``toy``/``small``/``paper``);
    ``epochs``, ``iterations_per_epoch`` and ``seed`` override the
    scenario's declared values.  The environment is built fresh, the
    control loop comes from :func:`repro.sim.experiment.make_scheduler`,
    and every epoch transition runs through the scheduler's incremental
    delta APIs.  With ``profile`` the scheduler accumulates per-phase
    wall clock (score / re-mask / plan / wave-apply) and round-cache
    hit rates into ``ScenarioResult.profile``.

    Scenarios declaring :class:`~repro.scenarios.scenario.EventSpec`
    entries run each epoch through the continuous-time event-queue
    runner (:mod:`repro.sim.eventqueue`): events land mid-round at their
    simulated timestamps.  ``validate`` runs the full engine-invariant
    harness (:func:`repro.util.validation.check_engine_invariants`)
    after every injected event and at every epoch end — the debug mode
    the stress suite and the scenario smoke tests use.

    ``checkpoint_dir`` routes the run through the durable driver
    (:class:`repro.persist.durable.DurableScenarioRun`): the same
    trajectory, journaled and snapshotted every ``checkpoint_every``
    rounds so a killed run can resume.  ``recover_from`` resumes a
    previously checkpointed run from its directory instead of starting
    one (all other scenario arguments come from the directory's journal
    and are ignored).  ``stop_requested`` (a zero-argument callable —
    only honored on the durable paths) requests a graceful drain: the
    in-flight round finishes, a final checkpoint is flushed, and the
    result comes back with ``interrupted=True``.
    """
    if recover_from is not None:
        from repro.persist.durable import resume_durable_scenario

        return resume_durable_scenario(
            recover_from,
            validate=validate or None,
            stop_requested=stop_requested,
        )
    if checkpoint_dir is not None:
        from repro.persist.durable import run_durable_scenario

        return run_durable_scenario(
            scenario,
            checkpoint_dir,
            scale=scale,
            epochs=epochs,
            iterations_per_epoch=iterations_per_epoch,
            seed=seed,
            checkpoint_every=checkpoint_every,
            validate=validate,
            stop_requested=stop_requested,
        )
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    scenario = scenario.scaled(scale)
    if seed is not None:
        scenario = scenario.with_(config=scenario.config.with_(seed=seed))
    n_epochs = epochs if epochs is not None else scenario.epochs
    if n_epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {n_epochs}")
    iterations = (
        iterations_per_epoch
        if iterations_per_epoch is not None
        else scenario.iterations_per_epoch
    )

    environment = build_environment(scenario.config)
    scheduler = make_scheduler(environment)
    if profile:
        scheduler.enable_profiling()
    drift = scenario.drift.build(environment.traffic, seed=scenario.config.seed)
    churn = scenario.churn.build()
    events_runner = None
    if scenario.events:
        from repro.sim.eventqueue import EventQueueRunner

        events_runner = EventQueueRunner(
            scheduler, environment=environment, validate=validate
        )
        for spec in scenario.events:
            events_runner.schedule_at_round(
                spec.at_round, spec.build(events_runner.round_seconds)
            )
    result = ScenarioResult(scenario=scenario, environment=environment)
    former_hosts: Dict[int, Set[int]] = {}

    try:
        _run_epochs(
            environment, scheduler, drift, churn, events_runner,
            n_epochs, iterations, validate, result, former_hosts,
        )
    finally:
        scheduler.close()
    result.profile = scheduler.profile
    return result


def _run_epochs(
    environment, scheduler, drift, churn, events_runner,
    n_epochs, iterations, validate, result, former_hosts,
) -> None:
    for epoch in range(n_epochs):
        t0 = time.perf_counter()
        arrivals, departures, drained = churn.apply(
            epoch, environment, scheduler
        )
        if epoch > 0 and drift is not None:
            delta = drift.step_delta()
            if delta:
                scheduler.apply_traffic_delta(delta)
        transition_s = time.perf_counter() - t0

        t1 = time.perf_counter()
        if events_runner is not None:
            applied_before = len(events_runner.log)
            report = events_runner.run(n_iterations=iterations)
            epoch_events = len(events_runner.log) - applied_before
        else:
            report = scheduler.run(n_iterations=iterations)
            epoch_events = 0
        schedule_s = time.perf_counter() - t1
        if validate:
            check_engine_invariants(scheduler)

        if epoch == 0:
            result.initial_cost = report.initial_cost
        result.final_cost = report.final_cost
        result.epoch_reports.append(report)
        result.epoch_stats.append(
            EpochStats(
                epoch=epoch,
                n_vms=environment.allocation.n_vms,
                migrations=report.total_migrations,
                returning=count_returning_migrations(
                    report.decisions, former_hosts
                ),
                arrivals=arrivals,
                departures=departures,
                drained=drained,
                cost_before=report.initial_cost,
                cost_after=report.final_cost,
                transition_s=transition_s,
                schedule_s=schedule_s,
                events=epoch_events,
            )
        )
