"""Declarative scenario descriptions for live, churning data centres.

A :class:`Scenario` names everything a multi-epoch S-CORE study needs —
the static environment (:class:`~repro.sim.experiment.ExperimentConfig`:
topology family/scale, workload pattern, placement, policy, budgets), how
traffic *drifts* between measurement windows (:class:`DriftSpec`) and how
the tenant population *churns* (:class:`ChurnSpec`) — as one frozen value.
The scenario runner (:mod:`repro.scenarios.runner`), the CLI
(``python -m repro scenario <name>``), the examples and the benchmarks all
consume these instead of hand-assembling drift loops; the shipped
catalogue lives in :mod:`repro.scenarios.catalogue`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.cluster.allocation import CapacityError
from repro.cluster.placement import place_arrivals
from repro.sim.experiment import Environment, ExperimentConfig
from repro.traffic.temporal import (
    DiurnalDriftProcess,
    HotspotDriftProcess,
    HotspotFlipDrift,
)

DRIFT_KINDS = ("none", "jitter", "diurnal", "hotspot_flip")
CHURN_KINDS = ("none", "flash_crowd", "rolling_drain")
EVENT_KINDS = (
    "arrival",
    "retirement",
    "traffic_surge",
    "capacity_change",
    "outage",
    "restore",
    "bandwidth_crunch",
)

#: Topology-dimension overrides per named scale; everything else (pattern,
#: policy, budgets, seed) comes from the scenario's own config.
SCALES = {
    "toy": dict(
        n_racks=8, hosts_per_rack=2, tors_per_agg=4, n_cores=2,
        vms_per_host=4, fattree_k=4,
    ),
    "small": dict(
        n_racks=32, hosts_per_rack=4, tors_per_agg=8, n_cores=4,
        vms_per_host=8, fattree_k=8,
    ),
    "paper": dict(
        n_racks=128, hosts_per_rack=20, tors_per_agg=8, n_cores=4,
        vms_per_host=16, fattree_k=16,
    ),
}


@dataclass(frozen=True)
class DriftSpec:
    """How λ(u, v) evolves between epochs (the §IV re-estimation windows).

    ``kind`` selects the process:

    ``none``
        Rates never change (the steady baseline).
    ``jitter``
        :class:`HotspotDriftProcess` — bounded multiplicative noise on
        every pair plus rare hotspot redirects (``noise``,
        ``redirect_prob``).
    ``diurnal``
        :class:`DiurnalDriftProcess` — two counter-phased pair groups on a
        sinusoid (``amplitude``, ``period_epochs``).
    ``hotspot_flip``
        :class:`HotspotFlipDrift` — the ``top_pairs`` heaviest pairs all
        re-target at ``flip_epoch``.
    """

    kind: str = "none"
    noise: float = 0.1
    redirect_prob: float = 0.05
    amplitude: float = 0.5
    period_epochs: int = 8
    flip_epoch: int = 2
    top_pairs: int = 8

    def __post_init__(self) -> None:
        if self.kind not in DRIFT_KINDS:
            raise ValueError(
                f"unknown drift kind {self.kind!r}; known: {DRIFT_KINDS}"
            )

    def build(self, base_traffic, seed=None):
        """Instantiate the drift process over ``base_traffic`` (or None)."""
        if self.kind == "none":
            return None
        if self.kind == "jitter":
            return HotspotDriftProcess(
                base_traffic,
                noise=self.noise,
                redirect_prob=self.redirect_prob,
                seed=seed,
            )
        if self.kind == "diurnal":
            return DiurnalDriftProcess(
                base_traffic,
                amplitude=self.amplitude,
                period_epochs=self.period_epochs,
            )
        return HotspotFlipDrift(
            base_traffic,
            flip_epoch=self.flip_epoch,
            top_pairs=self.top_pairs,
            seed=seed,
        )


@dataclass(frozen=True)
class ChurnSpec:
    """How the VM population changes while S-CORE runs.

    ``kind`` selects the process:

    ``none``
        Fixed tenant population.
    ``flash_crowd``
        At ``start_epoch`` a burst of ``crowd_size`` VMs arrives with
        heavy traffic to the hottest existing VM (placed near its rack,
        spilling per :func:`~repro.cluster.placement.place_arrivals`);
        ``duration`` epochs later the crowd departs.
    ``rolling_drain``
        One rack per epoch is drained for maintenance
        (:meth:`SCOREScheduler.drain_hosts`), cycling through the racks.
    """

    kind: str = "none"
    start_epoch: int = 1
    duration: int = 2
    crowd_size: int = 12
    crowd_rate: float = 500.0

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"unknown churn kind {self.kind!r}; known: {CHURN_KINDS}"
            )

    def build(self) -> "ChurnProcess":
        """Instantiate the churn process (the ``none`` process is inert).

        The shipped processes are fully deterministic given the scenario
        config (the flash crowd targets the measured-hottest VM; the
        drain cycles racks), so no seed is threaded through.
        """
        if self.kind == "flash_crowd":
            return FlashCrowdChurn(self)
        if self.kind == "rolling_drain":
            return RollingDrainChurn(self)
        return ChurnProcess()


class ChurnProcess:
    """Base churn process: applies population changes through the
    scheduler's incremental churn APIs.  The base class is inert."""

    def apply(self, epoch: int, environment: Environment, scheduler) -> Tuple[int, int, int]:
        """Apply this epoch's churn; returns (arrivals, departures, drained)."""
        return (0, 0, 0)


class FlashCrowdChurn(ChurnProcess):
    """A tenant burst: arrive hot, talk hard, leave after a few epochs."""

    def __init__(self, spec: ChurnSpec) -> None:
        self._spec = spec
        self._crowd: List[int] = []

    def apply(self, epoch: int, environment: Environment, scheduler) -> Tuple[int, int, int]:
        spec = self._spec
        if epoch == spec.start_epoch:
            allocation = environment.allocation
            matrix = environment.traffic
            # The crowd targets the hottest existing VM (deterministic:
            # heaviest aggregate load, lowest id on ties).
            seed_vm = max(
                allocation.vm_ids(),
                key=lambda v: (matrix.vm_load(v), -v),
            )
            rack = allocation.topology.rack_of(allocation.server_of(seed_vm))
            free = (
                environment.cluster.total_vm_slots - allocation.n_vms
            )
            size = min(spec.crowd_size, max(0, free))
            if size == 0:
                return (0, 0, 0)
            config = environment.config
            vms = environment.manager.create_vms(
                size, ram_mb=config.vm_ram_mb, cpu=config.vm_cpu
            )
            try:
                hosts = place_arrivals(allocation, vms, preferred_rack=rack)
            except CapacityError:
                return (0, 0, 0)
            scheduler.admit_vms(vms, hosts)
            delta = [(vm.vm_id, seed_vm, spec.crowd_rate) for vm in vms]
            delta += [
                (vms[i].vm_id, vms[i + 1].vm_id, spec.crowd_rate / 4.0)
                for i in range(len(vms) - 1)
            ]
            scheduler.apply_traffic_delta(delta)
            self._crowd = [vm.vm_id for vm in vms]
            return (size, 0, 0)
        if self._crowd and epoch == spec.start_epoch + spec.duration:
            departed = len(self._crowd)
            scheduler.retire_vms(self._crowd)
            self._crowd = []
            return (0, departed, 0)
        return (0, 0, 0)


class RollingDrainChurn(ChurnProcess):
    """Rolling maintenance: evacuate one rack per epoch, cycling.

    The drained rack is taken *offline* (slot capacity zeroed through the
    in-place capacity patch, so the optimizer cannot migrate anything
    back mid-maintenance) and restored at the next epoch when the crew
    moves on — the ``drain_hosts``/``restore_hosts`` capacity cycle.
    """

    def __init__(self, spec: ChurnSpec) -> None:
        self._spec = spec
        self._offline_rack: Optional[int] = None

    def apply(self, epoch: int, environment: Environment, scheduler) -> Tuple[int, int, int]:
        if epoch < self._spec.start_epoch:
            return (0, 0, 0)
        topology = environment.topology
        if self._offline_rack is not None:
            scheduler.restore_hosts(
                topology.hosts_in_rack(self._offline_rack)
            )
        rack = (epoch - self._spec.start_epoch) % topology.n_racks
        moves = scheduler.drain_hosts(
            topology.hosts_in_rack(rack), offline=True
        )
        self._offline_rack = rack
        return (0, 0, len(moves))


@dataclass(frozen=True)
class EventSpec:
    """One declarative timestamped event for the continuous-time runner.

    ``at_round`` is the fire time in *global round units* — fractions of
    one full token circulation of the scenario's initial population,
    counted from the run's start across every epoch (1.5 = halfway
    through the second round overall).  Fractional times land the event
    *between waves* of the in-flight round through the scheduler's
    event-pump seam; whole numbers land it at a round boundary.  ``kind``
    selects the event class of :mod:`repro.sim.eventqueue`; the
    remaining fields parameterize it (unused fields are ignored by the
    other kinds).  ``restore_after_rounds``/``stagger_rounds`` and
    ``lift_after_rounds`` are converted to seconds with the same round
    unit at schedule time.
    """

    kind: str
    at_round: float
    # arrival / retirement
    count: int = 4
    rate: float = 500.0
    pick: str = "newest"
    vm_ids: Tuple[int, ...] = ()
    # traffic_surge
    factor: float = 2.0
    top_pairs: int = 8
    # outage / restore / capacity_change
    racks: Tuple[int, ...] = ()
    pods: Tuple[int, ...] = ()
    hosts: Tuple[int, ...] = ()
    max_vms: Optional[int] = None
    restore_after_rounds: Optional[float] = None
    stagger_rounds: float = 0.0
    # bandwidth_crunch
    threshold: Optional[float] = None
    lift_after_rounds: Optional[float] = None
    lift_to: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; known: {EVENT_KINDS}"
            )
        if self.at_round < 0:
            raise ValueError(f"at_round must be >= 0, got {self.at_round}")

    def build(self, round_seconds: float):
        """Instantiate the runtime :class:`~repro.sim.eventqueue.Event`."""
        from repro.sim import eventqueue as eq

        if self.kind == "arrival":
            return eq.Arrival(self.count, rate=self.rate)
        if self.kind == "retirement":
            return eq.Retirement(
                self.count, pick=self.pick, vm_ids=self.vm_ids
            )
        if self.kind == "traffic_surge":
            return eq.TrafficSurge(self.factor, top_pairs=self.top_pairs)
        if self.kind == "capacity_change":
            return eq.CapacityChange(self.hosts, max_vms=self.max_vms)
        if self.kind == "outage":
            restore_after = (
                None
                if self.restore_after_rounds is None
                else self.restore_after_rounds * round_seconds
            )
            return eq.Outage(
                racks=self.racks,
                pods=self.pods,
                restore_after=restore_after,
                stagger_s=self.stagger_rounds * round_seconds,
            )
        if self.kind == "restore":
            return eq.Restore(self.hosts)
        lift_after = (
            None
            if self.lift_after_rounds is None
            else self.lift_after_rounds * round_seconds
        )
        return eq.BandwidthCrunch(
            self.threshold, lift_after=lift_after, lift_to=self.lift_to
        )


@dataclass(frozen=True)
class Scenario:
    """One named, declarative multi-epoch S-CORE study."""

    name: str
    description: str
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    epochs: int = 5
    iterations_per_epoch: int = 2
    drift: DriftSpec = field(default_factory=DriftSpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    #: Timestamped failure/churn injections for the continuous-time
    #: event-queue runner; empty = the classic epoch-stepped run.
    events: Tuple[EventSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.iterations_per_epoch < 1:
            raise ValueError(
                f"iterations_per_epoch must be >= 1, "
                f"got {self.iterations_per_epoch}"
            )

    def scaled(self, scale: Optional[str]) -> "Scenario":
        """A copy at one of the named topology scales (None = as declared)."""
        if scale is None:
            return self
        try:
            dims = SCALES[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; known: {sorted(SCALES)}"
            ) from None
        return replace(self, config=self.config.with_(**dims))

    def with_(self, **changes) -> "Scenario":
        """A modified copy (convenience for sweeps and overrides)."""
        return replace(self, **changes)
