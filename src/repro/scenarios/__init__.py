"""Declarative scenarios: live, churning data centres as named values.

The growth layer over :mod:`repro.sim`: a :class:`Scenario` couples a
static :class:`~repro.sim.experiment.ExperimentConfig` with a traffic
:class:`DriftSpec`, a population :class:`ChurnSpec` and timestamped
:class:`EventSpec` injections for the continuous-time event queue;
:func:`run_scenario` executes it epoch by epoch through the fast engine's
incremental state-delta APIs (no per-epoch snapshot rebuilds), routing
event scenarios through :mod:`repro.sim.eventqueue` so failures land
*mid-round*.  A shipped catalogue (steady, diurnal-drift, hotspot-flip,
flash-crowd, rolling-maintenance, rack-outage, pod-outage,
flash-crowd-mid-round, bandwidth-crunch) registers on import;
``register_scenario`` grows it.

See ``docs/scenarios.md`` for the catalogue and how to add a scenario.
"""

from repro.scenarios.scenario import (
    ChurnSpec,
    DriftSpec,
    EventSpec,
    Scenario,
)
from repro.scenarios.registry import (
    iter_scenarios,
    register_scenario,
    scenario_by_name,
    scenario_names,
)
from repro.scenarios.runner import EpochStats, ScenarioResult, run_scenario

# Importing the catalogue registers the shipped scenarios.
from repro.scenarios import catalogue  # noqa: F401  (registration side effect)

__all__ = [
    "Scenario",
    "DriftSpec",
    "ChurnSpec",
    "EventSpec",
    "EpochStats",
    "ScenarioResult",
    "run_scenario",
    "register_scenario",
    "scenario_by_name",
    "scenario_names",
    "iter_scenarios",
]
