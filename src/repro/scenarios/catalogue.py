"""The shipped scenario catalogue.

Five named studies spanning the dynamics the paper argues about (§IV,
§VI-B) and the operational events a live DC adds on top.  Each registers
on import of :mod:`repro.scenarios`; run one with
``python -m repro scenario <name>`` or
:func:`repro.scenarios.run_scenario`.  Configs are laptop-scale by
default — pass ``scale="toy"`` for CI smoke or ``scale="paper"`` for the
published 2560-host dimensions.
"""

from __future__ import annotations

from repro.scenarios.registry import register_scenario
from repro.scenarios.scenario import ChurnSpec, DriftSpec, Scenario
from repro.sim.experiment import ExperimentConfig

#: Shared static base: the repo's default canonical tree with HLF.
_BASE = ExperimentConfig(policy="hlf", pattern="sparse")

STEADY = register_scenario(
    Scenario(
        name="steady",
        description=(
            "Fixed traffic, fixed population: the convergence baseline. "
            "With no external change, migrations decay epoch over epoch."
        ),
        config=_BASE,
        epochs=3,
        iterations_per_epoch=2,
    )
)

DIURNAL_DRIFT = register_scenario(
    Scenario(
        name="diurnal-drift",
        description=(
            "Day/night load swings: two counter-phased pair groups on a "
            "sinusoid, shifting the hotspot structure every epoch while "
            "total load stays level."
        ),
        config=_BASE,
        epochs=6,
        iterations_per_epoch=2,
        drift=DriftSpec(kind="diurnal", amplitude=0.6, period_epochs=6),
    )
)

HOTSPOT_FLIP = register_scenario(
    Scenario(
        name="hotspot-flip",
        description=(
            "A service re-shard: the heaviest pairs all re-target at "
            "epoch 2 (structural add/remove delta), and S-CORE must "
            "re-localize the new cliques."
        ),
        config=_BASE,
        epochs=5,
        iterations_per_epoch=2,
        drift=DriftSpec(kind="hotspot_flip", flip_epoch=2, top_pairs=8),
    )
)

FLASH_CROWD = register_scenario(
    Scenario(
        name="flash-crowd",
        description=(
            "A tenant burst arrives at epoch 1 with heavy traffic to the "
            "hottest VM (placed near its rack, spilling when full), then "
            "departs two epochs later."
        ),
        config=_BASE,
        epochs=5,
        iterations_per_epoch=2,
        churn=ChurnSpec(
            kind="flash_crowd", start_epoch=1, duration=2, crowd_size=12
        ),
    )
)

ROLLING_MAINTENANCE = register_scenario(
    Scenario(
        name="rolling-maintenance",
        description=(
            "One rack per epoch is drained for maintenance (VMs evacuate "
            "through the incremental engine path); S-CORE re-optimizes "
            "around the displaced load.  Lower fill leaves drain headroom."
        ),
        config=_BASE.with_(fill_fraction=0.7),
        epochs=4,
        iterations_per_epoch=2,
        churn=ChurnSpec(kind="rolling_drain", start_epoch=1),
    )
)
