"""The shipped scenario catalogue.

Nine named studies spanning the dynamics the paper argues about (§IV,
§VI-B) and the operational events a live DC adds on top.  Each registers
on import of :mod:`repro.scenarios`; run one with
``python -m repro scenario <name>`` or
:func:`repro.scenarios.run_scenario`.  Configs are laptop-scale by
default — pass ``scale="toy"`` for CI smoke or ``scale="paper"`` for the
published 2560-host dimensions.

The last four are *failure scenarios* driven by the continuous-time
event queue (:mod:`repro.sim.eventqueue`): their events land **between
waves of an in-flight round** at simulated timestamps (``at_round`` in
global round units), exercising the engine's mid-round invalidation
contracts rather than only epoch boundaries.
"""

from __future__ import annotations

from repro.scenarios.registry import register_scenario
from repro.scenarios.scenario import ChurnSpec, DriftSpec, EventSpec, Scenario
from repro.sim.experiment import ExperimentConfig

#: Shared static base: the repo's default canonical tree with HLF.
_BASE = ExperimentConfig(policy="hlf", pattern="sparse")

STEADY = register_scenario(
    Scenario(
        name="steady",
        description=(
            "Fixed traffic, fixed population: the convergence baseline. "
            "With no external change, migrations decay epoch over epoch."
        ),
        config=_BASE,
        epochs=3,
        iterations_per_epoch=2,
    )
)

DIURNAL_DRIFT = register_scenario(
    Scenario(
        name="diurnal-drift",
        description=(
            "Day/night load swings: two counter-phased pair groups on a "
            "sinusoid, shifting the hotspot structure every epoch while "
            "total load stays level."
        ),
        config=_BASE,
        epochs=6,
        iterations_per_epoch=2,
        drift=DriftSpec(kind="diurnal", amplitude=0.6, period_epochs=6),
    )
)

HOTSPOT_FLIP = register_scenario(
    Scenario(
        name="hotspot-flip",
        description=(
            "A service re-shard: the heaviest pairs all re-target at "
            "epoch 2 (structural add/remove delta), and S-CORE must "
            "re-localize the new cliques."
        ),
        config=_BASE,
        epochs=5,
        iterations_per_epoch=2,
        drift=DriftSpec(kind="hotspot_flip", flip_epoch=2, top_pairs=8),
    )
)

FLASH_CROWD = register_scenario(
    Scenario(
        name="flash-crowd",
        description=(
            "A tenant burst arrives at epoch 1 with heavy traffic to the "
            "hottest VM (placed near its rack, spilling when full), then "
            "departs two epochs later."
        ),
        config=_BASE,
        epochs=5,
        iterations_per_epoch=2,
        churn=ChurnSpec(
            kind="flash_crowd", start_epoch=1, duration=2, crowd_size=12
        ),
    )
)

ROLLING_MAINTENANCE = register_scenario(
    Scenario(
        name="rolling-maintenance",
        description=(
            "One rack per epoch is drained for maintenance (VMs evacuate "
            "through the incremental engine path); S-CORE re-optimizes "
            "around the displaced load.  Lower fill leaves drain headroom."
        ),
        config=_BASE.with_(fill_fraction=0.7),
        epochs=4,
        iterations_per_epoch=2,
        churn=ChurnSpec(kind="rolling_drain", start_epoch=1),
    )
)

# -- event-queue failure scenarios ------------------------------------------
# Timestamps are global round units; fractional values fire mid-round.

RACK_OUTAGE = register_scenario(
    Scenario(
        name="rack-outage",
        description=(
            "Correlated failure mid-round: rack 0 goes dark halfway "
            "through the first round (offline drain between waves), is "
            "restored 1.5 rounds later, and S-CORE re-localizes the "
            "displaced VMs.  Lower fill leaves failover headroom."
        ),
        config=_BASE.with_(fill_fraction=0.7),
        epochs=3,
        iterations_per_epoch=2,
        events=(
            EventSpec(
                kind="outage", at_round=0.5, racks=(0,),
                restore_after_rounds=1.5,
            ),
        ),
    )
)

POD_OUTAGE = register_scenario(
    Scenario(
        name="pod-outage",
        description=(
            "A whole aggregation domain fails mid-round: every rack of "
            "pod 1 drains offline between waves, then racks restore "
            "staggered a quarter round apart (rolling recovery).  Low "
            "fill so the surviving pods can absorb the evacuees."
        ),
        config=_BASE.with_(fill_fraction=0.4),
        epochs=3,
        iterations_per_epoch=2,
        events=(
            EventSpec(
                kind="outage", at_round=0.5, pods=(1,),
                restore_after_rounds=2.0, stagger_rounds=0.25,
            ),
        ),
    )
)

FLASH_CROWD_MID_ROUND = register_scenario(
    Scenario(
        name="flash-crowd-mid-round",
        description=(
            "The flash crowd, at wave granularity: a hot tenant burst "
            "arrives 40% into the first round (admitted between waves, "
            "optimized from the next round) and departs mid-round three "
            "circulations later."
        ),
        config=_BASE.with_(fill_fraction=0.7),
        epochs=3,
        iterations_per_epoch=2,
        events=(
            EventSpec(kind="arrival", at_round=0.4, count=8, rate=600.0),
            EventSpec(kind="retirement", at_round=3.4, count=8, pick="newest"),
        ),
    )
)

BANDWIDTH_CRUNCH = register_scenario(
    Scenario(
        name="bandwidth-crunch",
        description=(
            "Migration-bandwidth contention (§V-C): 30% into the first "
            "round the per-target NIC budget squeezes to 50%, throttling "
            "feasible moves mid-flight; the squeeze lifts two rounds "
            "later and the deferred optimization drains."
        ),
        config=_BASE,
        epochs=3,
        iterations_per_epoch=2,
        events=(
            EventSpec(
                kind="bandwidth_crunch", at_round=0.3, threshold=0.5,
                lift_after_rounds=2.0,
            ),
        ),
    )
)
