"""Pre-copy live migration model (Clark et al., NSDI'05; paper §VI-C).

Xen live migration transfers the VM's memory in *pre-copy rounds*: round 0
copies the whole working set while the guest keeps running; each subsequent
round copies only the pages dirtied during the previous round.  When the
remaining dirty set is small enough (or a round cap is hit), the VM is
suspended and the rest is transferred in the *stop-and-copy* phase — that
suspension is the guest-visible **downtime**.

Calibration targets from the paper's measurements (196 MiB guests over
1 Gb/s with NFS-backed images, so only memory state moves):

* migrated bytes: flat, wide spread; mean ≈ 127 MB, σ ≈ 11 MB, all < 150 MB
  (Fig. 5b) — the working set is well below the nominal RAM size because
  zero/ballooned pages are skipped;
* total migration time: ≈ 2.94 s with an idle link, growing *sub-linearly*
  to ≈ 9.34 s as CBR background traffic approaches line rate (Fig. 5c) —
  the migration TCP stream keeps a share of the bottleneck rather than
  getting only the leftover capacity;
* downtime: an order of magnitude below total time, < 50 ms even at full
  background load (Fig. 5d).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive, check_probability

MB = 1e6  # network megabyte (decimal), as used in link-rate arithmetic


@dataclass(frozen=True)
class MigrationOutcome:
    """Result of one emulated live migration."""

    migrated_bytes_mb: float
    total_time_s: float
    downtime_ms: float
    precopy_rounds: int
    background_load: float

    def __post_init__(self) -> None:
        if self.migrated_bytes_mb < 0 or self.total_time_s < 0 or self.downtime_ms < 0:
            raise ValueError("migration outcome fields must be non-negative")


class PreCopyMigrationModel:
    """Emulates Xen pre-copy migrations over a shared 1 Gb/s link.

    Parameters
    ----------
    ram_mb:
        Guest RAM size (196 MiB in the testbed).
    working_set_fraction / working_set_jitter:
        Mean and half-width of the fraction of RAM that actually needs
        copying (zero pages are skipped); a uniform spread reproduces the
        flat, wide Fig. 5b histogram.
    link_bps:
        Migration link line rate.
    base_efficiency:
        Fraction of line rate the migration stream achieves on an idle
        link (TCP + Xen overheads).  0.35 of 1 Gb/s ≈ 43.7 MB/s reproduces
        the 2.94 s idle-link total time.
    contention:
        Sub-linear slowdown factor: effective rate = base / (1 + contention
        x background_load).  1.6 (with the dirty-rate feedback) yields the
        9.34/2.94 ≈ 3.2x total-time growth at full
        background load.
    dirty_rate_mbps_range:
        Uniform range of the guest page-dirty rate (MB/s); "highly varying
        memory dirty rate" is the paper's explanation for the Fig. 5b spread.
    stop_copy_threshold_mb:
        Remaining dirty set below which Xen suspends the guest.
    max_rounds:
        Pre-copy round cap (Xen defaults to ~30) for non-converging guests.
    downtime_floor_ms:
        Fixed suspension overhead (device re-attachment, ARP updates).
    """

    def __init__(
        self,
        ram_mb: float = 196.0,
        working_set_fraction: float = 0.59,
        working_set_jitter: float = 0.05,
        link_bps: float = 1e9,
        base_efficiency: float = 0.35,
        contention: float = 1.6,
        dirty_rate_mbps_range: tuple = (1.0, 8.0),
        stop_copy_threshold_mb: float = 0.5,
        max_rounds: int = 30,
        downtime_floor_ms: float = 3.0,
        seed: SeedLike = None,
    ) -> None:
        check_positive("ram_mb", ram_mb)
        check_probability("working_set_fraction", working_set_fraction)
        if not 0 <= working_set_jitter < working_set_fraction:
            raise ValueError(
                "working_set_jitter must be in [0, working_set_fraction)"
            )
        check_positive("link_bps", link_bps)
        check_probability("base_efficiency", base_efficiency)
        if contention < 0:
            raise ValueError(f"contention must be >= 0, got {contention}")
        low, high = dirty_rate_mbps_range
        if not 0 < low <= high:
            raise ValueError(
                f"dirty_rate_mbps_range must be 0 < low <= high, got {dirty_rate_mbps_range}"
            )
        check_positive("stop_copy_threshold_mb", stop_copy_threshold_mb)
        check_positive("max_rounds", max_rounds)
        if downtime_floor_ms < 0:
            raise ValueError(f"downtime_floor_ms must be >= 0, got {downtime_floor_ms}")
        self._ram_mb = ram_mb
        self._ws_fraction = working_set_fraction
        self._ws_jitter = working_set_jitter
        self._link_bps = link_bps
        self._base_efficiency = base_efficiency
        self._contention = contention
        self._dirty_range = (low, high)
        self._stop_threshold = stop_copy_threshold_mb
        self._max_rounds = max_rounds
        self._downtime_floor_ms = downtime_floor_ms
        self._rng = make_rng(seed)

    # -- rate model ---------------------------------------------------------

    def effective_rate_mbps(self, background_load: float) -> float:
        """Migration stream throughput (MB/s) under CBR background load."""
        check_probability("background_load", background_load)
        idle = self._base_efficiency * self._link_bps / 8.0 / MB
        return idle / (1.0 + self._contention * background_load)

    # -- one migration ------------------------------------------------------------

    def migrate(
        self,
        background_load: float = 0.0,
        dirty_rate_mbps: Optional[float] = None,
    ) -> MigrationOutcome:
        """Emulate one pre-copy migration; returns its outcome."""
        rate = self.effective_rate_mbps(background_load)
        if dirty_rate_mbps is None:
            low, high = self._dirty_range
            dirty_rate_mbps = float(self._rng.uniform(low, high))
        elif dirty_rate_mbps <= 0:
            raise ValueError(f"dirty_rate_mbps must be > 0, got {dirty_rate_mbps}")

        working_set = self._ram_mb * float(
            self._rng.uniform(
                self._ws_fraction - self._ws_jitter,
                self._ws_fraction + self._ws_jitter,
            )
        )
        total_time = 0.0
        migrated = 0.0
        to_send = working_set
        rounds = 0
        # Pre-copy loop: each round transfers the current dirty set while
        # the guest dirties pages for the next one.
        while to_send > self._stop_threshold and rounds < self._max_rounds:
            transfer_time = to_send / rate
            total_time += transfer_time
            migrated += to_send
            rounds += 1
            to_send = min(dirty_rate_mbps * transfer_time, working_set)
            if dirty_rate_mbps >= rate:
                # Non-converging guest: Xen forces stop-and-copy.
                break
        # Stop-and-copy: the guest is suspended while the remaining pages
        # plus CPU state transfer; this is the Fig. 5d downtime.
        stop_copy_time = to_send / rate
        migrated += to_send
        total_time += stop_copy_time
        downtime_ms = self._downtime_floor_ms + stop_copy_time * 1e3
        return MigrationOutcome(
            migrated_bytes_mb=migrated,
            total_time_s=total_time,
            downtime_ms=downtime_ms,
            precopy_rounds=rounds,
            background_load=background_load,
        )

    def sample_migrations(
        self, count: int, background_load: float = 0.0
    ) -> List[MigrationOutcome]:
        """Emulate ``count`` independent migrations (Fig. 5b's 100+ runs)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return [self.migrate(background_load) for _ in range(count)]

    def sweep_background_load(
        self, loads, migrations_per_point: int = 20
    ) -> List[List[MigrationOutcome]]:
        """Fig. 5c/5d sweep: sample migrations at each background load."""
        return [
            self.sample_migrations(migrations_per_point, background_load=load)
            for load in loads
        ]
