"""Emulation of the Xen testbed components (paper §V-B, §VI-C).

The paper implements S-CORE inside dom0 of each Xen hypervisor.  This
package rebuilds the same components as an in-process emulation:

:mod:`repro.testbed.flowtable`
    The dom0 flow table (§V-B1): add/update/lookup/delete flows, per-IP
    retrieval, byte counts and throughput — stress-tested up to one million
    flows for Fig. 5a.
:mod:`repro.testbed.tokenserver`
    Token servers and the §V-B2/B4/B5 message types (token, location
    request/response, capacity request/response) with real wire encodings,
    delivered over an in-process "network" keyed by dom0 IP.
:mod:`repro.testbed.livemigration`
    The pre-copy live-migration model (Clark et al., NSDI'05): iterative
    page copying under a dirty rate, with bandwidth shared against CBR
    background traffic — reproduces Fig. 5b-d (migrated bytes, total
    migration time, stop-and-copy downtime).
:mod:`repro.testbed.hypervisor`
    A dom0 node tying the pieces together: it answers location/capacity
    probes and runs the S-CORE decision for the VMs it hosts.
"""

from repro.testbed.flowtable import FlowKey, FlowRecord, FlowTable
from repro.testbed.livemigration import (
    MigrationOutcome,
    PreCopyMigrationModel,
)
from repro.testbed.tokenserver import (
    CapacityRequest,
    CapacityResponse,
    LocationRequest,
    LocationResponse,
    LossyTokenNetwork,
    TokenLostError,
    TokenNetwork,
    TokenServer,
)
from repro.testbed.hypervisor import HypervisorNode, TestbedDeployment

__all__ = [
    "FlowKey",
    "FlowRecord",
    "FlowTable",
    "MigrationOutcome",
    "PreCopyMigrationModel",
    "TokenNetwork",
    "LossyTokenNetwork",
    "TokenLostError",
    "TokenServer",
    "LocationRequest",
    "LocationResponse",
    "CapacityRequest",
    "CapacityResponse",
    "HypervisorNode",
    "TestbedDeployment",
]
