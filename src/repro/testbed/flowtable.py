"""The dom0 flow table (paper §V-B1).

"In order for VMs to maintain flow-level statistics, we have implemented
our own flow table supporting the following operations: fast addition of
new flows; updating existing flows; retrieval of a subset of flows, by IP
address; access to the number of bytes transmitted per flow; access to flow
duration, for calculation of throughput."

The table is periodically refreshed from Open vSwitch datapath statistics
in the real deployment; the emulation exposes the same update entry point.
Fig. 5a stress-tests exactly this structure with 10^6 flows of two shapes:
*type 1* (every flow has a unique source IP) and *type 2* (groups of 1000
flows share a source IP); type 2 is faster because the per-IP index has
1000x fewer keys with denser buckets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass(frozen=True)
class FlowKey:
    """Transport 5-tuple identifying one flow."""

    src_ip: str
    dst_ip: str
    src_port: int = 0
    dst_port: int = 0
    protocol: int = 6  # TCP

    def __post_init__(self) -> None:
        for name, port in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= port <= 65535:
                raise ValueError(f"{name} must be a valid port, got {port}")


@dataclass
class FlowRecord:
    """Mutable per-flow statistics."""

    key: FlowKey
    bytes_transmitted: int = 0
    first_seen: float = 0.0
    last_updated: float = 0.0

    def duration(self, now: Optional[float] = None) -> float:
        """Observed lifetime in seconds (up to ``now`` or last update)."""
        end = self.last_updated if now is None else now
        return max(0.0, end - self.first_seen)

    def throughput_bps(self, now: Optional[float] = None) -> float:
        """Average bytes/second since the flow started (§V-B3)."""
        lifetime = self.duration(now)
        if lifetime <= 0:
            return 0.0
        return self.bytes_transmitted / lifetime


class FlowTable:
    """Flow statistics store with per-IP secondary indexes."""

    def __init__(self) -> None:
        self._flows: Dict[FlowKey, FlowRecord] = {}
        self._by_ip: Dict[str, Set[FlowKey]] = {}

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._flows

    # -- §V-B1 operations ---------------------------------------------------

    def add_flow(self, key: FlowKey, timestamp: float = 0.0) -> FlowRecord:
        """Fast addition of a new flow."""
        if key in self._flows:
            raise ValueError(f"flow already present: {key}")
        record = FlowRecord(key=key, first_seen=timestamp, last_updated=timestamp)
        self._flows[key] = record
        self._by_ip.setdefault(key.src_ip, set()).add(key)
        self._by_ip.setdefault(key.dst_ip, set()).add(key)
        return record

    def update_flow(self, key: FlowKey, n_bytes: int, timestamp: float) -> FlowRecord:
        """Fold a datapath byte-count sample into an existing flow."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        record = self._flows[key]
        record.bytes_transmitted += n_bytes
        record.last_updated = timestamp
        return record

    def upsert_flow(self, key: FlowKey, n_bytes: int, timestamp: float) -> FlowRecord:
        """Update a flow, creating it on first sight (the OVS-poll path)."""
        if key not in self._flows:
            self.add_flow(key, timestamp)
        return self.update_flow(key, n_bytes, timestamp)

    def lookup(self, key: FlowKey) -> FlowRecord:
        """Exact 5-tuple lookup."""
        return self._flows[key]

    def flows_for_ip(self, ip: str) -> List[FlowRecord]:
        """Retrieval of the subset of flows involving an IP address."""
        return [self._flows[key] for key in self._by_ip.get(ip, ())]

    def delete_flow(self, key: FlowKey) -> None:
        """Remove a flow and clean its index entries."""
        if key not in self._flows:
            raise KeyError(f"flow not present: {key}")
        del self._flows[key]
        for ip in (key.src_ip, key.dst_ip):
            bucket = self._by_ip.get(ip)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_ip[ip]

    def clear(self) -> None:
        """Drop all flows (done after each migration decision, §V-B1)."""
        self._flows.clear()
        self._by_ip.clear()

    # -- §V-B3 aggregate queries --------------------------------------------------

    def bytes_between(self, ip_a: str, ip_b: str) -> int:
        """Total bytes carried by flows between two IPs (either direction)."""
        total = 0
        for key in self._by_ip.get(ip_a, ()):
            if key.src_ip == ip_b or key.dst_ip == ip_b:
                total += self._flows[key].bytes_transmitted
        return total

    def aggregate_rate(self, ip: str, now: float) -> Dict[str, float]:
        """Per-peer average throughput for one VM IP (the token-hold step).

        Returns peer IP → bytes/second, aggregating all flows between the
        pair and dividing by the observation span — exactly the §V-B3
        throughput calculation.
        """
        bytes_per_peer: Dict[str, int] = {}
        earliest: Dict[str, float] = {}
        for key in self._by_ip.get(ip, ()):
            record = self._flows[key]
            peer = key.dst_ip if key.src_ip == ip else key.src_ip
            bytes_per_peer[peer] = (
                bytes_per_peer.get(peer, 0) + record.bytes_transmitted
            )
            earliest[peer] = min(
                earliest.get(peer, record.first_seen), record.first_seen
            )
        rates: Dict[str, float] = {}
        for peer, total in bytes_per_peer.items():
            span = now - earliest[peer]
            if span > 0:
                rates[peer] = total / span
        return rates

    def peer_ips(self, ip: str) -> Set[str]:
        """All IPs that ``ip`` has flows with (the paper's V_u, by address)."""
        peers: Set[str] = set()
        for key in self._by_ip.get(ip, ()):
            peers.add(key.dst_ip if key.src_ip == ip else key.src_ip)
        peers.discard(ip)
        return peers
