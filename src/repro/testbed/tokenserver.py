"""Token servers and control-plane messages (paper §V-B2, B4, B5).

Every hypervisor runs a *token listening server* on a known port in dom0;
NAT redirects deliver token/location/capacity messages addressed to a VM to
its host's dom0.  The emulation keeps the real wire encodings (so sizes and
parsing are what the testbed would see) but delivers messages through an
in-process registry keyed by dom0 IP.

Message formats:

* **token** — the :class:`repro.core.token.Token` encoding (u32 ID + u8
  level per entry, §V-B2);
* **location request/response** (§V-B4) — a VM asks a peer VM's host for
  its dom0 address, enabling the communication-level lookup;
* **capacity request/response** (§V-B5) — the token holder probes a target
  hypervisor for free VM slots and available RAM.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.token import Token

#: Known dom0 control port (arbitrary but fixed, as in the deployment).
TOKEN_PORT = 52001

_IP = struct.Struct("!I")
_CAP_REQ = struct.Struct("!II")  # requester ip, vm ram_mb needed
_CAP_RESP = struct.Struct("!III")  # responder ip, free slots, free ram_mb


def _pack_ip(ip: str) -> int:
    return int(ipaddress.IPv4Address(ip))


def _unpack_ip(value: int) -> str:
    return str(ipaddress.IPv4Address(value))


@dataclass(frozen=True)
class LocationRequest:
    """Ask the hypervisor hosting ``target_vm_ip`` for its dom0 address."""

    requester_dom0_ip: str
    target_vm_ip: str

    def encode(self) -> bytes:
        return _IP.pack(_pack_ip(self.requester_dom0_ip)) + _IP.pack(
            _pack_ip(self.target_vm_ip)
        )

    @classmethod
    def decode(cls, payload: bytes) -> "LocationRequest":
        if len(payload) != 8:
            raise ValueError(f"location request must be 8 bytes, got {len(payload)}")
        requester, target = _IP.unpack_from(payload, 0)[0], _IP.unpack_from(payload, 4)[0]
        return cls(
            requester_dom0_ip=_unpack_ip(requester),
            target_vm_ip=_unpack_ip(target),
        )


@dataclass(frozen=True)
class LocationResponse:
    """The dom0 address hosting the requested VM."""

    vm_ip: str
    dom0_ip: str

    def encode(self) -> bytes:
        return _IP.pack(_pack_ip(self.vm_ip)) + _IP.pack(_pack_ip(self.dom0_ip))

    @classmethod
    def decode(cls, payload: bytes) -> "LocationResponse":
        if len(payload) != 8:
            raise ValueError(f"location response must be 8 bytes, got {len(payload)}")
        vm, dom0 = _IP.unpack_from(payload, 0)[0], _IP.unpack_from(payload, 4)[0]
        return cls(vm_ip=_unpack_ip(vm), dom0_ip=_unpack_ip(dom0))


@dataclass(frozen=True)
class CapacityRequest:
    """Probe a hypervisor: can you host a VM needing ``ram_mb``?"""

    requester_dom0_ip: str
    ram_mb: int

    def encode(self) -> bytes:
        return _CAP_REQ.pack(_pack_ip(self.requester_dom0_ip), self.ram_mb)

    @classmethod
    def decode(cls, payload: bytes) -> "CapacityRequest":
        if len(payload) != _CAP_REQ.size:
            raise ValueError(
                f"capacity request must be {_CAP_REQ.size} bytes, got {len(payload)}"
            )
        requester, ram = _CAP_REQ.unpack(payload)
        return cls(requester_dom0_ip=_unpack_ip(requester), ram_mb=ram)


@dataclass(frozen=True)
class CapacityResponse:
    """§V-B5: "how many more VMs it is able to host and the amount of RAM"."""

    responder_dom0_ip: str
    free_slots: int
    free_ram_mb: int

    def encode(self) -> bytes:
        return _CAP_RESP.pack(
            _pack_ip(self.responder_dom0_ip),
            max(0, self.free_slots),
            max(0, self.free_ram_mb),
        )

    @classmethod
    def decode(cls, payload: bytes) -> "CapacityResponse":
        if len(payload) != _CAP_RESP.size:
            raise ValueError(
                f"capacity response must be {_CAP_RESP.size} bytes, got {len(payload)}"
            )
        responder, slots, ram = _CAP_RESP.unpack(payload)
        return cls(
            responder_dom0_ip=_unpack_ip(responder),
            free_slots=slots,
            free_ram_mb=ram,
        )


class TokenServer:
    """One dom0's token listener: receives tokens, hands them to a handler."""

    def __init__(
        self,
        dom0_ip: str,
        on_token: Callable[[Token], Optional[str]],
    ) -> None:
        """``on_token`` processes a received token and returns the dom0 IP
        the token should be forwarded to next (or None to hold it)."""
        self._dom0_ip = dom0_ip
        self._on_token = on_token
        self.tokens_received = 0
        self.bytes_received = 0

    @property
    def dom0_ip(self) -> str:
        """Address this server listens on."""
        return self._dom0_ip

    def receive(self, payload: bytes) -> Optional[str]:
        """Decode an incoming token message and invoke the handler."""
        token = Token.decode(payload)
        self.tokens_received += 1
        self.bytes_received += len(payload)
        return self._on_token(token)


class TokenLostError(Exception):
    """Raised when the network dropped the token in flight.

    The single-token design is the algorithm's availability weak point: a
    lost token halts all migration activity.  The deployment layer
    recovers by regenerating a fresh token (§V-A's centralized placement
    manager knows the full VM set), at the cost of losing the HLF level
    estimates accumulated so far.
    """

    def __init__(self, dest_dom0_ip: str) -> None:
        super().__init__(f"token lost on the way to {dest_dom0_ip}")
        self.dest_dom0_ip = dest_dom0_ip


class TokenNetwork:
    """In-process message fabric keyed by dom0 IP (replaces the NAT plumbing)."""

    def __init__(self) -> None:
        self._servers: Dict[str, TokenServer] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    def register(self, server: TokenServer) -> None:
        """Attach a token server at its dom0 address."""
        if server.dom0_ip in self._servers:
            raise ValueError(f"a server is already registered at {server.dom0_ip}")
        self._servers[server.dom0_ip] = server

    def server_at(self, dom0_ip: str) -> TokenServer:
        """The server registered at ``dom0_ip``."""
        return self._servers[dom0_ip]

    def send_token(self, token: Token, dest_dom0_ip: str) -> Optional[str]:
        """Deliver an encoded token to a dom0; returns the forward address."""
        payload = token.encode()
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        try:
            server = self._servers[dest_dom0_ip]
        except KeyError:
            raise KeyError(f"no token server registered at {dest_dom0_ip}")
        return server.receive(payload)

    def circulate(self, token: Token, start_dom0_ip: str, max_hops: int) -> int:
        """Keep forwarding the token until a handler holds it or hops run out.

        Returns the number of hops performed.
        """
        if max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        dest: Optional[str] = start_dom0_ip
        hops = 0
        while dest is not None and hops < max_hops:
            dest = self.send_token(token, dest)
            hops += 1
        return hops


class LossyTokenNetwork(TokenNetwork):
    """A token network that drops messages with a fixed probability.

    Used by the fault-injection tests and the resilient-round logic: the
    real deployment's token travels over UDP-like NAT-redirected messages,
    so loss is a scenario the control plane must survive.
    """

    def __init__(self, drop_prob: float, seed=None) -> None:
        super().__init__()
        if not 0 <= drop_prob < 1:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        from repro.util.rng import make_rng

        self._drop_prob = drop_prob
        self._rng = make_rng(seed)
        self.drops = 0

    def send_token(self, token: Token, dest_dom0_ip: str) -> Optional[str]:
        if self._rng.random() < self._drop_prob:
            self.drops += 1
            raise TokenLostError(dest_dom0_ip)
        return super().send_token(token, dest_dom0_ip)
