"""dom0 hypervisor node and a full testbed deployment (paper §V-B).

:class:`HypervisorNode` emulates what runs in dom0: the flow table, the
location/capacity responders, and the token-hold decision procedure made on
behalf of locally hosted VMs.  :class:`TestbedDeployment` wires one node
per host to a :class:`repro.testbed.tokenserver.TokenNetwork` and drives a
whole distributed S-CORE round purely through message passing — the same
algorithm the simulator runs, but exercised through the §V-B implementation
path (wire-encoded tokens, dom0 addressing, capacity probes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.allocation import Allocation
from repro.cluster.manager import PlacementManager, vm_ip
from repro.core.cost import CostModel
from repro.core.migration import MigrationDecision, MigrationEngine
from repro.core.policies import TokenPolicy
from repro.core.token import Token
from repro.testbed.flowtable import FlowKey, FlowTable
from repro.testbed.tokenserver import (
    CapacityRequest,
    CapacityResponse,
    LocationRequest,
    LocationResponse,
    TokenLostError,
    TokenNetwork,
    TokenServer,
)
from repro.traffic.matrix import TrafficMatrix


class HypervisorNode:
    """One physical host's dom0."""

    def __init__(self, host: int, deployment: "TestbedDeployment") -> None:
        self._host = host
        self._deployment = deployment
        self._dom0_ip = deployment.manager.dom0_ip(host)
        self.flow_table = FlowTable()

    @property
    def host(self) -> int:
        """Topology host index."""
        return self._host

    @property
    def dom0_ip(self) -> str:
        """This node's control-plane address."""
        return self._dom0_ip

    def local_vm_ids(self) -> List[int]:
        """VMs currently hosted here (ascending ID)."""
        return sorted(self._deployment.allocation.vms_on(self._host))

    # -- §V-B4 / §V-B5 responders --------------------------------------------

    def handle_location_request(self, request: LocationRequest) -> LocationResponse:
        """Answer: which dom0 hosts the requested VM? (NAT-redirected)."""
        return LocationResponse(
            vm_ip=request.target_vm_ip,
            dom0_ip=self._dom0_ip,
        )

    def handle_capacity_request(self, request: CapacityRequest) -> CapacityResponse:
        """Report free slots and RAM (the §V-B5 capacity response)."""
        allocation = self._deployment.allocation
        return CapacityResponse(
            responder_dom0_ip=self._dom0_ip,
            free_slots=allocation.free_slots(self._host),
            free_ram_mb=allocation.free_ram_mb(self._host),
        )

    # -- token handling ----------------------------------------------------------

    def hold_token_for(self, token: Token, vm_id: int) -> Optional[str]:
        """Run the S-CORE decision for a hosted VM, then name the next hop.

        Returns the dom0 IP hosting the next token holder, or ``None`` when
        the round's hop budget is exhausted (deployment-controlled).
        """
        deployment = self._deployment
        if vm_id not in deployment.allocation.vms_on(self._host):
            raise ValueError(
                f"dom0 {self._dom0_ip} received token for VM {vm_id} it does "
                f"not host"
            )
        decision = deployment.engine.decide_and_migrate(
            deployment.allocation, deployment.traffic, vm_id
        )
        deployment.decisions.append(decision)
        deployment.policy.on_hold(
            token, vm_id, deployment.allocation, deployment.traffic,
            deployment.cost_model,
        )
        next_vm = deployment.policy.next_vm(
            token, vm_id, deployment.allocation, deployment.traffic,
            deployment.cost_model,
        )
        return deployment.note_next_holder(next_vm)


class TestbedDeployment:
    """A cluster-wide S-CORE deployment driven purely by token messages."""

    # Not a pytest test class despite the name.
    __test__ = False

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        manager: PlacementManager,
        policy: TokenPolicy,
        engine: MigrationEngine,
        network: Optional[TokenNetwork] = None,
    ) -> None:
        self.allocation = allocation
        self.traffic = traffic
        self.manager = manager
        self.policy = policy
        self.engine = engine
        self.cost_model = engine.cost_model
        self.decisions: List[MigrationDecision] = []
        self.network = network if network is not None else TokenNetwork()
        self.token_regenerations = 0
        self.nodes: Dict[int, HypervisorNode] = {}
        self._hops_remaining = 0
        self._pending_vm: Optional[int] = None
        for host in allocation.cluster.topology.hosts:
            node = HypervisorNode(host, self)
            self.nodes[host] = node
            self.network.register(
                TokenServer(node.dom0_ip, self._make_handler(node))
            )

    def _make_handler(self, node: HypervisorNode):
        def on_token(token: Token) -> Optional[str]:
            vm_id = self._pending_vm
            if vm_id is None:
                raise RuntimeError("token delivered with no designated holder")
            return node.hold_token_for(token, vm_id)

        return on_token

    def note_next_holder(self, vm_id: int) -> Optional[str]:
        """Record who holds next; returns their dom0 IP unless out of hops."""
        self._hops_remaining -= 1
        if self._hops_remaining <= 0:
            self._pending_vm = None
            return None
        self._pending_vm = vm_id
        return self.manager.dom0_ip(self.allocation.server_of(vm_id))

    def populate_flow_tables(self, window_s: float = 10.0) -> None:
        """Install the traffic matrix into each dom0 flow table.

        Models the Open vSwitch polling step: each pair's rate becomes a
        flow with the corresponding byte count over the window.
        """
        for u, v, rate in self.traffic.pairs():
            host_u = self.allocation.server_of(u)
            host_v = self.allocation.server_of(v)
            key = FlowKey(src_ip=vm_ip(u), dst_ip=vm_ip(v))
            for host in {host_u, host_v}:
                table = self.nodes[host].flow_table
                table.upsert_flow(key, int(rate * window_s), timestamp=window_s)

    def run_round(self, n_holds: Optional[int] = None) -> int:
        """Circulate the token for ``n_holds`` decisions (default |V|).

        Returns the number of hops actually performed.
        """
        vm_ids = sorted(self.allocation.vm_ids())
        if not vm_ids:
            raise ValueError("deployment has no VMs to circulate a token over")
        token = Token(vm_ids)
        first_vm = token.lowest_id
        self._hops_remaining = n_holds if n_holds is not None else len(vm_ids)
        self._pending_vm = first_vm
        start_ip = self.manager.dom0_ip(self.allocation.server_of(first_vm))
        return self.network.circulate(
            token, start_ip, max_hops=self._hops_remaining
        )

    def run_resilient_round(
        self,
        n_holds: Optional[int] = None,
        max_regenerations: int = 10,
    ) -> int:
        """Like :meth:`run_round`, but survives in-flight token loss.

        When the network drops the token, the (centralized) placement
        manager regenerates a fresh one — all HLF level estimates reset to
        zero, which is safe (they are re-learned) but loses prioritization
        warm-up — and delivery resumes at the VM the lost token was
        addressed to.  Gives up after ``max_regenerations`` losses.
        Returns the number of successful hops.
        """
        if max_regenerations < 0:
            raise ValueError(
                f"max_regenerations must be >= 0, got {max_regenerations}"
            )
        vm_ids = sorted(self.allocation.vm_ids())
        if not vm_ids:
            raise ValueError("deployment has no VMs to circulate a token over")
        token = Token(vm_ids)
        budget = n_holds if n_holds is not None else len(vm_ids)
        self._hops_remaining = budget
        self._pending_vm = token.lowest_id
        regenerations = 0
        while self._pending_vm is not None and self._hops_remaining > 0:
            dest = self.manager.dom0_ip(
                self.allocation.server_of(self._pending_vm)
            )
            try:
                self.network.circulate(token, dest, max_hops=self._hops_remaining)
                break  # circulation ran to completion (hold or budget)
            except TokenLostError:
                regenerations += 1
                self.token_regenerations += 1
                if regenerations > max_regenerations:
                    raise
                # The manager mints a fresh token over the current VM set;
                # the destined holder keeps its turn.
                token = Token(sorted(self.allocation.vm_ids()))
        # Holds performed = budget consumed by note_next_holder.
        return budget - max(self._hops_remaining, 0)

    @property
    def migrations_performed(self) -> int:
        """Total migrations executed across all rounds so far."""
        return sum(1 for d in self.decisions if d.migrated)
