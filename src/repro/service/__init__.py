"""Scheduler-as-a-service: the supervised S-CORE daemon.

The long-running counterpart of the batch scenario runner: a
:class:`SchedulerService` holds warm scheduler state, consumes a stream
of churn/traffic events through bounded admission control, emits
migration plans round by round, and survives crashes, torn writes,
invariant violations and overload through the persistence layer of
:mod:`repro.persist` plus its own safe-mode / degraded-mode ladder.
``python -m repro serve`` is the CLI front end;
:mod:`repro.service.chaos` is the differential soak harness that pins
the whole stack against an unfaulted twin.
"""

from repro.service.admission import (
    Accepted,
    AdmissionOutcome,
    Coalesced,
    Deferred,
    IngestionQueue,
    Rejected,
)
from repro.service.chaos import (
    ChaosSoakResult,
    FAULT_CLASSES,
    flash_crowd_specs,
    run_chaos_soak,
)
from repro.service.service import (
    DEGRADED,
    DRAINING,
    FAILED,
    RECOVERING,
    RUNNING,
    SAFE_MODE,
    SERVICE_FORMAT,
    STOPPED,
    DegradedPersistence,
    DegradedWindow,
    GracefulShutdown,
    MigrationPlan,
    SafeModeWindow,
    SchedulerService,
    ServiceConfig,
    ServiceFailed,
    ServiceReport,
    SupervisedRun,
    supervise,
)
from repro.service.sources import (
    CompositeSource,
    EventSource,
    JsonLinesSource,
    PoissonSource,
    ScriptedSource,
    source_from_spec,
)

__all__ = [
    "Accepted",
    "AdmissionOutcome",
    "ChaosSoakResult",
    "Coalesced",
    "CompositeSource",
    "DEGRADED",
    "DRAINING",
    "DegradedPersistence",
    "DegradedWindow",
    "EventSource",
    "FAILED",
    "FAULT_CLASSES",
    "GracefulShutdown",
    "IngestionQueue",
    "JsonLinesSource",
    "MigrationPlan",
    "PoissonSource",
    "RECOVERING",
    "RUNNING",
    "Rejected",
    "SAFE_MODE",
    "SERVICE_FORMAT",
    "STOPPED",
    "SafeModeWindow",
    "SchedulerService",
    "ScriptedSource",
    "ServiceConfig",
    "ServiceFailed",
    "ServiceReport",
    "SupervisedRun",
    "supervise",
    "run_chaos_soak",
    "flash_crowd_specs",
    "source_from_spec",
    "Deferred",
]
