"""The chaos soak: a supervised daemon under fire vs. its unfaulted twin.

:func:`run_chaos_soak` drives two services through the *same* seeded
event stream — Poisson churn/traffic plus a scripted flash-crowd burst
sized to flood the admission queue — for a horizon of simulated hours.
The *twin* runs on clean IO.  The *victim* runs under
:func:`~repro.service.service.supervise` with a seeded schedule of
fault plans, one per incarnation, drawn from three classes:

* **hard kill** — ``SimulatedCrash`` from the between-waves pump at a
  monotonically increasing simulated second (monotone so a recovery
  replay, whose clock never exceeds the previous kill point, cannot
  re-trip the same kill forever);
* **snapshot sabotage** — the k-th snapshot write torn / corrupted /
  vanished, optionally with transient ``OSError`` on earlier writes
  (the retry-path rider);
* **journal kill** — the k-th append torn mid-record, with an ordinal
  floor that grows per incarnation so some round always commits before
  the next death (guaranteed forward progress).

After the fault schedule is exhausted the last incarnation runs on
clean IO to completion.  Both services end the same way — stream
absorbed, queue drained, a final zero-migration round — and the
differential check then demands *bit-level* equivalence of everything
durable: communication cost within 1e-9, identical VM→host mapping,
identical simulated clock, identical round count, identical admission
counters.  Any divergence is listed by :meth:`ChaosSoakResult.differences`.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.persist.faults import FaultPlan, FaultyIO
from repro.persist.snapshot import StorageIO
from repro.scenarios.scenario import SCALES, EventSpec
from repro.service.service import (
    SchedulerService,
    ServiceConfig,
    ServiceReport,
    SupervisedRun,
    supervise,
)
from repro.service.sources import (
    CompositeSource,
    PoissonSource,
    ScriptedSource,
)
from repro.sim.experiment import ExperimentConfig

_RELTOL = 1e-9

FAULT_CLASSES = ("kill", "snapshot", "journal")


def flash_crowd_specs(at_round: float, soft_limit: int) -> List[EventSpec]:
    """A burst sized to flood a queue with the given soft watermark.

    Ordered so every admission outcome occurs: an early surge (the
    coalescing anchor), structural arrivals filling to the watermark,
    a pile of equivalent surges that must coalesce, three inequivalent
    surges (``top_pairs=16`` — nothing the Poisson mix emits — so no
    pending peer matches) that must shed, and trailing arrivals that
    must defer past the watermark.
    """
    specs: List[EventSpec] = []
    t = at_round

    def add(**kwargs) -> None:
        nonlocal t
        specs.append(EventSpec(at_round=t, **kwargs))
        t += 0.002

    add(kind="traffic_surge", factor=1.05, top_pairs=8)
    for _ in range(max(1, soft_limit - 2)):
        add(kind="arrival", count=1, rate=400.0)
    for _ in range(2 * soft_limit):
        add(kind="traffic_surge", factor=1.05, top_pairs=8)
    for _ in range(3):
        add(kind="traffic_surge", factor=1.1, top_pairs=16)
    for _ in range(2):
        add(kind="arrival", count=1, rate=300.0)
    return specs


@dataclass
class ChaosSoakResult:
    """Both halves of one soak, plus the differential verdict."""

    policy: str
    seed: int
    victim: SupervisedRun
    twin_report: ServiceReport
    victim_cost: float
    twin_cost: float
    victim_clock: float
    twin_clock: float
    victim_rounds: int
    twin_rounds: int
    victim_mapping: Dict[int, int]
    twin_mapping: Dict[int, int]
    victim_admissions: Dict[str, int]
    twin_admissions: Dict[str, int]

    @property
    def restarts(self) -> int:
        return self.victim.restarts

    @property
    def crash_points(self) -> Tuple[str, ...]:
        return self.victim.crash_points

    def differences(self) -> List[str]:
        """Every way the faulted run diverged from its twin (empty = none)."""
        found = []
        scale = max(1.0, abs(self.twin_cost))
        if abs(self.victim_cost - self.twin_cost) > _RELTOL * scale:
            found.append(
                f"cost diverged: victim {self.victim_cost!r} "
                f"vs twin {self.twin_cost!r}"
            )
        if abs(self.victim_clock - self.twin_clock) > _RELTOL * max(
            1.0, abs(self.twin_clock)
        ):
            found.append(
                f"clock diverged: victim {self.victim_clock!r} "
                f"vs twin {self.twin_clock!r}"
            )
        if self.victim_rounds != self.twin_rounds:
            found.append(
                f"round count diverged: victim {self.victim_rounds} "
                f"vs twin {self.twin_rounds}"
            )
        if self.victim_mapping != self.twin_mapping:
            moved = [
                vm
                for vm in set(self.victim_mapping) | set(self.twin_mapping)
                if self.victim_mapping.get(vm) != self.twin_mapping.get(vm)
            ]
            found.append(
                f"VM->host mapping diverged on {len(moved)} VM(s): "
                f"{sorted(moved)[:10]}"
            )
        if self.victim_admissions != self.twin_admissions:
            found.append(
                f"admission counters diverged: victim "
                f"{self.victim_admissions} vs twin {self.twin_admissions}"
            )
        return found


def _mapping(service: SchedulerService) -> Dict[int, int]:
    allocation = service.environment.allocation
    return {
        int(vm): int(allocation.server_of(vm)) for vm in allocation.vm_ids()
    }


def _fault_schedule(
    rng: random.Random,
    n_faults: int,
    horizon_s: float,
    classes: Sequence[str],
) -> List[FaultPlan]:
    """One plan per incarnation; every class appears when room allows.

    Kill times are drawn *sorted ascending* across the schedule, so a
    restart's replay (clock at most the previous kill point) can never
    re-trip a later kill; journal ordinals grow with the incarnation
    index for the same reason — forward progress is structural, not
    probabilistic.
    """
    kill_times = sorted(
        rng.uniform(0.08, 0.92) * horizon_s for _ in range(n_faults)
    )
    kinds = list(classes[: n_faults])
    while len(kinds) < n_faults:
        kinds.append(classes[rng.randrange(len(classes))])
    rng.shuffle(kinds)
    plans = []
    for i, kind in enumerate(kinds):
        transients = (0, 0, 2, 5)[rng.randrange(4)]
        if kind == "kill":
            plans.append(
                FaultPlan(
                    crash_at_s=kill_times[i], transient_errors=transients
                )
            )
        elif kind == "snapshot":
            mode = ("torn", "corrupt", "vanish")[rng.randrange(3)]
            plans.append(
                FaultPlan(
                    crash_on_snapshot=2 + rng.randrange(2),
                    snapshot_mode=mode,
                    transient_errors=transients,
                )
            )
        else:  # journal
            plans.append(
                FaultPlan(
                    crash_on_journal_append=8 + 6 * i + rng.randrange(6),
                    transient_errors=transients,
                )
            )
    return plans


def run_chaos_soak(
    base_dir: str,
    *,
    policy: str = "hlf",
    scale: str = "toy",
    seed: int = 7,
    horizon_rounds: float = 12.0,
    rate_per_round: float = 3.0,
    burst_at_round: Optional[float] = None,
    n_faults: int = 4,
    fault_classes: Sequence[str] = FAULT_CLASSES,
    queue_soft_limit: int = 6,
    checkpoint_every: int = 3,
    max_restarts: int = 24,
) -> ChaosSoakResult:
    """One full soak: twin on clean IO, victim under the fault schedule.

    ``base_dir`` gets two state directories (``twin/``, ``victim/``).
    The stream, the burst and the fault schedule are all pure functions
    of ``seed``, so a failing soak replays exactly.
    """
    unknown = set(fault_classes) - set(FAULT_CLASSES)
    if unknown:
        raise ValueError(f"unknown fault classes {sorted(unknown)}")
    experiment = ExperimentConfig(
        **SCALES[scale], policy=policy, seed=1000 + seed
    )
    config = ServiceConfig(
        checkpoint_every=checkpoint_every,
        queue_capacity=max(8 * queue_soft_limit, 16),
        queue_soft_limit=queue_soft_limit,
        compact_journal=True,
    )
    if burst_at_round is None:
        burst_at_round = horizon_rounds / 3.0

    def source_factory(round_seconds: float):
        return CompositeSource(
            [
                PoissonSource(
                    rate_per_round, round_seconds, horizon_rounds, seed=seed
                ),
                ScriptedSource.from_specs(
                    flash_crowd_specs(burst_at_round, queue_soft_limit),
                    round_seconds,
                ),
            ]
        )

    twin = SchedulerService.create(
        experiment, os.path.join(base_dir, "twin"), source_factory,
        config=config,
    )
    try:
        twin_report = twin.serve()
        twin_cost = twin_report.final_cost
        twin_clock = float(twin.scheduler.clock)
        twin_rounds = twin.rounds_done
        twin_mapping = _mapping(twin)
        twin_admissions = dict(twin_report.admissions)
        horizon_s = horizon_rounds * twin.round_seconds
    finally:
        twin.close()

    rng = random.Random(0x5EED ^ seed)
    plans = _fault_schedule(rng, n_faults, horizon_s, tuple(fault_classes))
    victim_dir = os.path.join(base_dir, "victim")

    def io_for(incarnation: int) -> StorageIO:
        if incarnation < len(plans):
            return FaultyIO(plans[incarnation])
        return StorageIO()

    def fault_for(incarnation: int) -> Optional[FaultPlan]:
        return plans[incarnation] if incarnation < len(plans) else None

    victim = supervise(
        victim_dir,
        lambda: SchedulerService.create(
            experiment,
            victim_dir,
            source_factory,
            config=config,
            io=io_for(0),
            fault=fault_for(0),
        ),
        max_restarts=max_restarts,
        io_for=io_for,
        fault_for=fault_for,
    )
    try:
        return ChaosSoakResult(
            policy=policy,
            seed=seed,
            victim=victim,
            twin_report=twin_report,
            victim_cost=victim.report.final_cost,
            twin_cost=twin_cost,
            victim_clock=float(victim.service.scheduler.clock),
            twin_clock=twin_clock,
            victim_rounds=victim.service.rounds_done,
            twin_rounds=twin_rounds,
            victim_mapping=_mapping(victim.service),
            twin_mapping=twin_mapping,
            victim_admissions=dict(victim.report.admissions),
            twin_admissions=twin_admissions,
        )
    finally:
        victim.service.close()
