"""The scheduler service: S-CORE as a supervised long-running daemon.

:class:`SchedulerService` wraps one :class:`~repro.core.scheduler.SCOREScheduler`
behind the write-ahead proxy of :mod:`repro.persist.durable` and drives
it one token round at a time: poll the event source, admit through the
bounded :class:`~repro.service.admission.IngestionQueue`, dispatch into
the continuous-time runner, run the round, commit it to the journal,
emit a :class:`MigrationPlan`, checkpoint on cadence.  Everything the
trajectory depends on — scheduler graph, event heap, ingestion queue,
the *source itself* (RNG state included) — pickles into snapshot
generations, so a service killed at any point resumes bit-exact.

Robustness model (the state machine ``docs/service.md`` diagrams)::

    running ──invariant violation──▶ safe-mode ──▶ recovering ─┐
       ▲  ╲──persist IO exhausted──▶ degraded ──checkpoint ok──┤
       │                                                       │
       └───────────────────────────────────────────────────────┘
    running ──stop requested──▶ draining ──final checkpoint──▶ stopped

* **safe mode** — :class:`~repro.util.validation.InvariantViolation`
  from the per-round engine check freezes plan emission, snapshots the
  offending state to ``<state_dir>/postmortem/`` for post-mortem, then
  recovers through the PR-7 ladder (newest good generation → older →
  cold rebuild) and verified re-execution.  The violating round was
  never committed, so replay stops at the last good round and re-runs
  it cleanly.  A bounded recovery budget turns a *persistent* violation
  into a typed :class:`ServiceFailed` instead of a loop.
* **degraded persistence** — every journal append and snapshot write
  retries with backoff inside a deadline budget; past it the service
  raises no raw ``OSError`` but enters *degraded*: scheduling continues,
  journaling pauses, and every round probes with a checkpoint attempt.
  The first snapshot that lands covers the journal gap (its state is
  newer than every skipped record), so the service exits degraded with
  full durability restored.
* **supervision** — :func:`supervise` is the watchdog: it catches the
  fault harness's :class:`~repro.persist.faults.SimulatedCrash` (a
  stand-in for SIGKILL), drops the dead incarnation and resumes a fresh
  one from newest-good-snapshot + journal replay, up to a restart
  budget.
* **graceful drain** — :class:`GracefulShutdown` turns SIGINT/SIGTERM
  into a polled flag: the in-flight round finishes, a final checkpoint
  flushes, and :meth:`SchedulerService.serve` returns with the service
  stopped cleanly (a later ``resume`` continues the stream mid-flight).
"""

from __future__ import annotations

import contextlib
import os
import signal
import time
from dataclasses import asdict, dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.persist.durable import (
    JournaledScheduler,
    RecoveryError,
    _COST_KEYS,
    _RELTOL,
    _decisions_digest,
    compact_journal_to_snapshots,
)
from repro.persist.faults import FaultPlan, SimulatedCrash
from repro.persist.journal import JOURNAL_NAME, Journal
from repro.persist.snapshot import (
    NoSnapshotError,
    StorageIO,
    load_latest_good,
    prune_snapshots,
    write_snapshot,
)
from repro.service.admission import Accepted, Deferred, IngestionQueue
from repro.service.sources import EventSource, source_from_spec
from repro.sim.eventqueue import EventQueueRunner
from repro.sim.experiment import (
    ExperimentConfig,
    build_environment,
    make_scheduler,
)
from repro.util.validation import InvariantViolation, check_engine_invariants

SERVICE_FORMAT = "score-service/v1"

# Service lifecycle states (ServiceReport.transitions records each move).
RUNNING = "running"
DEGRADED = "degraded"
SAFE_MODE = "safe-mode"
RECOVERING = "recovering"
DRAINING = "draining"
STOPPED = "stopped"
FAILED = "failed"


class ServiceFailed(Exception):
    """The service exhausted a recovery budget and gave up (typed)."""


class DegradedPersistence(Exception):
    """Persist IO still failing after the deadline's retry budget.

    Raised *internally* by the guarded persistence path and consumed by
    the service's degraded-mode transition — callers of the public
    surface never see a raw ``OSError`` from the persistence layer.
    """

    def __init__(self, operation: str, deadline_s: float, cause: OSError):
        super().__init__(
            f"{operation} still failing after {deadline_s:g}s retry "
            f"budget: {cause}"
        )
        self.operation = operation
        self.deadline_s = deadline_s
        self.cause = cause


@dataclass(frozen=True)
class ServiceConfig:
    """Runtime knobs of one service; journaled in the ``begin`` record."""

    #: Rounds between snapshot generations (the bootstrap one is free).
    checkpoint_every: int = 4
    keep_generations: int = 4
    #: Truncate journal records older than every surviving generation
    #: after each checkpoint (daemons run unbounded: default on).
    compact_journal: bool = True
    #: Run the shallow engine-invariant screen every k-th round (0=off).
    validate_every: int = 1
    #: Of the validated rounds, every k-th also runs the deep tier (0=off).
    deep_validate_every: int = 0
    queue_capacity: int = 64
    queue_soft_limit: Optional[int] = None
    #: Events fed to the runner per round (None: the queue's soft limit).
    max_dispatch_per_round: Optional[int] = None
    #: Retry budget for any single persist operation before degrading.
    persist_deadline_s: float = 2.0
    max_safe_mode_recoveries: int = 3

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.keep_generations < 2:
            raise ValueError(
                f"keep_generations must be >= 2, got {self.keep_generations}"
            )
        if self.validate_every < 0 or self.deep_validate_every < 0:
            raise ValueError("validate cadences must be >= 0")
        if self.persist_deadline_s <= 0:
            raise ValueError(
                f"persist_deadline_s must be > 0, got {self.persist_deadline_s}"
            )
        if self.max_safe_mode_recoveries < 0:
            raise ValueError("max_safe_mode_recoveries must be >= 0")


@dataclass(frozen=True)
class MigrationPlan:
    """One emitted round outcome: the service's output artifact."""

    round: int
    clock: float
    cost: float
    events_absorbed: int
    #: ``(vm_id, source_host, target_host)`` per migrated VM, hold order.
    moves: Tuple[Tuple[int, int, int], ...]

    @property
    def migrations(self) -> int:
        return len(self.moves)


@dataclass
class SafeModeWindow:
    """One frozen-emission window: violation through recovered."""

    start_clock: float
    invariant: str
    context: str
    end_clock: Optional[float] = None
    #: Path of the offending state's post-mortem snapshot (None when the
    #: post-mortem write itself failed — recovery proceeds regardless).
    postmortem: Optional[str] = None


@dataclass
class DegradedWindow:
    """One journaling pause: persist failure through covering checkpoint."""

    start_clock: float
    operation: str
    end_clock: Optional[float] = None


@dataclass
class ServiceReport:
    """Observability surface of one service incarnation."""

    state: str = RUNNING
    #: Rounds this incarnation ran live (replayed rounds excluded).
    rounds: int = 0
    #: Committed position including everything recovery replayed.
    rounds_total: int = 0
    plans: int = 0
    events_applied: int = 0
    migrations: int = 0
    final_cost: float = float("nan")
    #: Rounds that skipped source polling because the queue was overloaded.
    backpressure_rounds: int = 0
    #: Admission counters (accepted/deferred/coalesced/rejected/dispatched);
    #: snapshot-persistent, so exact across crash recovery.
    admissions: Dict[str, int] = field(default_factory=dict)
    #: ``(clock, from, to, reason)`` per lifecycle transition.
    transitions: List[Tuple[float, str, str, str]] = field(
        default_factory=list
    )
    safe_mode: List[SafeModeWindow] = field(default_factory=list)
    degraded: List[DegradedWindow] = field(default_factory=list)
    #: Journal records skipped while degraded (covered by checkpoints).
    skipped_appends: int = 0
    restarts: int = 0
    recovered_from: Optional[str] = None
    stop_reason: Optional[str] = None
    #: Wall-clock admission-to-emitted-plan latency per applied event.
    latencies_s: List[float] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile event-to-plan latency (0 with no samples)."""
        if not self.latencies_s:
            return 0.0
        ranked = sorted(self.latencies_s)
        return ranked[int(0.99 * (len(ranked) - 1))]

    @property
    def events_per_second(self) -> float:
        """Sustained wall-clock event absorption rate this incarnation."""
        return self.events_applied / self.wall_s if self.wall_s > 0 else 0.0


class SchedulerService:
    """One supervised S-CORE daemon over a durable state directory.

    Build with :meth:`create` (fresh directory) or :meth:`resume`
    (recover), then :meth:`serve`.  ``source`` may be an
    :class:`~repro.service.sources.EventSource` or a callable
    ``factory(round_seconds) -> EventSource`` for sources that need the
    round length (it is only known once the environment exists).
    ``on_plan`` observes every emitted :class:`MigrationPlan` as it
    happens; ``service.plans`` keeps them all.
    """

    def __init__(
        self,
        state_dir: str,
        journal: Journal,
        experiment: ExperimentConfig,
        config: ServiceConfig,
        source_spec: Optional[Dict[str, Any]],
        io: StorageIO,
        fault: Optional[FaultPlan],
        on_plan: Optional[Callable[[MigrationPlan], None]],
    ) -> None:
        self._directory = str(state_dir)
        self._journal = journal
        self._experiment = experiment
        self._config = config
        self._source_spec = source_spec
        self._io = io
        self._fault = fault
        self._on_plan = on_plan
        self._state = RUNNING
        self._replaying = False
        self._journal_down = False
        self._safe_mode_recoveries = 0
        self._recovered_from: Optional[str] = None
        self._report = ServiceReport(state=RUNNING)
        self._admit_wall: Dict[int, float] = {}
        self.plans: List[MigrationPlan] = []
        # Durable runtime state (_boot_fresh / _install_state fill these).
        self._environment = None
        self._scheduler = None
        self._proxy = None
        self._runner: Optional[EventQueueRunner] = None
        self._source: Optional[EventSource] = None
        self._queue: Optional[IngestionQueue] = None
        self._rounds_done = 0
        self._next_holder: Optional[int] = None
        self._last_migrations = -1

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        experiment: ExperimentConfig,
        state_dir: str,
        source=None,
        *,
        config: Optional[ServiceConfig] = None,
        io: Optional[StorageIO] = None,
        fault: Optional[FaultPlan] = None,
        on_plan: Optional[Callable[[MigrationPlan], None]] = None,
    ) -> "SchedulerService":
        """Start a fresh service in an empty ``state_dir``.

        The experiment config, service config and the source's rebuild
        spec are journaled as the ``begin`` record (the cold-rebuild
        rung), and the bootstrap snapshot — generation 1, the ladder's
        floor — is written before this returns.
        """
        config = config or ServiceConfig()
        io = io or StorageIO()
        os.makedirs(state_dir, exist_ok=True)
        journal = Journal(os.path.join(state_dir, JOURNAL_NAME), io=io)
        if journal.last_seq:
            journal.close()
            raise ValueError(
                f"{state_dir!r} already holds a journaled service; "
                f"use SchedulerService.resume"
            )
        service = cls(
            state_dir, journal, experiment, config, None, io, fault, on_plan
        )
        service._boot_fresh()
        if callable(source) and not isinstance(source, EventSource):
            source = source(service._runner.round_seconds)
        service._source = source
        service._source_spec = source.spec() if source is not None else None
        # Guarded like every other append: a transiently failing disk at
        # boot retries inside the deadline budget instead of leaking a
        # raw OSError out of create().
        service._guarded(
            "journal append (begin)",
            lambda: journal.append(
                "begin",
                {
                    "format": SERVICE_FORMAT,
                    "experiment": asdict(experiment),
                    "service": asdict(config),
                    "source": service._source_spec,
                },
            ),
        )
        service._checkpoint()  # generation 1: the ladder's floor
        return service

    @classmethod
    def resume(
        cls,
        state_dir: str,
        *,
        config: Optional[ServiceConfig] = None,
        io: Optional[StorageIO] = None,
        fault: Optional[FaultPlan] = None,
        on_plan: Optional[Callable[[MigrationPlan], None]] = None,
    ) -> "SchedulerService":
        """Recover a service from its state directory.

        Applies the degradation ladder (newest good snapshot → older
        generations → cold rebuild from the ``begin`` spec), then
        re-executes the journal's committed round suffix, verifying
        each against its commit record.  ``config`` overrides the
        journaled service config (None keeps it).
        """
        io = io or StorageIO()
        journal = Journal(os.path.join(state_dir, JOURNAL_NAME), io=io)
        begin = journal.find_first("begin")
        if begin is None:
            journal.close()
            raise RecoveryError(
                f"{state_dir!r} has no usable journal begin record"
            )
        if begin.data.get("format") != SERVICE_FORMAT:
            journal.close()
            raise RecoveryError(
                f"{state_dir!r} is not a service directory "
                f"(begin format {begin.data.get('format')!r})"
            )
        experiment = ExperimentConfig(**begin.data["experiment"])
        if config is None:
            config = ServiceConfig(**begin.data["service"])
        service = cls(
            state_dir,
            journal,
            experiment,
            config,
            begin.data.get("source"),
            io,
            fault,
            on_plan,
        )
        service._recover()
        return service

    # -- runtime wiring ------------------------------------------------

    def _attach(self, environment, scheduler) -> None:
        self._environment = environment
        self._scheduler = scheduler
        self._proxy = JournaledScheduler(scheduler, self._record_op)
        self._runner = EventQueueRunner(
            self._proxy,
            environment=environment,
            on_before_event=self._record_event,
            fault=self._fault,
        )

    def _boot_fresh(self) -> None:
        environment = build_environment(self._experiment)
        scheduler = make_scheduler(environment)
        self._attach(environment, scheduler)
        self._queue = IngestionQueue(
            capacity=self._config.queue_capacity,
            soft_limit=self._config.queue_soft_limit,
        )
        self._rounds_done = 0
        self._next_holder = None
        self._last_migrations = -1
        self._source = (
            source_from_spec(self._source_spec, self._runner.round_seconds)
            if self._source_spec is not None
            else None
        )

    def _state_dict(self) -> Dict[str, Any]:
        return {
            "environment": self._environment,
            "scheduler": self._scheduler,
            "source": self._source,
            "queue": self._queue,
            "heap": self._runner._heap,
            "heap_seq": self._runner._seq,
            "round_seconds": self._runner.round_seconds,
            "rounds_done": self._rounds_done,
            "next_holder": self._next_holder,
            "last_migrations": self._last_migrations,
        }

    def _install_state(self, state: Dict[str, Any]) -> None:
        self._attach(state["environment"], state["scheduler"])
        self._runner._heap = state["heap"]
        self._runner._seq = state["heap_seq"]
        self._runner.round_seconds = state["round_seconds"]
        self._source = state["source"]
        self._queue = state["queue"]
        self._rounds_done = state["rounds_done"]
        self._next_holder = state["next_holder"]
        self._last_migrations = state["last_migrations"]

    # -- lifecycle bookkeeping ------------------------------------------

    def _set_state(self, new: str, reason: str) -> None:
        if new == self._state:
            return
        clock = float(self._scheduler.clock) if self._scheduler else 0.0
        self._report.transitions.append((clock, self._state, new, reason))
        self._state = new

    @property
    def state(self) -> str:
        return self._state

    @property
    def report(self) -> ServiceReport:
        self._report.state = self._state
        self._report.rounds_total = self._rounds_done
        self._report.recovered_from = self._recovered_from
        if self._queue is not None:
            self._report.admissions = dict(self._queue.stats)
        return self._report

    @property
    def scheduler(self):
        return self._scheduler

    @property
    def environment(self):
        return self._environment

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def rounds_done(self) -> int:
        return self._rounds_done

    @property
    def round_seconds(self) -> float:
        """Simulated seconds per token round (initial-population unit)."""
        return self._runner.round_seconds

    @property
    def recovered_from(self) -> Optional[str]:
        return self._recovered_from

    # -- guarded persistence -------------------------------------------

    def _guarded(self, operation: str, attempt):
        """Retry ``attempt`` over OSError inside the deadline budget.

        Each inner attempt already carries :class:`StorageIO`'s own
        bounded retries; this outer loop keeps probing (through the
        injectable sleeper, so fault tests take zero wall-clock) until
        the budget is spent, then surfaces the typed
        :class:`DegradedPersistence` instead of the raw ``OSError``.
        """
        budget = self._config.persist_deadline_s
        waited = 0.0
        backoff = self._io.backoff_s
        while True:
            try:
                return attempt()
            except OSError as exc:
                if waited >= budget:
                    raise DegradedPersistence(operation, budget, exc) from exc
                self._io.sleep(backoff)
                waited += backoff
                backoff *= 2.0

    def _append(self, kind: str, data: Dict[str, Any]) -> Optional[int]:
        if self._replaying:
            return None
        if self._journal_down:
            self._report.skipped_appends += 1
            return None
        try:
            return self._guarded(
                f"journal append ({kind})",
                lambda: self._journal.append(kind, data),
            )
        except DegradedPersistence as exc:
            self._report.skipped_appends += 1
            self._enter_degraded(exc)
            return None

    def _record_op(self, op: str, payload: Dict[str, Any]) -> None:
        self._append("op", {"op": op, **payload})

    def _record_event(self, time_s: float, event) -> None:
        self._append("event", {"t": float(time_s), "event": event.describe()})

    def _enter_degraded(self, exc: DegradedPersistence) -> None:
        if "journal" in exc.operation:
            self._journal_down = True
        if self._state != DEGRADED:
            self._report.degraded.append(
                DegradedWindow(
                    start_clock=float(self._scheduler.clock),
                    operation=exc.operation,
                )
            )
            self._set_state(DEGRADED, str(exc))

    def _exit_degraded(self) -> None:
        self._journal_down = False
        if self._report.degraded and self._report.degraded[-1].end_clock is None:
            self._report.degraded[-1].end_clock = float(self._scheduler.clock)
        self._set_state(
            RUNNING, "persistence recovered; checkpoint covers the journal gap"
        )

    def _checkpoint(self) -> Optional[str]:
        if self._replaying:
            return None
        try:
            path = self._guarded("snapshot write", self._write_snapshot_now)
        except DegradedPersistence as exc:
            self._enter_degraded(exc)
            return None
        if self._state == DEGRADED:
            self._exit_degraded()
        return path

    def _write_snapshot_now(self) -> str:
        meta = {
            "kind": "service",
            "journal_seq": self._journal.last_seq,
            "rounds_done": self._rounds_done,
            "clock": float(self._scheduler.clock),
        }
        path = write_snapshot(
            self._directory, self._state_dict(), meta, io=self._io
        )
        self._append(
            "snapshot",
            {
                "file": os.path.basename(path),
                "journal_seq": meta["journal_seq"],
            },
        )
        prune_snapshots(self._directory, keep=self._config.keep_generations)
        if self._config.compact_journal:
            compact_journal_to_snapshots(self._directory, self._journal)
        return path

    # -- safe mode & recovery ------------------------------------------

    def _write_postmortem(self, violation: InvariantViolation) -> Optional[str]:
        """Best-effort snapshot of the offending state for post-mortem.

        Lands in a ``postmortem/`` subdirectory so the recovery ladder
        over the main state directory never sees (or prunes) it; a
        failure to write it must never block recovery itself.
        """
        try:
            return write_snapshot(
                os.path.join(self._directory, "postmortem"),
                {
                    "scheduler": self._scheduler,
                    "invariant": str(violation.invariant),
                    "indices": list(getattr(violation, "indices", ())),
                    "context": str(violation.context),
                    "rounds_done": self._rounds_done,
                },
                meta={
                    "kind": "postmortem",
                    "invariant": str(violation.invariant),
                    "clock": float(self._scheduler.clock),
                },
                io=self._io,
            )
        except Exception:
            # A SimulatedCrash (BaseException) still propagates: a kill
            # during the post-mortem write is a kill like any other.
            return None

    def _handle_violation(self, violation: InvariantViolation) -> None:
        window = SafeModeWindow(
            start_clock=float(self._scheduler.clock),
            invariant=str(violation.invariant),
            context=str(violation.context),
        )
        self._report.safe_mode.append(window)
        self._set_state(
            SAFE_MODE, f"invariant violated: {violation.invariant}"
        )
        window.postmortem = self._write_postmortem(violation)
        self._safe_mode_recoveries += 1
        if self._safe_mode_recoveries > self._config.max_safe_mode_recoveries:
            self._set_state(
                FAILED,
                f"safe-mode recovery budget exhausted "
                f"({self._config.max_safe_mode_recoveries})",
            )
            raise ServiceFailed(
                f"invariant {violation.invariant!r} persisted through "
                f"{self._config.max_safe_mode_recoveries} ladder recoveries"
            ) from violation
        self._set_state(RECOVERING, "recovery ladder from last good state")
        self._recover()
        window.end_clock = float(self._scheduler.clock)
        self._set_state(RUNNING, f"recovered from {self._recovered_from}")

    def _recover(self) -> None:
        """The PR-7 ladder + verified re-execution, service flavored."""
        try:
            loaded = load_latest_good(self._directory)
            base_seq = int(loaded.header["meta"]["journal_seq"])
            label = f"{os.path.basename(loaded.path)}@seq{base_seq}"
            self._install_state(loaded.state)
        except NoSnapshotError as exc:
            if self._journal.find_first("compact") is not None:
                raise RecoveryError(
                    f"{self._directory!r} has no usable snapshot and its "
                    f"journal was compacted — the cold-rebuild rung is "
                    f"unreachable ({exc})"
                ) from exc
            if self._source_spec is None and self._source is None:
                raise RecoveryError(
                    f"{self._directory!r} has no usable snapshot and its "
                    f"source is not reconstructible (no rebuild spec)"
                ) from exc
            begin = self._journal.find_first("begin")
            self._boot_fresh()
            base_seq = begin.seq
            label = f"cold-rebuild@seq{base_seq}"
        self._recovered_from = label
        self._replaying = True
        try:
            for record in self._journal.records(
                after_seq=base_seq, kinds=("round",)
            ):
                self.step(expected=record.data)
        finally:
            self._replaying = False
        committed = self._journal.records(kinds=("round",))
        if committed:
            self._report.final_cost = float(committed[-1].data["cost"])

    def _verify(
        self, expected: Dict[str, Any], actual: Dict[str, Any]
    ) -> None:
        for key, want in expected.items():
            got = actual.get(key)
            if key in _COST_KEYS:
                scale = max(1.0, abs(float(want)))
                ok = abs(float(got) - float(want)) <= _RELTOL * scale
            else:
                ok = got == want
            if not ok:
                raise RecoveryError(
                    f"service replay diverged at round "
                    f"{expected.get('round')}: {key} recorded {want!r}, "
                    f"re-executed {got!r}"
                )

    # -- the round loop -------------------------------------------------

    def _ingest(self) -> None:
        """Poll the source through the upcoming round — unless overloaded.

        Backpressure is simply not polling: while the queue sits at or
        past its soft watermark the backlog stays inside the source,
        and the service sheds nothing it never accepted.
        """
        if self._source is None:
            return
        if self._queue.overloaded:
            if not self._replaying:
                self._report.backpressure_rounds += 1
            return
        horizon = float(self._scheduler.clock) + self._runner.round_seconds
        now = time.perf_counter()
        for due_s, event in self._source.poll(horizon):
            outcome = self._queue.offer(due_s, event)
            if not self._replaying and isinstance(
                outcome, (Accepted, Deferred)
            ):
                self._admit_wall[id(event)] = now

    def _dispatch(self) -> None:
        limit = (
            self._config.max_dispatch_per_round
            if self._config.max_dispatch_per_round is not None
            else self._queue.soft_limit
        )
        for due_s, event in self._queue.take(limit):
            self._runner.schedule(due_s, event)

    def step(self, expected: Optional[Dict[str, Any]] = None):
        """One full round: ingest → dispatch → schedule → commit → emit.

        Returns the emitted :class:`MigrationPlan` (None while
        replaying).  With ``expected`` (a recorded ``round`` commit) the
        re-executed outcome is verified against it — the recovery path.
        An :class:`~repro.util.validation.InvariantViolation` propagates
        *before* the round commits, so recovery replays only good
        rounds; :meth:`serve` turns it into the safe-mode transition.
        """
        if self._state in (STOPPED, FAILED):
            raise RuntimeError(f"service is {self._state}")
        self._ingest()
        self._dispatch()
        applied_before = len(self._runner.log)
        report = self._runner.run(
            n_iterations=1, first_holder=self._next_holder
        )
        applied = self._runner.log[applied_before:]
        n = self._rounds_done + 1
        if self._config.validate_every and n % self._config.validate_every == 0:
            deep = bool(
                self._config.deep_validate_every
                and n % self._config.deep_validate_every == 0
            )
            check_engine_invariants(
                self._scheduler,
                context=f"service round {self._rounds_done}",
                deep=deep,
            )
        data = {
            "round": self._rounds_done,
            "cost": float(report.final_cost),
            "migrations": int(report.total_migrations),
            "clock": float(self._scheduler.clock),
            "next_holder": report.next_holder,
            "digest": _decisions_digest(report.decisions),
            "events": len(applied),
        }
        if expected is not None:
            self._verify(expected, data)
        self._append("round", data)
        self._next_holder = report.next_holder
        self._rounds_done += 1
        self._last_migrations = int(report.total_migrations)
        self._report.final_cost = float(report.final_cost)
        if self._replaying:
            return None
        self._report.rounds += 1
        self._report.events_applied += len(applied)
        self._report.migrations += report.total_migrations
        plan = MigrationPlan(
            round=self._rounds_done - 1,
            clock=float(self._scheduler.clock),
            cost=float(report.final_cost),
            events_absorbed=len(applied),
            moves=tuple(
                (int(d.vm_id), int(d.source_host), int(d.target_host))
                for d in report.decisions
                if d.migrated
            ),
        )
        self.plans.append(plan)
        self._report.plans += 1
        if self._on_plan is not None:
            self._on_plan(plan)
        emitted_at = time.perf_counter()
        for entry in applied:
            admitted_at = self._admit_wall.pop(id(entry.event), None)
            if admitted_at is not None:
                self._report.latencies_s.append(emitted_at - admitted_at)
        if (
            self._rounds_done % self._config.checkpoint_every == 0
            or self._state == DEGRADED  # probe every round while degraded
        ):
            self._checkpoint()
        return plan

    def _finished(self) -> bool:
        """Source dry, queue and heap empty, and the last round moved
        nothing: the service has absorbed its stream and quiesced."""
        return (
            (self._source is None or self._source.exhausted)
            and len(self._queue) == 0
            and self._runner.pending == 0
            and self._rounds_done > 0
            and self._last_migrations == 0
        )

    def serve(
        self,
        *,
        max_rounds: Optional[int] = None,
        stop_requested: Optional[Callable[[], bool]] = None,
    ) -> ServiceReport:
        """Run rounds until the stream is absorbed and the scheduler
        quiesces (or ``max_rounds``, or a graceful-shutdown request).

        ``stop_requested`` — typically a :class:`GracefulShutdown` —
        is polled between rounds: the in-flight round always finishes,
        a final checkpoint is flushed, and a later :meth:`resume`
        continues the stream exactly where the drain left it.
        """
        if self._state == STOPPED:
            self._set_state(RUNNING, "serve() re-entered")
        started = time.perf_counter()
        stop_reason = "stream absorbed and scheduler quiesced"
        steps = 0
        try:
            while True:
                if max_rounds is not None and steps >= max_rounds:
                    stop_reason = f"max_rounds={max_rounds} reached"
                    break
                if stop_requested is not None and stop_requested():
                    self._set_state(DRAINING, "graceful shutdown requested")
                    stop_reason = "graceful shutdown"
                    break
                if self._finished():
                    break
                try:
                    self.step()
                except InvariantViolation as violation:
                    self._handle_violation(violation)
                steps += 1
        finally:
            self._report.wall_s += time.perf_counter() - started
        self._checkpoint()  # the drain's final flush, whatever stopped us
        self._set_state(STOPPED, stop_reason)
        report = self.report
        report.stop_reason = stop_reason
        return report

    def close(self) -> None:
        if self._scheduler is not None:
            self._scheduler.close()
        self._journal.close()

    def __enter__(self) -> "SchedulerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class GracefulShutdown:
    """SIGINT/SIGTERM → a polled drain flag (usable as ``stop_requested``).

    The first signal sets the flag and *restores the previous handlers*,
    so a second signal behaves as if the guard were never installed
    (KeyboardInterrupt / termination — the operator's force-quit).
    """

    def __init__(self, signals=(signal.SIGINT, signal.SIGTERM)) -> None:
        self._signals = tuple(signals)
        self._old: Dict[int, Any] = {}
        self.requested = False

    def __enter__(self) -> "GracefulShutdown":
        for sig in self._signals:
            self._old[sig] = signal.signal(sig, self._handle)
        return self

    def _handle(self, signum, frame) -> None:
        self.requested = True
        self._restore()

    def _restore(self) -> None:
        for sig, old in self._old.items():
            with contextlib.suppress(ValueError, OSError, TypeError):
                signal.signal(sig, old)
        self._old = {}

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def __call__(self) -> bool:
        return self.requested


class SupervisedRun(NamedTuple):
    """Outcome of one supervised service run."""

    service: SchedulerService
    report: ServiceReport
    restarts: int
    crash_points: Tuple[str, ...]


def supervise(
    state_dir: str,
    create_fn: Callable[[], SchedulerService],
    *,
    max_restarts: int = 10,
    io_for: Optional[Callable[[int], StorageIO]] = None,
    fault_for: Optional[Callable[[int], FaultPlan]] = None,
    serve_kwargs: Optional[Dict[str, Any]] = None,
) -> SupervisedRun:
    """The watchdog loop: serve to completion, restarting after crashes.

    ``create_fn`` builds incarnation 0 (a fresh
    :meth:`SchedulerService.create`); every later incarnation is a
    :meth:`SchedulerService.resume` from ``state_dir`` — newest good
    snapshot plus journal replay, exactly what a process supervisor
    restarting a killed daemon would do.  ``io_for``/``fault_for`` give
    each incarnation its own (possibly faulty) IO stack — the chaos
    harness's hook.  A crash *during* recovery counts against the same
    ``max_restarts`` budget; exceeding it re-raises the crash.
    """
    crashes: List[str] = []
    service: Optional[SchedulerService] = None
    incarnation = 0
    while True:
        try:
            if service is None:
                if incarnation == 0:
                    service = create_fn()
                else:
                    service = SchedulerService.resume(
                        state_dir,
                        io=io_for(incarnation) if io_for else None,
                        fault=fault_for(incarnation) if fault_for else None,
                    )
            report = service.serve(**(serve_kwargs or {}))
            report.restarts = len(crashes)
            return SupervisedRun(
                service=service,
                report=report,
                restarts=len(crashes),
                crash_points=tuple(crashes),
            )
        except SimulatedCrash as crash:
            crashes.append(str(crash))
            if len(crashes) > max_restarts:
                raise
            if service is not None:
                with contextlib.suppress(Exception):
                    service.close()
            service = None
            incarnation += 1
