"""Admission control for the scheduler service's event ingestion.

The daemon never applies an event the moment it arrives: everything
lands in one bounded :class:`IngestionQueue` first, and the service
dispatches at most ``max_dispatch_per_round`` of them into the
continuous-time runner per token round.  The queue is therefore the
overload shock absorber, and its admission policy encodes the one
invariant the service guarantees under any burst:

**structural churn is never dropped.**  An ``Arrival``, ``Outage`` or
``CapacityChange`` that vanishes silently leaves the daemon modelling a
cluster that no longer exists.  Structural events are admitted even
past the soft watermark (as :class:`Deferred` — queued behind the
backlog, applied late but applied).  Only *rate-only* traffic deltas
(``Event.RATE_ONLY`` — today :class:`~repro.sim.eventqueue.TrafficSurge`)
may be coalesced into a pending peer or, failing that, shed with a
typed :class:`Rejected` — losing one of those costs optimization
opportunity, never correctness.

Every ``offer`` returns exactly one of the four frozen outcome types,
so callers (and the chaos differential suite) can assert the policy
rather than infer it from side effects.  Backpressure is the queue's
second lever: while ``overloaded`` the service stops polling its event
source entirely, pushing the queueing upstream.

Determinism note: outcomes depend only on queue contents and the
event's own type — never on wall clock — so a replayed recovery
re-admits the exact same sequence and the admission counters of a
crashed-and-recovered service match its unfaulted twin bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.sim.eventqueue import Event


@dataclass(frozen=True)
class Accepted:
    """Admitted below the soft watermark; will dispatch in arrival order."""

    due_s: float
    depth: int


@dataclass(frozen=True)
class Deferred:
    """Structural event admitted *over* the watermark: late, never lost."""

    due_s: float
    depth: int


@dataclass(frozen=True)
class Coalesced:
    """Rate-only event merged into an equivalent pending peer."""

    due_s: float
    into_due_s: float


@dataclass(frozen=True)
class Rejected:
    """Rate-only event shed under overload (typed, never silent)."""

    due_s: float
    reason: str


AdmissionOutcome = Union[Accepted, Deferred, Coalesced, Rejected]


class IngestionQueue:
    """Bounded FIFO staging buffer with the admission policy above.

    ``soft_limit`` is the overload watermark: at or past it the queue
    reports ``overloaded`` (the service's cue to stop polling sources),
    sheds or coalesces rate-only offers, and defers structural ones.
    ``capacity`` only bounds how much a single burst can grow the
    backlog of *sheddable* work — structural events ignore it by
    design.  The whole object pickles into service snapshots, counters
    included, so admission statistics survive crash recovery.
    """

    def __init__(
        self, capacity: int = 64, soft_limit: Optional[int] = None
    ) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.capacity = int(capacity)
        self.soft_limit = (
            max(1, self.capacity // 2) if soft_limit is None else int(soft_limit)
        )
        if not 1 <= self.soft_limit <= self.capacity:
            raise ValueError(
                f"soft_limit must be in [1, capacity={self.capacity}], "
                f"got {self.soft_limit}"
            )
        # Mutable [due_s, event] slots so coalescing can swap an event
        # in place without disturbing FIFO order.
        self._pending: List[List] = []
        self.stats: Dict[str, int] = {
            "accepted": 0,
            "deferred": 0,
            "coalesced": 0,
            "rejected": 0,
            "dispatched": 0,
        }

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def overloaded(self) -> bool:
        """At/past the soft watermark: stop polling, start shedding."""
        return len(self._pending) >= self.soft_limit

    def offer(self, due_s: float, event: Event) -> AdmissionOutcome:
        """Apply the admission policy to one incoming event."""
        due_s = float(due_s)
        if not self.overloaded:
            self._pending.append([due_s, event])
            self.stats["accepted"] += 1
            return Accepted(due_s=due_s, depth=len(self._pending))
        if event.RATE_ONLY:
            # Newest-first: bursts tend to pile equivalent deltas at the
            # tail, and merging into the most recent peer keeps the
            # coalesced event's dispatch slot as late as its survivors.
            for slot in reversed(self._pending):
                if not slot[1].RATE_ONLY:
                    continue
                merged = slot[1].coalesce(event)
                if merged is not None:
                    slot[1] = merged
                    self.stats["coalesced"] += 1
                    return Coalesced(due_s=due_s, into_due_s=slot[0])
            self.stats["rejected"] += 1
            return Rejected(
                due_s=due_s,
                reason=(
                    f"overload: depth {len(self._pending)} >= soft limit "
                    f"{self.soft_limit}, rate-only delta shed"
                ),
            )
        self._pending.append([due_s, event])
        self.stats["deferred"] += 1
        return Deferred(due_s=due_s, depth=len(self._pending))

    def take(self, max_n: Optional[int] = None) -> List[Tuple[float, Event]]:
        """Pop up to ``max_n`` events, FIFO (all of them when None)."""
        n = len(self._pending) if max_n is None else min(max_n, len(self._pending))
        taken = [(slot[0], slot[1]) for slot in self._pending[:n]]
        del self._pending[:n]
        self.stats["dispatched"] += n
        return taken
