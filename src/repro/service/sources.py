"""Pluggable event sources for the scheduler service.

A source is anything the daemon can poll for timestamped churn/traffic
events: a scripted scenario feed, a seeded Poisson generator, or a
newline-JSON stream (a file, stdin).  The contract is deliberately
pull-based — :meth:`EventSource.poll` returns every event due at or
before the given simulated second — because the service polls once per
round *and only while its ingestion queue is below the overload
watermark*: backpressure is simply not calling ``poll``, leaving the
backlog inside the source.

Sources are part of the service's durable state.  Each snapshot pickles
the live source object (position included), so a recovered service
resumes its stream mid-flight; for the cold-rebuild rung — no usable
snapshot at all — :meth:`EventSource.spec` returns a declarative dict
the ``begin`` journal record stores and :func:`source_from_spec`
rebuilds.  A source that cannot be reconstructed (an already-consumed
stdin pipe) returns ``None`` and simply forfeits that last rung, which
the resume path reports as a typed
:class:`~repro.persist.durable.RecoveryError`.

Determinism is the load-bearing property: for a fixed construction,
``poll`` at the same sequence of simulated times returns the same
events, which is what makes crash recovery by re-execution — and the
chaos suite's faulted-vs-twin differential — exact.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Tuple

from repro.scenarios.scenario import EventSpec
from repro.sim.eventqueue import (
    Arrival,
    BandwidthCrunch,
    Event,
    Retirement,
    TrafficSurge,
)


class EventSource:
    """Base contract: poll-driven, exhaustible, optionally rebuildable."""

    def poll(self, now_s: float) -> List[Tuple[float, Event]]:
        """Every ``(due_s, event)`` due at or before ``now_s``, in order."""
        raise NotImplementedError

    @property
    def exhausted(self) -> bool:
        """True once no future ``poll`` can return anything."""
        raise NotImplementedError

    def spec(self) -> Optional[Dict[str, Any]]:
        """Declarative rebuild recipe, or None when not reconstructible."""
        return None


class ScriptedSource(EventSource):
    """A fixed, pre-timed feed — the scenario-style deterministic source.

    Build directly from ``(due_s, event)`` pairs (not reconstructible —
    runtime events carry no spec) or from declarative
    :class:`~repro.scenarios.scenario.EventSpec` entries via
    :meth:`from_specs`, which keeps the spec list for cold rebuilds.
    """

    def __init__(
        self,
        events: Iterable[Tuple[float, Event]],
        _specs: Optional[Tuple[Dict[str, Any], ...]] = None,
        _round_seconds: Optional[float] = None,
    ) -> None:
        self._buffer = sorted(events, key=lambda pair: pair[0])
        self._specs = _specs
        self._round_seconds = _round_seconds

    @classmethod
    def from_specs(
        cls, specs: Sequence[EventSpec], round_seconds: float
    ) -> "ScriptedSource":
        events = [
            (spec.at_round * round_seconds, spec.build(round_seconds))
            for spec in specs
        ]
        return cls(
            events,
            _specs=tuple(asdict(spec) for spec in specs),
            _round_seconds=float(round_seconds),
        )

    def poll(self, now_s: float) -> List[Tuple[float, Event]]:
        due = []
        while self._buffer and self._buffer[0][0] <= now_s:
            due.append(self._buffer.pop(0))
        return due

    @property
    def exhausted(self) -> bool:
        return not self._buffer

    def spec(self) -> Optional[Dict[str, Any]]:
        if self._specs is None:
            return None
        return {"kind": "scripted", "specs": [dict(s) for s in self._specs]}


class PoissonSource(EventSource):
    """Seeded open-loop traffic: exponential inter-arrivals, mixed kinds.

    ``rate_per_round`` events per token round on average, over a horizon
    of ``horizon_rounds`` rounds; the mix weights pick between tenant
    arrivals, retirements, rate-only traffic surges and bandwidth-budget
    crunches.  Everything is drawn from one ``random.Random(seed)``
    advanced only by ``poll``, so the stream is a pure function of the
    construction parameters — and the whole generator (RNG state
    included) pickles into snapshots mid-stream.
    """

    DEFAULT_MIX = {"arrival": 3.0, "retirement": 2.0, "surge": 4.0, "crunch": 1.0}

    def __init__(
        self,
        rate_per_round: float,
        round_seconds: float,
        horizon_rounds: float,
        seed: int = 0,
        mix: Optional[Dict[str, float]] = None,
    ) -> None:
        if rate_per_round <= 0:
            raise ValueError(
                f"rate_per_round must be > 0, got {rate_per_round}"
            )
        if round_seconds <= 0:
            raise ValueError(f"round_seconds must be > 0, got {round_seconds}")
        self.rate_per_round = float(rate_per_round)
        self.round_seconds = float(round_seconds)
        self.horizon_rounds = float(horizon_rounds)
        self.seed = int(seed)
        self.mix = dict(mix or self.DEFAULT_MIX)
        unknown = set(self.mix) - set(self.DEFAULT_MIX)
        if unknown:
            raise ValueError(f"unknown mix kinds {sorted(unknown)}")
        self._rng = random.Random(self.seed)
        self._horizon_s = self.horizon_rounds * self.round_seconds
        self._rate_per_s = self.rate_per_round / self.round_seconds
        self._next_t = self._rng.expovariate(self._rate_per_s)

    def _draw_kind(self) -> str:
        kinds = sorted(self.mix)
        total = sum(self.mix[k] for k in kinds)
        roll = self._rng.random() * total
        for kind in kinds:
            roll -= self.mix[kind]
            if roll <= 0:
                return kind
        return kinds[-1]

    def _draw_event(self) -> Event:
        kind = self._draw_kind()
        rng = self._rng
        if kind == "arrival":
            return Arrival(rng.randint(1, 3), rate=rng.uniform(200.0, 800.0))
        if kind == "retirement":
            return Retirement(
                rng.randint(1, 2), pick=rng.choice(("newest", "coldest"))
            )
        if kind == "surge":
            return TrafficSurge(
                round(rng.uniform(1.05, 1.9), 3),
                top_pairs=rng.choice((4, 8)),
            )
        return BandwidthCrunch(
            round(rng.uniform(0.55, 0.9), 3),
            lift_after=self.round_seconds * rng.uniform(0.5, 1.5),
        )

    def poll(self, now_s: float) -> List[Tuple[float, Event]]:
        due = []
        while self._next_t <= min(now_s, self._horizon_s):
            due.append((self._next_t, self._draw_event()))
            self._next_t += self._rng.expovariate(self._rate_per_s)
        return due

    @property
    def exhausted(self) -> bool:
        return self._next_t > self._horizon_s

    def spec(self) -> Optional[Dict[str, Any]]:
        return {
            "kind": "poisson",
            "rate_per_round": self.rate_per_round,
            "round_seconds": self.round_seconds,
            "horizon_rounds": self.horizon_rounds,
            "seed": self.seed,
            "mix": dict(self.mix),
        }


class JsonLinesSource(EventSource):
    """Newline-JSON events from a file-like stream (a file, a pipe, stdin).

    Each line is one object with a time field — ``at_s`` in simulated
    seconds or ``at_round`` in round units — plus the
    :class:`~repro.scenarios.scenario.EventSpec` fields (``kind`` and
    its parameters).  The stream is read eagerly at construction, so a
    consumed pipe is fully captured in the first snapshot; only the
    cold-rebuild rung is forfeited (``spec()`` is None — stdin cannot
    be replayed).  Blank lines and ``#`` comments are skipped; a
    malformed line raises immediately with its line number, before the
    daemon starts.
    """

    def __init__(self, stream: IO[str], round_seconds: float) -> None:
        round_seconds = float(round_seconds)
        events: List[Tuple[float, Event]] = []
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {lineno}: bad JSON ({exc})") from exc
            if not isinstance(obj, dict):
                raise ValueError(f"line {lineno}: expected an object")
            try:
                if "at_s" in obj:
                    at_round = float(obj.pop("at_s")) / round_seconds
                else:
                    at_round = float(obj.pop("at_round"))
                spec = EventSpec(
                    **{
                        **obj,
                        "at_round": at_round,
                        "vm_ids": tuple(obj.get("vm_ids", ())),
                        "racks": tuple(obj.get("racks", ())),
                        "pods": tuple(obj.get("pods", ())),
                        "hosts": tuple(obj.get("hosts", ())),
                    }
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"line {lineno}: {exc}") from exc
            events.append(
                (spec.at_round * round_seconds, spec.build(round_seconds))
            )
        self._inner = ScriptedSource(events)

    def poll(self, now_s: float) -> List[Tuple[float, Event]]:
        return self._inner.poll(now_s)

    @property
    def exhausted(self) -> bool:
        return self._inner.exhausted


class CompositeSource(EventSource):
    """Several sources polled as one (e.g. Poisson load + a scripted burst)."""

    def __init__(self, parts: Sequence[EventSource]) -> None:
        if not parts:
            raise ValueError("CompositeSource needs at least one part")
        self.parts = list(parts)

    def poll(self, now_s: float) -> List[Tuple[float, Event]]:
        due: List[Tuple[float, Event]] = []
        for part in self.parts:
            due.extend(part.poll(now_s))
        due.sort(key=lambda pair: pair[0])
        return due

    @property
    def exhausted(self) -> bool:
        return all(part.exhausted for part in self.parts)

    def spec(self) -> Optional[Dict[str, Any]]:
        specs = [part.spec() for part in self.parts]
        if any(s is None for s in specs):
            return None
        return {"kind": "composite", "parts": specs}


def source_from_spec(
    spec: Dict[str, Any], round_seconds: float
) -> EventSource:
    """Rebuild a source from its :meth:`EventSource.spec` dict.

    The cold-rebuild rung of service recovery: the ``begin`` journal
    record stores this dict, and a directory with no usable snapshot
    reconstructs the exact same stream from it.
    """
    kind = spec.get("kind")
    if kind == "scripted":
        return ScriptedSource.from_specs(
            [
                EventSpec(
                    **{
                        **entry,
                        "vm_ids": tuple(entry.get("vm_ids", ())),
                        "racks": tuple(entry.get("racks", ())),
                        "pods": tuple(entry.get("pods", ())),
                        "hosts": tuple(entry.get("hosts", ())),
                    }
                )
                for entry in spec["specs"]
            ],
            round_seconds,
        )
    if kind == "poisson":
        return PoissonSource(
            rate_per_round=spec["rate_per_round"],
            round_seconds=spec.get("round_seconds", round_seconds),
            horizon_rounds=spec["horizon_rounds"],
            seed=spec.get("seed", 0),
            mix=spec.get("mix"),
        )
    if kind == "composite":
        return CompositeSource(
            [source_from_spec(part, round_seconds) for part in spec["parts"]]
        )
    raise ValueError(f"unknown source spec kind {kind!r}")
