"""Non-adaptive reference points.

``no_migration_cost`` is the cost of leaving the initial allocation alone
(the denominator-free baseline every adaptive scheme must beat), and
``random_shuffle_cost`` estimates the expected cost of traffic-agnostic
placement by averaging over random feasible re-placements — the "VMs are
initially allocated at random" regime the paper starts from (§III).
"""

from __future__ import annotations

from typing import List

from repro.cluster.allocation import Allocation
from repro.cluster.placement import place_random
from repro.core.cost import CostModel
from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import SeedLike, make_rng


def no_migration_cost(
    allocation: Allocation, traffic: TrafficMatrix, cost_model: CostModel
) -> float:
    """Cost of the allocation as-is (the static, traffic-agnostic baseline)."""
    return cost_model.total_cost(allocation, traffic)


def random_shuffle_cost(
    allocation: Allocation,
    traffic: TrafficMatrix,
    cost_model: CostModel,
    samples: int = 10,
    seed: SeedLike = None,
) -> float:
    """Mean cost over ``samples`` random feasible re-placements of all VMs.

    Useful as the "expected cost of traffic-agnostic placement" reference:
    S-CORE's reduction is usually reported against the *initial* allocation,
    but a randomized average is a fairer anchor when the initial allocation
    is adversarial.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rng = make_rng(seed)
    vms = sorted(allocation.vms(), key=lambda vm: vm.vm_id)
    costs: List[float] = []
    for _ in range(samples):
        shuffled = place_random(
            allocation.cluster, vms, seed=int(rng.integers(0, 2**63 - 1))
        )
        costs.append(cost_model.total_cost(shuffled, traffic))
    return sum(costs) / len(costs)
