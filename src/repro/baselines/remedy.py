"""Reimplementation of Remedy (Mann et al., Networking 2012; paper §VI-B).

Remedy is the centralized, network-aware steady-state VM manager the paper
compares against.  Its defining behaviours, per its own paper and the
S-CORE paper's description:

* an OpenFlow-style controller monitors **link utilization globally**;
* when a link exceeds a congestion threshold, it ranks the VMs sending
  traffic over it by "network cost of migrating and temporal VM traffic
  load": migration cost is the estimated number of migrated bytes as a
  function of RAM size and page dirty rate;
* it migrates the best-ranked VM to the target that best **balances**
  utilization (most residual capacity), *not* to the target that localizes
  traffic — which is why it barely reduces the S-CORE communication cost
  (Fig. 4b) while modestly flattening link utilization (Fig. 4a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel
from repro.sim.network import LinkLoadCalculator
from repro.topology.base import host_node, tor_node
from repro.topology.links import canonical_link_id
from repro.traffic.matrix import TrafficMatrix
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class RemedyConfig:
    """Remedy controller parameters.

    Attributes
    ----------
    utilization_threshold:
        A link above this fraction of capacity is congested.
    dirty_rate_mbps:
        Assumed guest page-dirty rate; drives the migrated-bytes estimate
        ``ram * (1 + dirty_overhead)`` of Remedy's cost model.
    min_benefit_bytes_per_mb:
        A migration is worthwhile only if it moves at least this many
        bytes/second off congested links per MB of migration traffic —
        Remedy's cost-of-migration vs. benefit ranking.
    max_rounds:
        Upper bound on controller iterations.
    candidate_sample:
        How many least-loaded hosts are probed as targets per migration.
    """

    utilization_threshold: float = 0.7
    dirty_rate_mbps: float = 20.0
    min_benefit_bytes_per_mb: float = 0.0
    max_rounds: int = 50
    candidate_sample: int = 16

    def __post_init__(self) -> None:
        check_probability("utilization_threshold", self.utilization_threshold)
        check_positive("dirty_rate_mbps", self.dirty_rate_mbps)
        if self.min_benefit_bytes_per_mb < 0:
            raise ValueError(
                f"min_benefit_bytes_per_mb must be >= 0, got "
                f"{self.min_benefit_bytes_per_mb}"
            )
        check_positive("max_rounds", self.max_rounds)
        check_positive("candidate_sample", self.candidate_sample)


@dataclass
class RemedyReport:
    """Record of one Remedy run."""

    initial_cost: float
    final_cost: float
    initial_max_utilization: float
    final_max_utilization: float
    migrations: List[Tuple[int, int, int]] = field(default_factory=list)
    cost_series: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def n_migrations(self) -> int:
        """Number of migrations the controller performed."""
        return len(self.migrations)

    @property
    def cost_reduction(self) -> float:
        """Fractional communication-cost reduction (usually small: Fig. 4b)."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


class RemedyController:
    """Centralized link-utilization balancer."""

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
        config: RemedyConfig = RemedyConfig(),
        round_interval_s: float = 10.0,
    ) -> None:
        check_positive("round_interval_s", round_interval_s)
        self._allocation = allocation
        self._traffic = traffic
        self._cost_model = cost_model
        self._config = config
        self._interval = round_interval_s
        self._calculator = LinkLoadCalculator(cost_model.topology)

    @property
    def allocation(self) -> Allocation:
        """The allocation the controller mutates."""
        return self._allocation

    def migration_bytes_mb(self, vm_id: int) -> float:
        """Remedy's migration-cost model: RAM inflated by the dirty rate.

        Estimated migrated bytes grow with the page-dirty rate relative to
        the transfer rate; a fixed 1 Gb/s (125 MB/s) migration channel is
        assumed, matching the testbed.
        """
        ram_mb = self._allocation.vm(vm_id).ram_mb
        transfer_mbps = 125.0
        overhead = self._config.dirty_rate_mbps / transfer_mbps
        return ram_mb * (1.0 + overhead)

    def run(self) -> RemedyReport:
        """Iterate: find the hottest congested link, offload its top VM."""
        allocation = self._allocation
        traffic = self._traffic
        calc = self._calculator
        cost = self._cost_model.total_cost(allocation, traffic)
        report = RemedyReport(
            initial_cost=cost,
            final_cost=cost,
            initial_max_utilization=calc.max_utilization(allocation, traffic),
            final_max_utilization=0.0,
        )
        clock = 0.0
        report.cost_series.append((clock, cost))
        for _round in range(self._config.max_rounds):
            clock += self._interval
            moved = self._one_round()
            cost = self._cost_model.total_cost(allocation, traffic)
            report.cost_series.append((clock, cost))
            if moved is None:
                break
            report.migrations.append(moved)
        report.final_cost = cost
        report.final_max_utilization = calc.max_utilization(allocation, traffic)
        return report

    # -- internals -------------------------------------------------------------

    def _one_round(self) -> Optional[Tuple[int, int, int]]:
        """One controller round; returns (vm, source, target) or None."""
        allocation, traffic = self._allocation, self._traffic
        utils = self._calculator.utilizations(allocation, traffic)
        congested = [
            (value, link_id)
            for link_id, value in utils.items()
            if value > self._config.utilization_threshold
        ]
        if not congested:
            return None
        congested.sort(reverse=True)
        # Rank the VMs of every congested link from ONE batched routing
        # pass instead of re-routing the whole matrix per link.
        rankings = self._calculator.vm_contributions_many(
            allocation, traffic, [link_id for _, link_id in congested]
        )
        for _value, link_id in congested:
            move = self._relieve_link(link_id, rankings[link_id])
            if move is not None:
                return move
        return None

    def _relieve_link(
        self, link_id, contributions: Dict[int, float]
    ) -> Optional[Tuple[int, int, int]]:
        allocation, traffic = self._allocation, self._traffic
        if not contributions:
            return None
        # Remedy's ranking: most benefit (traffic over the hot link) per MB
        # of migration traffic first.
        ranked = sorted(
            contributions.items(),
            key=lambda item: -(item[1] / self.migration_bytes_mb(item[0])),
        )
        before_max = self._calculator.max_utilization(allocation, traffic)
        for vm_id, load_over_link in ranked:
            benefit_floor = (
                self._config.min_benefit_bytes_per_mb
                * self.migration_bytes_mb(vm_id)
            )
            if load_over_link < benefit_floor:
                continue
            target = self._best_balancing_target(vm_id, before_max)
            if target is not None:
                source = allocation.server_of(vm_id)
                allocation.migrate(vm_id, target)
                return (vm_id, source, target)
        return None

    def _best_balancing_target(
        self, vm_id: int, before_max: float
    ) -> Optional[int]:
        """Feasible host whose adoption of the VM most lowers peak utilization.

        Candidates are the hosts with the least-loaded access links — a
        *balancing* criterion, deliberately not the locality criterion
        S-CORE uses.
        """
        allocation, traffic = self._allocation, self._traffic
        vm = allocation.vm(vm_id)
        source = allocation.server_of(vm_id)
        utils = self._calculator.utilizations(allocation, traffic)
        topo = self._cost_model.topology
        host_access_load = {}
        for host in topo.hosts:
            if host == source or not allocation.can_host(host, vm):
                continue
            # The host's single access link is (host, tor-of-host).
            link = canonical_link_id(
                host_node(host), tor_node(topo.rack_of(host))
            )
            host_access_load[host] = utils.get(link, 0.0)
        candidates = sorted(host_access_load, key=host_access_load.get)[
            : self._config.candidate_sample
        ]
        best_host = None
        best_peak = before_max
        for host in candidates:
            trial = allocation.copy()
            trial.migrate(vm_id, host)
            peak = self._calculator.max_utilization(trial, traffic)
            if peak < best_peak - 1e-12:
                best_peak = peak
                best_host = host
        return best_host
