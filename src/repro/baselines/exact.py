"""Exact optimal VM allocation by branch-and-bound (tiny instances only).

The paper proves OVMA is NP-complete (Appendix), so exhaustive search is
hopeless at DC scale — but on instances of a dozen VMs it is tractable and
gives the *true* optimum.  The test suite uses it to sandwich the other
components: ``exact <= GA <= S-CORE-final <= initial`` must always hold,
which catches both a broken GA (worse than local search should be) and a
broken S-CORE (migrating above the provable floor).

Search: VMs are placed one by one (heaviest total traffic first — fails
fast); the running cost counts each pair as soon as both endpoints are
placed, which is an admissible lower bound because pair costs are
non-negative.  Symmetric branches are pruned by never opening more than
one *fresh* (so-far-empty) host per level of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel
from repro.traffic.matrix import TrafficMatrix

#: Refuse instances bigger than this — the point is exactness, not scale.
MAX_VMS = 12
MAX_HOSTS = 12


@dataclass
class ExactResult:
    """The provably optimal allocation of a tiny instance."""

    best_mapping: Dict[int, int]
    best_cost: float
    nodes_explored: int


class ExactOptimizer:
    """Branch-and-bound solver for the Optimal VM Allocation problem."""

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> None:
        n_vms = allocation.n_vms
        n_hosts = allocation.cluster.n_servers
        if n_vms > MAX_VMS:
            raise ValueError(
                f"exact search is limited to {MAX_VMS} VMs, got {n_vms}"
            )
        if n_hosts > MAX_HOSTS:
            raise ValueError(
                f"exact search is limited to {MAX_HOSTS} hosts, got {n_hosts}"
            )
        self._allocation = allocation
        self._traffic = traffic
        self._model = cost_model
        topo = cost_model.topology
        self._path_weight = [
            cost_model.weights.path_weight(level)
            for level in range(topo.max_level + 1)
        ]
        self._topology = topo
        # Order VMs by descending total traffic so heavy edges bind early.
        self._vm_ids: List[int] = sorted(
            allocation.vm_ids(), key=lambda v: -traffic.vm_load(v)
        )
        self._slots = [
            allocation.cluster.server(h).capacity.max_vms
            for h in range(n_hosts)
        ]
        # Adjacency among *earlier-placed* VMs only.
        index = {vm: i for i, vm in enumerate(self._vm_ids)}
        self._earlier_peers: List[List[Tuple[int, float]]] = [
            [] for _ in self._vm_ids
        ]
        for u, v, rate in traffic.pairs():
            if u in index and v in index:
                i, j = index[u], index[v]
                later, earlier = (i, j) if i > j else (j, i)
                self._earlier_peers[later].append((earlier, rate))

    def run(self) -> ExactResult:
        """Exhaustively find the minimum-cost feasible allocation."""
        n_hosts = len(self._slots)
        placement: List[int] = [-1] * len(self._vm_ids)
        used = [0] * n_hosts
        best = {
            "cost": float("inf"),
            "placement": None,
            "nodes": 0,
        }

        def recurse(position: int, cost_so_far: float) -> None:
            best["nodes"] += 1
            if cost_so_far >= best["cost"]:
                return
            if position == len(self._vm_ids):
                best["cost"] = cost_so_far
                best["placement"] = list(placement)
                return
            # Two still-empty hosts in the same rack (with equal slots) are
            # interchangeable: only branch on the first of each such class.
            tried_fresh: List[int] = []
            for host in range(n_hosts):
                if used[host] >= self._slots[host]:
                    continue
                fresh = used[host] == 0
                if fresh:
                    if self._same_shape_fresh_tried(host, tried_fresh):
                        continue
                    tried_fresh.append(host)
                added = 0.0
                for earlier, rate in self._earlier_peers[position]:
                    level = self._topology.level_between(
                        host, placement[earlier]
                    )
                    added += rate * self._path_weight[level]
                used[host] += 1
                placement[position] = host
                recurse(position + 1, cost_so_far + added)
                used[host] -= 1
                placement[position] = -1

        recurse(0, 0.0)
        assert best["placement"] is not None
        mapping = {
            vm_id: best["placement"][i] for i, vm_id in enumerate(self._vm_ids)
        }
        return ExactResult(
            best_mapping=mapping,
            best_cost=best["cost"],
            nodes_explored=best["nodes"],
        )

    def _same_shape_fresh_tried(self, host: int, tried: List[int]) -> bool:
        """Whether an interchangeable fresh host was already branched on."""
        topo = self._topology
        for other in tried:
            if (
                topo.rack_of(other) == topo.rack_of(host)
                and self._slots[other] == self._slots[host]
            ):
                return True
        return False
