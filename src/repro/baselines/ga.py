"""Centralized GA approximation of the optimal allocation (paper §VI-A).

"The GA starts with a population of 1,000 individuals representing
densely-packed VM distributions … The crossover operator has been
implemented using edge assembly crossover (EAX), and the replacement of
individuals is based on tournament selection.  Mutation happens by swapping
a random number of VMs between racks.  The GA stops when there is no
significant improvement in communication cost reduction (< 1%) in 10
consecutive generations."

Implementation notes
--------------------
* An individual is a host-assignment vector (one host index per VM).
* Fitness (communication cost, Eq. 2) is evaluated fully vectorized with
  numpy over the traffic pair arrays, so large populations are affordable.
* The EAX-style crossover assembles children from the parents' *co-location
  structure*: for each connected component of the traffic graph (a "service"
  whose internal edges are what the allocation should keep local), the child
  inherits the whole component's placement from one parent.  This preserves
  the parents' locality building blocks the same way EAX preserves tour
  edges, followed by a capacity repair pass.
* Capacity uses the slot limit only, matching the paper's GP reduction
  where all VMs have vertex weight 1 (uniform size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel
from repro.core.fastcost import (
    TrafficSnapshot,
    assignment_cost,
    path_weight_table,
)
from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class GAConfig:
    """Genetic-algorithm hyper-parameters.

    Defaults are scaled down from the paper's 1,000-individual / 12-hour
    run to laptop budgets; :meth:`paper_scale` restores the published
    values.
    """

    population_size: int = 100
    tournament_k: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    max_mutation_swaps: int = 4
    improvement_threshold: float = 0.01
    patience: int = 10
    max_generations: int = 150
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive("population_size", self.population_size)
        if self.tournament_k < 2:
            raise ValueError(f"tournament_k must be >= 2, got {self.tournament_k}")
        check_probability("crossover_rate", self.crossover_rate)
        check_probability("mutation_rate", self.mutation_rate)
        check_positive("max_mutation_swaps", self.max_mutation_swaps)
        check_positive("improvement_threshold", self.improvement_threshold)
        check_positive("patience", self.patience)
        check_positive("max_generations", self.max_generations)

    @classmethod
    def paper_scale(cls, seed: Optional[int] = None) -> "GAConfig":
        """The paper's configuration (population 1,000; <1% over 10 gens)."""
        return cls(population_size=1000, max_generations=10_000, seed=seed)


@dataclass
class GAResult:
    """Outcome of a GA run."""

    best_mapping: Dict[int, int]
    best_cost: float
    initial_cost: float
    generations: int
    history: List[float] = field(default_factory=list)

    @property
    def cost_reduction(self) -> float:
        """Fractional improvement over the starting allocation."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.best_cost / self.initial_cost


class GeneticOptimizer:
    """Approximates the optimal allocation by heuristic global search."""

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
        config: GAConfig = GAConfig(),
    ) -> None:
        self._allocation = allocation
        self._traffic = traffic
        self._cost_model = cost_model
        self._config = config
        self._rng = make_rng(config.seed)
        self._topology = cost_model.topology

        # Index spaces: VM ids -> dense indices; hosts are already dense.
        self._vm_ids: List[int] = sorted(allocation.vm_ids())
        self._vm_index = {vm_id: i for i, vm_id in enumerate(self._vm_ids)}
        self._n_vms = len(self._vm_ids)
        self._n_hosts = allocation.cluster.n_servers

        # Shared vectorized cost machinery (repro.core.fastcost): the CSR
        # traffic snapshot, the cached per-host rack/pod vectors and the
        # path-weight table replace the GA's former private pair arrays.
        topo = self._topology
        self._rack_of = topo.host_rack_ids()
        self._pod_of = topo.host_pod_ids()
        self._snapshot = TrafficSnapshot.build(traffic, self._vm_ids)
        self._pair_u = self._snapshot.pair_u
        self._pair_v = self._snapshot.pair_v
        self._pair_rate = self._snapshot.pair_rate
        self._path_weight = path_weight_table(
            cost_model.weights, topo.max_level
        )
        self._slots = np.array(
            [
                allocation.cluster.server(h).capacity.max_vms
                for h in range(self._n_hosts)
            ],
            dtype=np.int64,
        )
        self._components = self._traffic_components()
        # Per-VM adjacency (peer index, rate) for the greedy polish pass.
        self._adjacency: List[List[Tuple[int, float]]] = [
            [] for _ in range(self._n_vms)
        ]
        for u, v, rate in zip(self._pair_u, self._pair_v, self._pair_rate):
            self._adjacency[int(u)].append((int(v), float(rate)))
            self._adjacency[int(v)].append((int(u), float(rate)))
        self._rack_hosts = [
            np.array(list(topo.hosts_in_rack(r)), dtype=np.int64)
            for r in range(topo.n_racks)
        ]

    # -- fitness ---------------------------------------------------------------

    def cost_of(self, assignment: np.ndarray) -> float:
        """Eq. (2) cost of a host-assignment vector (vectorized)."""
        return assignment_cost(
            assignment,
            self._snapshot,
            self._rack_of,
            self._pod_of,
            self._path_weight,
        )

    def is_feasible(self, assignment: np.ndarray) -> bool:
        """Slot-capacity feasibility of an assignment vector."""
        counts = np.bincount(assignment, minlength=self._n_hosts)
        return bool(np.all(counts <= self._slots))

    # -- search -------------------------------------------------------------------

    def run(self) -> GAResult:
        """Run the GA until the paper's stopping rule triggers."""
        config = self._config
        population = self._initial_population()
        costs = np.array([self.cost_of(ind) for ind in population])
        initial_assignment = self._assignment_from_allocation()
        initial_cost = self.cost_of(initial_assignment)

        history = [float(costs.min())]
        best_cost = float(costs.min())
        best = population[int(costs.argmin())].copy()
        stall = 0
        generation = 0
        for generation in range(1, config.max_generations + 1):
            population, costs = self._step(population, costs)
            generation_best = float(costs.min())
            if generation_best < best_cost:
                best = population[int(costs.argmin())].copy()
            # Paper stop rule: < threshold relative improvement for
            # `patience` consecutive generations.
            if best_cost - generation_best < config.improvement_threshold * max(
                best_cost, 1e-12
            ):
                stall += 1
            else:
                stall = 0
            best_cost = min(best_cost, generation_best)
            history.append(best_cost)
            if stall >= config.patience:
                break

        # Memetic finish: greedy local refinement of the champion (the GA's
        # global search finds the right clusters; the polish snaps each VM
        # to its locally best host, mirroring a converged local search).
        self._greedy_polish(best, max_passes=10)
        best_cost = min(best_cost, self.cost_of(best))
        history.append(best_cost)

        mapping = {
            self._vm_ids[i]: int(best[i]) for i in range(self._n_vms)
        }
        return GAResult(
            best_mapping=mapping,
            best_cost=best_cost,
            initial_cost=initial_cost,
            generations=generation,
            history=history,
        )

    # -- GA internals -----------------------------------------------------------------

    def _assignment_from_allocation(self) -> np.ndarray:
        return np.array(
            [self._allocation.server_of(vm_id) for vm_id in self._vm_ids],
            dtype=np.int64,
        )

    def _initial_population(self) -> List[np.ndarray]:
        """Densely-packed individuals (paper §VI-A) + the current allocation.

        Half the seeds pack VMs *by traffic component* (communicating
        services land on consecutive hosts — strong locality building
        blocks), half pack a random VM order (diversity).
        """
        population: List[np.ndarray] = [self._assignment_from_allocation()]
        # A locally-refined copy of the current allocation and of one
        # clustered packing give the search strong anchors (memetic seeding).
        polished_current = self._assignment_from_allocation()
        self._greedy_polish(polished_current, max_passes=10)
        population.append(polished_current)
        polished_packed = self._component_packed_assignment()
        self._greedy_polish(polished_packed, max_passes=10)
        population.append(polished_packed)
        while len(population) < self._config.population_size:
            if len(population) % 2 == 0:
                population.append(self._random_packed_assignment())
            else:
                population.append(self._component_packed_assignment())
        return population[: self._config.population_size]

    def _component_packed_assignment(self) -> np.ndarray:
        """Pack whole traffic components onto consecutive hosts."""
        rng = self._rng
        assignment = np.empty(self._n_vms, dtype=np.int64)
        components = list(self._components)
        rng.shuffle(components)
        host = int(rng.integers(0, self._n_hosts))
        free = int(self._slots[host])
        for component in components:
            members = component.copy()
            rng.shuffle(members)
            for vm in members:
                while free == 0:
                    host = (host + 1) % self._n_hosts
                    free = int(self._slots[host])
                assignment[vm] = host
                free -= 1
        return assignment

    def _random_packed_assignment(self) -> np.ndarray:
        """Pack VMs (in random order) onto hosts starting at a random offset.

        Keeps each individual dense — VMs fill consecutive hosts — which is
        the paper's seeding strategy and a strong starting point for
        locality.
        """
        rng = self._rng
        order = rng.permutation(self._n_vms)
        assignment = np.empty(self._n_vms, dtype=np.int64)
        host = int(rng.integers(0, self._n_hosts))
        free = int(self._slots[host])
        for vm in order:
            while free == 0:
                host = (host + 1) % self._n_hosts
                free = int(self._slots[host])
            assignment[vm] = host
            free -= 1
        return assignment

    def _traffic_components(self) -> List[np.ndarray]:
        """Connected components of the traffic graph, as VM-index arrays."""
        parent = list(range(self._n_vms))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in zip(self._pair_u, self._pair_v):
            ru, rv = find(int(u)), find(int(v))
            if ru != rv:
                parent[ru] = rv
        groups: Dict[int, List[int]] = {}
        for i in range(self._n_vms):
            groups.setdefault(find(i), []).append(i)
        return [np.array(members, dtype=np.int64) for members in groups.values()]

    def _crossover(self, parent_a: np.ndarray, parent_b: np.ndarray) -> np.ndarray:
        """EAX-style: inherit whole traffic components from either parent."""
        child = parent_a.copy()
        for component in self._components:
            if self._rng.random() < 0.5:
                child[component] = parent_b[component]
        self._repair(child)
        return child

    def _mutate(self, individual: np.ndarray) -> None:
        """Swap a random number of VMs between racks (paper §VI-A)."""
        n_swaps = int(self._rng.integers(1, self._config.max_mutation_swaps + 1))
        for _ in range(n_swaps):
            i, j = self._rng.integers(0, self._n_vms, size=2)
            individual[i], individual[j] = individual[j], individual[i]

    def _repair(self, assignment: np.ndarray) -> None:
        """Move VMs off over-capacity hosts to the nearest free host."""
        counts = np.bincount(assignment, minlength=self._n_hosts)
        over = np.where(counts > self._slots)[0]
        if over.size == 0:
            return
        free_hosts = list(np.where(counts < self._slots)[0])
        for host in over:
            excess = int(counts[host] - self._slots[host])
            victims = np.where(assignment == host)[0][:excess]
            for vm in victims:
                # Prefer a host in the same rack, then same pod, then any.
                target = self._pick_repair_host(host, counts)
                assignment[vm] = target
                counts[host] -= 1
                counts[target] += 1

    def _pick_repair_host(self, host: int, counts: np.ndarray) -> int:
        free = counts < self._slots
        same_rack = free & (self._rack_of == self._rack_of[host])
        if np.any(same_rack):
            return int(np.where(same_rack)[0][0])
        same_pod = free & (self._pod_of == self._pod_of[host])
        if np.any(same_pod):
            return int(np.where(same_pod)[0][0])
        return int(np.where(free)[0][0])

    def _host_level(self, host_a: int, host_b: int) -> int:
        if host_a == host_b:
            return 0
        if self._rack_of[host_a] == self._rack_of[host_b]:
            return 1
        if self._pod_of[host_a] == self._pod_of[host_b]:
            return 2
        return 3

    def _greedy_polish(self, assignment: np.ndarray, max_passes: int = 3) -> None:
        """Move each VM to its best feasible host near its peers, to fixpoint."""
        counts = np.bincount(assignment, minlength=self._n_hosts)
        pw = self._path_weight
        for _pass in range(max_passes):
            improved = False
            for vm in self._rng.permutation(self._n_vms):
                neighbors = self._adjacency[vm]
                if not neighbors:
                    continue
                current = int(assignment[vm])

                def placement_cost(host: int) -> float:
                    return sum(
                        rate * pw[self._host_level(host, int(assignment[p]))]
                        for p, rate in neighbors
                    )

                best_host, best_val = current, placement_cost(current)
                candidates: set = set()
                for p, _rate in neighbors:
                    peer_host = int(assignment[p])
                    candidates.add(peer_host)
                    candidates.update(
                        int(h) for h in self._rack_hosts[self._rack_of[peer_host]]
                    )
                candidates.discard(current)
                for host in candidates:
                    if counts[host] >= self._slots[host]:
                        continue
                    value = placement_cost(host)
                    if value < best_val - 1e-12:
                        best_val, best_host = value, host
                if best_host != current:
                    counts[current] -= 1
                    counts[best_host] += 1
                    assignment[vm] = best_host
                    improved = True
            if not improved:
                break

    def _tournament(self, costs: np.ndarray) -> int:
        """Index of the tournament winner (lowest cost)."""
        contenders = self._rng.integers(
            0, len(costs), size=self._config.tournament_k
        )
        return int(contenders[np.argmin(costs[contenders])])

    def _step(
        self, population: List[np.ndarray], costs: np.ndarray
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """One steady-state generation: breed offspring, replace losers."""
        config = self._config
        n_offspring = max(1, len(population) // 2)
        offspring: List[np.ndarray] = []
        for _ in range(n_offspring):
            a = self._tournament(costs)
            if self._rng.random() < config.crossover_rate:
                b = self._tournament(costs)
                child = self._crossover(population[a], population[b])
            else:
                child = population[a].copy()
            if self._rng.random() < config.mutation_rate:
                self._mutate(child)
                self._repair(child)
            offspring.append(child)
        offspring_costs = np.array([self.cost_of(ind) for ind in offspring])
        # Replacement by reverse tournament: offspring replace the losers
        # of tournaments over the current population.
        for child, child_cost in zip(offspring, offspring_costs):
            contenders = self._rng.integers(
                0, len(population), size=config.tournament_k
            )
            loser = int(contenders[np.argmax(costs[contenders])])
            if child_cost < costs[loser]:
                population[loser] = child
                costs[loser] = child_cost
        return population, costs
