"""Centralized GA approximation of the optimal allocation (paper §VI-A).

"The GA starts with a population of 1,000 individuals representing
densely-packed VM distributions … The crossover operator has been
implemented using edge assembly crossover (EAX), and the replacement of
individuals is based on tournament selection.  Mutation happens by swapping
a random number of VMs between racks.  The GA stops when there is no
significant improvement in communication cost reduction (< 1%) in 10
consecutive generations."

Implementation notes
--------------------
* An individual is a host-assignment vector (one host index per VM); the
  population lives as ONE ``(pop, n_vms)`` int32 matrix so a whole
  generation — tournament selection, EAX-style crossover, capacity repair,
  swap mutation, Eq. 2 scoring and replacement — is numpy end-to-end with
  no per-individual python loop (``repro.core.fastcost`` population
  helpers).
* The EAX-style crossover assembles children from the parents' *co-location
  structure*: for each connected component of the traffic graph (a "service"
  whose internal edges are what the allocation should keep local), the child
  inherits the whole component's placement from one parent.  Batched, that
  is one coin matrix per generation expanded through the per-VM component-id
  vector into a boolean inheritance mask.
* Capacity uses the slot limit only, matching the paper's GP reduction
  where all VMs have vertex weight 1 (uniform size).
* The pre-batching per-individual generation survives as
  :meth:`GeneticOptimizer.step_reference` — the differential-test and
  benchmark reference the batched path is pinned against.  The batched
  engine draws its random numbers in matrix-shaped blocks, so the RNG
  stream necessarily differs from the per-individual reference; seeded runs
  remain exactly reproducible against themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel
from repro.core.fastcost import (
    TrafficSnapshot,
    apply_swap_mutations,
    assignment_cost,
    owner_host_rate_lookup,
    owner_host_rate_table,
    pair_levels,
    path_weight_table,
    population_cost,
    population_repair,
    tournament_select,
)
from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive, check_probability

#: Dtype of the population matrix; host indices comfortably fit 32 bits and
#: the paper-scale matrix (1,000 x ~35k VMs) halves to ~140 MB.
ASSIGNMENT_DTYPE = np.int32


@dataclass(frozen=True)
class GAConfig:
    """Genetic-algorithm hyper-parameters.

    Defaults are scaled down from the paper's 1,000-individual / 12-hour
    run to laptop budgets; :meth:`paper_scale` restores the published
    values.
    """

    population_size: int = 100
    tournament_k: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.3
    max_mutation_swaps: int = 4
    improvement_threshold: float = 0.01
    patience: int = 10
    max_generations: int = 150
    seed: Optional[int] = None
    #: Population-diversity early stop for full runs: when the relative
    #: fitness spread ``(max − min) / |mean|`` of the population falls
    #: below this, selection pressure is spent and the run ends without
    #: waiting out the <1%/patience window.  0 disables the check.
    diversity_stop: float = 1e-6

    def __post_init__(self) -> None:
        check_positive("population_size", self.population_size)
        if self.tournament_k < 2:
            raise ValueError(f"tournament_k must be >= 2, got {self.tournament_k}")
        check_probability("crossover_rate", self.crossover_rate)
        check_probability("mutation_rate", self.mutation_rate)
        check_positive("max_mutation_swaps", self.max_mutation_swaps)
        check_positive("improvement_threshold", self.improvement_threshold)
        check_positive("patience", self.patience)
        check_positive("max_generations", self.max_generations)
        if self.diversity_stop < 0:
            raise ValueError(
                f"diversity_stop must be >= 0, got {self.diversity_stop}"
            )

    @classmethod
    def paper_scale(cls, seed: Optional[int] = None) -> "GAConfig":
        """The paper's configuration (population 1,000; <1% over 10 gens)."""
        return cls(population_size=1000, max_generations=10_000, seed=seed)


@dataclass
class GAResult:
    """Outcome of a GA run."""

    best_mapping: Dict[int, int]
    best_cost: float
    initial_cost: float
    generations: int
    history: List[float] = field(default_factory=list)

    @property
    def cost_reduction(self) -> float:
        """Fractional improvement over the starting allocation."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.best_cost / self.initial_cost


class GeneticOptimizer:
    """Approximates the optimal allocation by heuristic global search."""

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
        config: GAConfig = GAConfig(),
    ) -> None:
        self._allocation = allocation
        self._traffic = traffic
        self._cost_model = cost_model
        self._config = config
        self._rng = make_rng(config.seed)
        self._topology = cost_model.topology

        # Index spaces: VM ids -> dense indices; hosts are already dense.
        self._vm_ids: List[int] = sorted(allocation.vm_ids())
        self._vm_index = {vm_id: i for i, vm_id in enumerate(self._vm_ids)}
        self._n_vms = len(self._vm_ids)
        self._n_hosts = allocation.cluster.n_servers

        # Shared vectorized cost machinery (repro.core.fastcost): the CSR
        # traffic snapshot, the cached per-host rack/pod vectors and the
        # path-weight table are all the scoring and repair passes need.
        topo = self._topology
        self._rack_of = topo.host_rack_ids()
        self._pod_of = topo.host_pod_ids()
        self._snapshot = TrafficSnapshot.build(traffic, self._vm_ids)
        self._pair_u = self._snapshot.pair_u
        self._pair_v = self._snapshot.pair_v
        self._pair_rate = self._snapshot.pair_rate
        self._path_weight = path_weight_table(
            cost_model.weights, topo.max_level
        )
        self._slots = allocation.cluster.capacity_arrays()[0]
        self._components = self._traffic_components()
        self._n_components = len(self._components)
        self._component_id = np.empty(self._n_vms, dtype=np.int64)
        for cid, members in enumerate(self._components):
            self._component_id[members] = cid
        # Slot sequence for dense packing: host h repeated slots[h] times,
        # with per-host start offsets for rotation to a random first host.
        self._slot_hosts = np.repeat(
            np.arange(self._n_hosts, dtype=ASSIGNMENT_DTYPE), self._slots
        )
        self._slot_offset = np.concatenate(
            [[0], np.cumsum(self._slots)[:-1]]
        )

    # -- fitness ---------------------------------------------------------------

    def cost_of(self, assignment: np.ndarray) -> float:
        """Eq. (2) cost of a host-assignment vector (vectorized).

        The per-individual reference the batched :meth:`population_costs`
        path is differentially tested against.
        """
        return assignment_cost(
            np.asarray(assignment, dtype=np.int64),
            self._snapshot,
            self._rack_of,
            self._pod_of,
            self._path_weight,
        )

    def population_costs(self, population: np.ndarray) -> np.ndarray:
        """Eq. (2) cost of every row of a ``(pop, n_vms)`` matrix."""
        return population_cost(
            population,
            self._snapshot,
            self._rack_of,
            self._pod_of,
            self._path_weight,
        )

    def is_feasible(self, assignment: np.ndarray) -> bool:
        """Slot-capacity feasibility of an assignment vector."""
        counts = np.bincount(assignment, minlength=self._n_hosts)
        return bool(np.all(counts <= self._slots))

    @staticmethod
    def population_diversity(costs: np.ndarray) -> float:
        """Relative fitness spread of the population: (max − min)/|mean|.

        Zero means every individual scores identically — replacement can
        no longer improve anything and full runs may stop early
        (``GAConfig.diversity_stop``).
        """
        mean = float(np.abs(costs).mean())
        if mean == 0.0:
            return 0.0
        return float(costs.max() - costs.min()) / mean

    # -- search -------------------------------------------------------------------

    def run(self) -> GAResult:
        """Run the GA until the paper's stopping rule triggers."""
        config = self._config
        population = self.initial_population()
        costs = self.population_costs(population)
        initial_assignment = self._assignment_from_allocation()
        initial_cost = self.cost_of(initial_assignment)

        history = [float(costs.min())]
        best_cost = float(costs.min())
        best = population[int(costs.argmin())].copy()
        stall = 0
        generation = 0
        for generation in range(1, config.max_generations + 1):
            self.step(population, costs)
            generation_best = float(costs.min())
            if generation_best < best_cost:
                best = population[int(costs.argmin())].copy()
            # Paper stop rule: < threshold relative improvement for
            # `patience` consecutive generations.
            if best_cost - generation_best < config.improvement_threshold * max(
                best_cost, 1e-12
            ):
                stall += 1
            else:
                stall = 0
            best_cost = min(best_cost, generation_best)
            history.append(best_cost)
            if stall >= config.patience:
                break
            if config.diversity_stop and self.population_diversity(
                costs
            ) < config.diversity_stop:
                break

        # Memetic finish: greedy local refinement of the champion (the GA's
        # global search finds the right clusters; the polish snaps each VM
        # to its locally best host, mirroring a converged local search).
        # The batched polish applies one pass of moves against a frozen
        # snapshot of the assignment, so interacting moves can in principle
        # regress; keep the polished copy only when it actually improves.
        polished = best.copy()
        self._greedy_polish(polished, max_passes=10)
        polished_cost = self.cost_of(polished)
        if polished_cost < best_cost:
            best, best_cost = polished, polished_cost
        history.append(best_cost)

        mapping = {
            self._vm_ids[i]: int(best[i]) for i in range(self._n_vms)
        }
        return GAResult(
            best_mapping=mapping,
            best_cost=best_cost,
            initial_cost=initial_cost,
            generations=generation,
            history=history,
        )

    # -- population construction -------------------------------------------------

    def _assignment_from_allocation(self) -> np.ndarray:
        return np.array(
            [self._allocation.server_of(vm_id) for vm_id in self._vm_ids],
            dtype=ASSIGNMENT_DTYPE,
        )

    def initial_population(self) -> np.ndarray:
        """Densely-packed individuals (paper §VI-A) + the current allocation.

        Returns the whole population as one ``(pop, n_vms)`` matrix.  Half
        the seeds pack VMs *by traffic component* (communicating services
        land on consecutive hosts — strong locality building blocks), half
        pack a random VM order (diversity); a locally-refined copy of the
        current allocation and of one clustered packing give the search
        strong anchors (memetic seeding).
        """
        pop = self._config.population_size
        population = np.empty((pop, self._n_vms), dtype=ASSIGNMENT_DTYPE)
        population[0] = self._assignment_from_allocation()
        filled = 1
        anchors = []
        if filled < pop:
            anchors.append(self._assignment_from_allocation())
            filled += 1
        if filled < pop:
            anchors.append(self._component_packed_assignment())
            filled += 1
        if anchors:
            # Memetic seeding: polish all anchor rows through one batched
            # multi-row sweep instead of one polish call per anchor.
            anchor_matrix = np.stack(anchors)
            self.polish_population(anchor_matrix, max_passes=10)
            population[1:filled] = anchor_matrix
        for i in range(filled, pop):
            if i % 2 == 0:
                population[i] = self._random_packed_assignment()
            else:
                population[i] = self._component_packed_assignment()
        return population

    def _packed_from_order(self, order: np.ndarray) -> np.ndarray:
        """Assign VMs (in ``order``) to consecutive slots from a random host.

        Keeps each individual dense — VMs fill consecutive hosts — which is
        the paper's seeding strategy and a strong starting point for
        locality.
        """
        start_host = int(self._rng.integers(0, self._n_hosts))
        sequence = np.roll(self._slot_hosts, -int(self._slot_offset[start_host]))
        assignment = np.empty(self._n_vms, dtype=ASSIGNMENT_DTYPE)
        assignment[order] = sequence[: self._n_vms]
        return assignment

    def _random_packed_assignment(self) -> np.ndarray:
        """Pack VMs (in random order) onto hosts starting at a random offset."""
        return self._packed_from_order(self._rng.permutation(self._n_vms))

    def _component_packed_assignment(self) -> np.ndarray:
        """Pack whole traffic components onto consecutive hosts.

        Random per-component and per-VM sort keys realize "shuffle the
        components, shuffle members within each" as one lexsort.
        """
        component_key = self._rng.random(self._n_components)
        vm_key = self._rng.random(self._n_vms)
        order = np.lexsort((vm_key, component_key[self._component_id]))
        return self._packed_from_order(order)

    def _traffic_components(self) -> List[np.ndarray]:
        """Connected components of the traffic graph, as VM-index arrays."""
        parent = list(range(self._n_vms))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in zip(self._pair_u, self._pair_v):
            ru, rv = find(int(u)), find(int(v))
            if ru != rv:
                parent[ru] = rv
        groups: Dict[int, List[int]] = {}
        for i in range(self._n_vms):
            groups.setdefault(find(i), []).append(i)
        return [np.array(members, dtype=np.int64) for members in groups.values()]

    # -- batched generation --------------------------------------------------------

    def step(self, population: np.ndarray, costs: np.ndarray) -> None:
        """One steady-state generation over the population matrix, in place.

        Breeds ``pop // 2`` offspring — tournament parents, component-mask
        crossover, batched capacity repair, swap mutation — scores them in
        one :func:`repro.core.fastcost.population_cost` pass, and replaces
        the losers of reverse tournaments.  Entirely numpy; the only python
        loops are over mutation swap slots (a small constant) and repair
        rounds (three).
        """
        config = self._config
        rng = self._rng
        pop = population.shape[0]
        n_offspring = max(1, pop // 2)
        k = config.tournament_k

        parent_a = tournament_select(
            costs, rng.integers(0, pop, size=(n_offspring, k))
        )
        children = population[parent_a].copy()

        # EAX-style crossover: each crossing child inherits whole traffic
        # components from a second tournament parent under a fair coin.
        crossing = np.nonzero(rng.random(n_offspring) < config.crossover_rate)[0]
        if crossing.size:
            parent_b = tournament_select(
                costs, rng.integers(0, pop, size=(crossing.size, k))
            )
            coin = rng.random((crossing.size, self._n_components)) < 0.5
            take_b = coin[:, self._component_id]
            mixed = np.where(take_b, population[parent_b], children[crossing])
            population_repair(mixed, self._slots, self._rack_of, self._pod_of)
            children[crossing] = mixed

        # Swap mutation (§VI-A).  Swaps permute a row, so per-host counts —
        # and hence feasibility — are untouched: no repair needed after.
        mutating = np.nonzero(rng.random(n_offspring) < config.mutation_rate)[0]
        if mutating.size:
            max_swaps = config.max_mutation_swaps
            n_swaps = rng.integers(1, max_swaps + 1, size=mutating.size)
            swap_pairs = rng.integers(
                0, self._n_vms, size=(mutating.size, max_swaps, 2)
            )
            apply_swap_mutations(children, mutating, swap_pairs, n_swaps)

        # Untouched children are verbatim parent copies: inherit the parent
        # cost and score only the rows crossover or mutation actually moved.
        child_costs = costs[parent_a].copy()
        touched = np.union1d(crossing, mutating)
        if touched.size:
            child_costs[touched] = self.population_costs(children[touched])

        # Replacement by reverse tournament: each child challenges the loser
        # of a tournament over the current population.  Children contending
        # for the same slot are resolved best-first (deterministically), so
        # the batched outcome matches applying the replacements one by one
        # with the strongest claim winning.
        losers = tournament_select(
            costs, rng.integers(0, pop, size=(n_offspring, k)), worst=True
        )
        order = np.lexsort((child_costs, losers))
        losers_sorted = losers[order]
        first_per_slot = np.concatenate(
            [[True], losers_sorted[1:] != losers_sorted[:-1]]
        )
        chosen = order[first_per_slot]
        slots_challenged = losers[chosen]
        better = child_costs[chosen] < costs[slots_challenged]
        population[slots_challenged[better]] = children[chosen[better]]
        costs[slots_challenged[better]] = child_costs[chosen[better]]

    # -- batched local polish --------------------------------------------------------

    def polish_population(
        self, population: np.ndarray, max_passes: int = 3
    ) -> None:
        """Greedy-polish every row of a ``(rows, n_vms)`` matrix at once.

        Runs the per-row sweep of :meth:`_greedy_polish` over all rows
        simultaneously by embedding them as disjoint copies of the
        instance — row ``r``'s VMs live at super-index ``r·n_vms + vm``
        and its hosts at ``r·n_hosts + host``, so one flat sweep polishes
        the whole matrix and rows converge independently.  This is what
        makes the memetic seeding of :meth:`initial_population` one
        batched pass instead of per-anchor loops.
        """
        population = np.asarray(population)
        rows, n_vms = population.shape
        if rows == 1:
            self._greedy_polish(population[0], max_passes=max_passes)
            return
        snap = self._snapshot
        n_hosts, n_racks = self._n_hosts, self._topology.n_racks
        n_pods = int(self._pod_of.max()) + 1 if n_hosts else 1
        n_edges = len(snap.row)
        r = np.arange(rows, dtype=np.int64)
        row_s = (snap.row[None, :] + (r * n_vms)[:, None]).ravel()
        peer_s = (snap.peer[None, :] + (r * n_vms)[:, None]).ravel()
        rate_s = np.tile(snap.rate, rows)
        ptr_s = np.concatenate(
            [(snap.ptr[:-1][None, :] + (r * n_edges)[:, None]).ravel(),
             [rows * n_edges]]
        )
        rack_s = (self._rack_of[None, :] + (r * n_racks)[:, None]).ravel()
        pod_s = (self._pod_of[None, :] + (r * n_pods)[:, None]).ravel()
        slots_s = np.tile(self._slots, rows)
        offsets = (r * n_hosts)[:, None]
        assignment_s = (population.astype(np.int64) + offsets).ravel()
        _greedy_polish_flat(
            assignment_s,
            row_s,
            peer_s,
            rate_s,
            ptr_s,
            rack_s,
            pod_s,
            slots_s,
            n_hosts // n_racks,
            self._path_weight,
            max_passes,
        )
        population[:] = (
            assignment_s.reshape(rows, n_vms) - offsets
        ).astype(population.dtype)

    def _greedy_polish(self, assignment: np.ndarray, max_passes: int = 3) -> None:
        """Move each VM toward its best feasible host near its peers.

        Each pass scores, for every communicating VM at once, every host in
        its peers' racks (one flat candidate × peer expansion over the CSR
        snapshot), then applies the improving moves in descending-gain
        order under the live slot counts.  Scores are computed against the
        pass-start assignment, so a pass is a batched best-response sweep
        rather than the sequential per-VM descent of the pre-batching
        implementation; callers that must not regress compare costs before
        adopting the polished vector.
        """
        snap = self._snapshot
        if snap.row.size == 0:
            return
        out = np.asarray(assignment, dtype=np.int64)
        _greedy_polish_flat(
            out,
            snap.row,
            snap.peer,
            snap.rate,
            snap.ptr,
            self._rack_of,
            self._pod_of,
            self._slots,
            self._n_hosts // self._topology.n_racks,
            self._path_weight,
            max_passes,
        )
        assignment[:] = out.astype(assignment.dtype)

    # -- per-individual reference (pre-batching semantics) ----------------------------

    def step_reference(
        self,
        population: np.ndarray,
        costs: np.ndarray,
        n_offspring: Optional[int] = None,
    ) -> None:
        """The pre-batching per-individual generation, kept verbatim.

        Differential tests and the paper-scale benchmark use this as the
        reference the batched :meth:`step` is compared against — same
        operators, python loops over individuals and traffic components.
        ``n_offspring`` trims the brood (benchmarks time a sample and
        extrapolate); defaults to the production ``pop // 2``.
        """
        config = self._config
        pop = population.shape[0]
        if n_offspring is None:
            n_offspring = max(1, pop // 2)
        offspring: List[np.ndarray] = []
        for _ in range(n_offspring):
            a = self._tournament_reference(costs)
            if self._rng.random() < config.crossover_rate:
                b = self._tournament_reference(costs)
                child = self._crossover_reference(population[a], population[b])
            else:
                child = population[a].copy()
            if self._rng.random() < config.mutation_rate:
                self._mutate_reference(child)
                self._repair_reference(child)
            offspring.append(child)
        offspring_costs = np.array([self.cost_of(ind) for ind in offspring])
        # Replacement by reverse tournament: offspring replace the losers
        # of tournaments over the current population.
        for child, child_cost in zip(offspring, offspring_costs):
            contenders = self._rng.integers(
                0, pop, size=config.tournament_k
            )
            loser = int(contenders[np.argmax(costs[contenders])])
            if child_cost < costs[loser]:
                population[loser] = child
                costs[loser] = child_cost

    def _tournament_reference(self, costs: np.ndarray) -> int:
        """Index of the tournament winner (lowest cost)."""
        contenders = self._rng.integers(
            0, len(costs), size=self._config.tournament_k
        )
        return int(contenders[np.argmin(costs[contenders])])

    def _crossover_reference(
        self, parent_a: np.ndarray, parent_b: np.ndarray
    ) -> np.ndarray:
        """EAX-style: inherit whole traffic components from either parent."""
        child = parent_a.copy()
        for component in self._components:
            if self._rng.random() < 0.5:
                child[component] = parent_b[component]
        self._repair_reference(child)
        return child

    def _mutate_reference(self, individual: np.ndarray) -> None:
        """Swap a random number of VMs between racks (paper §VI-A)."""
        n_swaps = int(self._rng.integers(1, self._config.max_mutation_swaps + 1))
        for _ in range(n_swaps):
            i, j = self._rng.integers(0, self._n_vms, size=2)
            individual[i], individual[j] = individual[j], individual[i]

    def _repair_reference(self, assignment: np.ndarray) -> None:
        """Move VMs off over-capacity hosts to the nearest free host."""
        counts = np.bincount(assignment, minlength=self._n_hosts)
        over = np.where(counts > self._slots)[0]
        if over.size == 0:
            return
        for host in over:
            excess = int(counts[host] - self._slots[host])
            victims = np.where(assignment == host)[0][:excess]
            for vm in victims:
                # Prefer a host in the same rack, then same pod, then any.
                target = self._pick_repair_host(host, counts)
                assignment[vm] = target
                counts[host] -= 1
                counts[target] += 1

    def _pick_repair_host(self, host: int, counts: np.ndarray) -> int:
        free = counts < self._slots
        same_rack = free & (self._rack_of == self._rack_of[host])
        if np.any(same_rack):
            return int(np.where(same_rack)[0][0])
        same_pod = free & (self._pod_of == self._pod_of[host])
        if np.any(same_pod):
            return int(np.where(same_pod)[0][0])
        return int(np.where(free)[0][0])


def _greedy_polish_flat(
    assignment: np.ndarray,
    row: np.ndarray,
    peer: np.ndarray,
    rate: np.ndarray,
    ptr: np.ndarray,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
    slots: np.ndarray,
    hosts_per_rack: int,
    path_weight: np.ndarray,
    max_passes: int,
) -> None:
    """One flat greedy-polish sweep over an arbitrary CSR instance.

    The engine behind both :meth:`GeneticOptimizer._greedy_polish` (one
    assignment vector) and :meth:`GeneticOptimizer.polish_population`
    (many rows embedded as disjoint instance copies).  Each pass scores,
    for every communicating VM at once, every host in its peers' racks,
    then applies the improving moves in descending-gain order under the
    live slot counts; passes repeat until no VM moves or ``max_passes``
    is hit.

    Scoring uses the level-hierarchy decomposition (what the wave-batched
    candidate engine uses): for candidate host x of VM u,

    ``Σ_p λ_p·w[l(x,p)] = w3·R_total + (w2−w3)·R_pod(pod_x)
                        + (w1−w2)·R_rack(rack_x) + (w0−w1)·R_host(x)``

    so every candidate costs O(1) gathers against per-owner rate
    aggregates instead of an O(degree) peer expansion — the difference
    between minutes and seconds for the paper-scale memetic seeding.
    """
    if row.size == 0:
        return
    n_hosts = len(slots)
    n_vms = len(ptr) - 1
    n_racks = int(rack_of.max()) + 1
    n_pods = int(pod_of.max()) + 1
    counts = np.bincount(assignment, minlength=n_hosts)
    pw = path_weight
    w3 = pw[3] if len(pw) > 3 else pw[-1]
    w2d, w1d, w0d = pw[2] - w3, pw[1] - pw[2], pw[0] - pw[1]
    total_rate = np.bincount(row, weights=rate, minlength=n_vms)
    per = hosts_per_rack
    #: Owner-chunk size bounding the dense (owners x racks) scatter maps.
    chunk = max(1, 8_000_000 // max(1, n_racks))
    for _pass in range(max_passes):
        peer_host = assignment[peer]
        peer_rack = rack_of[peer_host]
        peer_pod = pod_of[peer_host]
        # Host-level aggregate via the shared sparse (owner, host) table.
        hkeys, hsums = owner_host_rate_table(row, peer_host, rate, n_hosts)

        def r_host(owners, hosts):
            return owner_host_rate_lookup(hkeys, hsums, owners, hosts, n_hosts)

        # Candidates: for every directed edge, the hosts of the peer's
        # rack (the peer's own host included).  Duplicates across edges
        # of one VM only re-derive the same score.
        cand_host = (
            (peer_rack * per)[:, None] + np.arange(per)
        ).ravel()
        cand_owner = np.repeat(row, per)
        score = np.empty(cand_host.size)
        current = np.empty(n_vms)
        # Rack/pod aggregates via chunked dense maps over the owner space;
        # `row` is CSR-ordered, so edge/candidate blocks line up with
        # owner ranges.
        for o_lo in range(0, n_vms, chunk):
            o_hi = min(n_vms, o_lo + chunk)
            e_lo, e_hi = ptr[o_lo], ptr[o_hi]
            local_owner = row[e_lo:e_hi] - o_lo
            e_rate = rate[e_lo:e_hi]
            r_rack = np.bincount(
                local_owner * n_racks + peer_rack[e_lo:e_hi],
                weights=e_rate,
                minlength=(o_hi - o_lo) * n_racks,
            )
            r_pod = np.bincount(
                local_owner * n_pods + peer_pod[e_lo:e_hi],
                weights=e_rate,
                minlength=(o_hi - o_lo) * n_pods,
            )
            c_lo, c_hi = e_lo * per, e_hi * per
            block_host = cand_host[c_lo:c_hi]
            block_owner = cand_owner[c_lo:c_hi]
            score[c_lo:c_hi] = (
                w3 * total_rate[block_owner]
                + w2d * r_pod[(block_owner - o_lo) * n_pods + pod_of[block_host]]
                + w1d
                * r_rack[(block_owner - o_lo) * n_racks + rack_of[block_host]]
                + w0d * r_host(block_owner, block_host)
            )
            # Current per-VM placement cost (Eq. 1 restricted to peers),
            # via the same decomposition at the VM's own host.
            owners = np.arange(o_lo, o_hi)
            cur_host = assignment[o_lo:o_hi]
            current[o_lo:o_hi] = (
                w3 * total_rate[o_lo:o_hi]
                + w2d * r_pod[(owners - o_lo) * n_pods + pod_of[cur_host]]
                + w1d * r_rack[(owners - o_lo) * n_racks + rack_of[cur_host]]
                + w0d * r_host(owners, cur_host)
            )
        # NOTE: `current` at the VM's own host includes intra-host peers at
        # level 0, exactly like a candidate equal to the current host.

        best = np.full(n_vms, np.inf)
        starts = ptr[:-1] * per
        nonempty = ptr[1:] > ptr[:-1]
        if not np.any(nonempty):
            break
        best[nonempty] = np.minimum.reduceat(score, starts[nonempty])
        improving = best < current - 1e-12
        winner_rows = np.nonzero(
            (score <= best[cand_owner]) & improving[cand_owner]
        )[0]
        movers, first_idx = np.unique(
            cand_owner[winner_rows], return_index=True
        )
        targets = cand_host[winner_rows[first_idx]]

        gain_order = np.argsort(
            -(current[movers] - best[movers]), kind="stable"
        )
        moved = 0
        for idx in gain_order:
            vm = int(movers[idx])
            target = int(targets[idx])
            source = int(assignment[vm])
            if target == source or counts[target] >= slots[target]:
                continue
            counts[source] -= 1
            counts[target] += 1
            assignment[vm] = target
            moved += 1
        if moved == 0:
            break
