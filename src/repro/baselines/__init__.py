"""Baselines the paper evaluates S-CORE against.

:mod:`repro.baselines.ga`
    The centralized genetic-algorithm approximation of the optimal VM
    allocation (§VI-A).  The paper treats its output as "optimal" when
    reporting cost *ratios*; so do the benches here.
:mod:`repro.baselines.remedy`
    A reimplementation of Remedy (Mann et al., Networking'12): centralized,
    OpenFlow-style link monitoring, migrates VMs off congested links to
    *balance* utilization, with a page-dirty-rate migration-cost model
    (§VI-B / Fig. 4 comparison).
:mod:`repro.baselines.static`
    Non-adaptive references: no-migration and random-shuffle.
"""

from repro.baselines.ga import GAConfig, GAResult, GeneticOptimizer
from repro.baselines.remedy import RemedyConfig, RemedyController, RemedyReport
from repro.baselines.static import no_migration_cost, random_shuffle_cost

__all__ = [
    "GAConfig",
    "GAResult",
    "GeneticOptimizer",
    "RemedyConfig",
    "RemedyController",
    "RemedyReport",
    "no_migration_cost",
    "random_shuffle_cost",
]
