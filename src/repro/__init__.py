"""S-CORE reproduction: scalable traffic-aware VM management (ICDCS 2014).

Public API quick tour::

    from repro import (
        CanonicalTree, Cluster, PlacementManager, place_random,
        DCTrafficGenerator, SPARSE,
        CostModel, LinkWeights, MigrationEngine, SCOREScheduler,
        HighestLevelFirstPolicy,
    )

    topo = CanonicalTree(n_racks=8, hosts_per_rack=4)
    cluster = Cluster(topo)
    manager = PlacementManager(cluster)
    vms = manager.create_vms(64)
    allocation = place_random(cluster, vms, seed=7)
    traffic = DCTrafficGenerator([vm.vm_id for vm in vms], SPARSE, seed=7).generate()
    engine = MigrationEngine(CostModel(topo))
    scheduler = SCOREScheduler(allocation, traffic, HighestLevelFirstPolicy(), engine)
    report = scheduler.run(n_iterations=5)
    print(f"communication cost reduced by {report.cost_reduction:.0%}")
"""

from repro.topology import CanonicalTree, FatTree, Topology
from repro.cluster import (
    VM,
    Allocation,
    CapacityError,
    Cluster,
    PlacementManager,
    Server,
    ServerCapacity,
    place_arrivals,
    place_packed,
    place_random,
    place_round_robin,
    place_striped,
)
from repro.traffic import (
    DCTrafficGenerator,
    TrafficMatrix,
    TrafficPattern,
    DENSE,
    MEDIUM,
    SPARSE,
)
from repro.core import (
    CostModel,
    FastCostEngine,
    HighestLevelFirstPolicy,
    LinkWeights,
    MigrationDecision,
    MigrationEngine,
    RoundRobinPolicy,
    SCOREScheduler,
    SchedulerReport,
    Token,
    TokenPolicy,
    policy_by_name,
)

from repro.scenarios import (
    ChurnSpec,
    DriftSpec,
    Scenario,
    register_scenario,
    run_scenario,
    scenario_by_name,
    scenario_names,
)

__version__ = "1.0.0"

__all__ = [
    "Topology",
    "CanonicalTree",
    "FatTree",
    "VM",
    "Server",
    "ServerCapacity",
    "Cluster",
    "Allocation",
    "CapacityError",
    "PlacementManager",
    "place_arrivals",
    "place_packed",
    "place_random",
    "place_round_robin",
    "place_striped",
    "TrafficMatrix",
    "DCTrafficGenerator",
    "TrafficPattern",
    "SPARSE",
    "MEDIUM",
    "DENSE",
    "CostModel",
    "FastCostEngine",
    "LinkWeights",
    "Token",
    "TokenPolicy",
    "RoundRobinPolicy",
    "HighestLevelFirstPolicy",
    "policy_by_name",
    "MigrationEngine",
    "MigrationDecision",
    "SCOREScheduler",
    "SchedulerReport",
    "Scenario",
    "DriftSpec",
    "ChurnSpec",
    "run_scenario",
    "register_scenario",
    "scenario_by_name",
    "scenario_names",
    "__version__",
]
