"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    One S-CORE experiment: build topology/cluster/workload per flags, run
    the token loop, print the cost series and summary (optionally with the
    GA-optimal reference).
``compare-policies``
    Run every token policy on identical starts and print a comparison
    table.
``migration-profile``
    Profile the live-migration model across background loads (Fig. 5c/d).
``scenario``
    Run a named scenario from the catalogue (drifting traffic, tenant
    churn, maintenance drains) epoch by epoch via the delta-path engine;
    ``--list`` prints the catalogue.  Durable runs
    (``--checkpoint-dir``/``--recover-from``) drain gracefully on
    SIGINT/SIGTERM: the in-flight round finishes and a final checkpoint
    flushes before exit.
``serve``
    The scheduler-as-a-service daemon: warm scheduler state, a pluggable
    event source (Poisson, a scenario's event feed, newline-JSON),
    bounded admission control, journaled rounds, supervised restarts
    and graceful signal drain (see ``docs/service.md``).
``info``
    Print version and the paper-scale configurations.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.baselines.ga import GAConfig, GeneticOptimizer
from repro.sim.experiment import (
    ExperimentConfig,
    build_environment,
    run_experiment,
)
from repro.sim.metrics import convergence_iteration, resample_series


def _add_experiment_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology", choices=["canonical", "fattree"], default="canonical"
    )
    parser.add_argument("--racks", type=int, default=16, help="canonical: ToR count")
    parser.add_argument("--hosts-per-rack", type=int, default=4)
    parser.add_argument("--tors-per-agg", type=int, default=4)
    parser.add_argument("--cores", type=int, default=2)
    parser.add_argument("--fattree-k", type=int, default=4)
    parser.add_argument("--vms-per-host", type=int, default=8)
    parser.add_argument("--fill", type=float, default=0.85, help="slot fill fraction")
    parser.add_argument(
        "--pattern", choices=["sparse", "medium", "dense"], default="sparse"
    )
    parser.add_argument(
        "--placement",
        choices=["random", "round_robin", "packed", "striped"],
        default="random",
    )
    parser.add_argument(
        "--policy", choices=["rr", "hlf", "random", "lrv"], default="hlf"
    )
    parser.add_argument("--weights", choices=["paper", "exponential", "linear"],
                        default="paper")
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--migration-cost", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run sharded: partition into up to N scheduling domains "
        "with a cross-domain reconciliation pass (canonical tree only)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="forked worker processes for the sharded domains (with "
        "--shards; 1 = in-process)",
    )
    parser.add_argument(
        "--shard-compact", action="store_true",
        help="run the domain engines on the compact int32/float32 "
        "snapshot (with --shards; the global cost gate stays float64)",
    )
    parser.add_argument(
        "--shard-transport", choices=["shm", "pipe"], default="shm",
        help="worker outcome transport (with --shards --workers>1): "
        "zero-copy shared-memory slabs (default) or pickled pipes",
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        topology=args.topology,
        n_racks=args.racks,
        hosts_per_rack=args.hosts_per_rack,
        tors_per_agg=args.tors_per_agg,
        n_cores=args.cores,
        fattree_k=args.fattree_k,
        vms_per_host=args.vms_per_host,
        fill_fraction=args.fill,
        pattern=args.pattern,
        placement=args.placement,
        policy=args.policy,
        weights=args.weights,
        n_iterations=args.iterations,
        migration_cost=args.migration_cost,
        seed=args.seed,
        sharding=args.shards is not None,
        shard_domains=args.shards,
        shard_workers=args.workers,
        shard_compact=args.shard_compact,
        shard_transport=args.shard_transport,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    env = build_environment(config)
    print(f"topology:  {env.topology.describe()}")
    print(f"vms:       {env.allocation.n_vms}  "
          f"traffic pairs: {env.traffic.n_pairs}")
    ga_cost: Optional[float] = None
    if args.ga:
        ga = GeneticOptimizer(
            env.allocation, env.traffic, env.cost_model,
            GAConfig(population_size=args.ga_population, seed=config.seed),
        ).run()
        ga_cost = ga.best_cost
        print(f"GA-optimal reference: {ga_cost:,.0f} "
              f"({ga.generations} generations)")
    result = run_experiment(config, environment=env)
    print(f"initial cost: {result.initial_cost:,.0f}")
    print(f"final cost:   {result.final_cost:,.0f}  "
          f"(reduction {result.report.cost_reduction:.0%}, "
          f"{result.report.total_migrations} migrations, "
          f"converged at iteration "
          f"{convergence_iteration(result.report, tolerance=0.01)})")
    if result.report.shard_executor is not None:
        print(f"shard executor: {result.report.shard_executor}")
    reference = (
        min(ga_cost, result.final_cost) if ga_cost is not None else None
    )
    if reference:
        series = result.report.cost_ratio_series(reference)
        grid = [series[-1][0] * f for f in (0, 0.25, 0.5, 0.75, 1.0)]
        print("cost ratio vs optimal over time:")
        for t, ratio in resample_series(series, grid):
            print(f"  t={t:8.1f}s  ratio={ratio:.2f}")
    return 0


def _cmd_compare_policies(args: argparse.Namespace) -> int:
    base = _config_from_args(args)
    print(f"{'policy':8s} {'reduction':>10s} {'migrations':>11s} {'converged':>10s}")
    for policy in ("rr", "hlf", "random", "lrv"):
        result = run_experiment(base.with_(policy=policy))
        print(
            f"{policy:8s} {result.report.cost_reduction:10.0%} "
            f"{result.report.total_migrations:11d} "
            f"{convergence_iteration(result.report, tolerance=0.01):10d}"
        )
    return 0


def _cmd_migration_profile(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.testbed.livemigration import PreCopyMigrationModel

    model = PreCopyMigrationModel(ram_mb=args.ram, seed=args.seed)
    print(f"{'bg load':>8s} {'total time':>11s} {'downtime':>10s} {'migrated':>10s}")
    for load in np.linspace(0.0, 1.0, args.points):
        sample = model.sample_migrations(args.samples, background_load=float(load))
        print(
            f"{load:8.2f} "
            f"{np.mean([o.total_time_s for o in sample]):10.2f}s "
            f"{np.mean([o.downtime_ms for o in sample]):8.1f}ms "
            f"{np.mean([o.migrated_bytes_mb for o in sample]):8.0f}MB"
        )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import run_scenario, scenario_by_name, scenario_names

    from repro.service import GracefulShutdown

    if args.recover_from is not None:
        print(f"recovering checkpointed run from {args.recover_from}")
        with GracefulShutdown() as stop:
            result = run_scenario(
                "baseline",  # ignored: the journal names the scenario
                validate=args.validate,
                recover_from=args.recover_from,
                stop_requested=stop,
            )
        scenario = result.scenario
        print(f"scenario: {scenario.name} — {scenario.description}")
    else:
        if args.list or args.name is None:
            print(f"{'scenario':22s} description")
            for name in scenario_names():
                print(f"{name:22s} {scenario_by_name(name).description}")
            if args.name is None and not args.list:
                print("\nrun one with: python -m repro scenario <name>")
            return 0
        scenario = scenario_by_name(args.name)
        print(f"scenario: {scenario.name} — {scenario.description}")
        with GracefulShutdown() as stop:
            result = run_scenario(
                scenario,
                scale=args.scale,
                epochs=args.epochs,
                iterations_per_epoch=args.iterations_per_epoch,
                seed=args.seed,
                profile=args.profile,
                validate=args.validate,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                stop_requested=stop if args.checkpoint_dir else None,
            )
    env = result.environment
    print(f"topology: {env.topology.describe()}  policy: {scenario.config.policy}")
    show_recov = any(s.recovered_from for s in result.epoch_stats)
    recov_header = f" {'recov':>30s}" if show_recov else ""
    print(
        f"{'epoch':>5s} {'vms':>6s} {'migr':>6s} {'return':>6s} {'arr':>4s} "
        f"{'dep':>4s} {'drain':>5s} {'event':>5s} {'cost after':>12s} "
        f"{'trans':>8s} {'sched':>8s}" + recov_header
    )
    for s in result.epoch_stats:
        recov = f" {s.recovered_from or '-':>30s}" if show_recov else ""
        print(
            f"{s.epoch:5d} {s.n_vms:6d} {s.migrations:6d} {s.returning:6d} "
            f"{s.arrivals:4d} {s.departures:4d} {s.drained:5d} {s.events:5d} "
            f"{s.cost_after:12.4g} {s.transition_s:7.3f}s {s.schedule_s:7.3f}s"
            + recov
        )
    print(
        f"cost {result.initial_cost:,.0f} -> {result.final_cost:,.0f}  "
        f"migrations {result.total_migrations} "
        f"(oscillation {result.oscillation_index:.1%}, "
        f"settled={result.settled})"
    )
    print(
        f"wall clock: transitions {result.total_transition_s:.3f}s, "
        f"scheduling {result.total_schedule_s:.3f}s"
    )
    if result.interrupted:
        where = args.checkpoint_dir or args.recover_from
        print(
            f"interrupted by shutdown request — final checkpoint flushed; "
            f"resume with: python -m repro scenario --recover-from {where}"
        )
    if result.profile is not None:
        print("scheduling phases (round-cache hit rates included):")
        print(f"  {'transition':12s} {result.total_transition_s:8.3f}s")
        for line in result.profile.lines(result.total_schedule_s):
            print(f"  {line}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.scenarios.scenario import SCALES
    from repro.service import (
        GracefulShutdown,
        JsonLinesSource,
        PoissonSource,
        SchedulerService,
        ScriptedSource,
        ServiceConfig,
        supervise,
    )

    state_dir = args.state_dir
    config = ServiceConfig(
        checkpoint_every=args.checkpoint_every,
        queue_capacity=args.queue_capacity,
        queue_soft_limit=args.queue_soft_limit,
    )

    def make_source(round_seconds: float):
        if args.source == "none":
            return None
        if args.source == "poisson":
            return PoissonSource(
                args.rate,
                round_seconds,
                args.horizon_rounds,
                seed=args.source_seed,
            )
        if args.source.startswith("scenario:"):
            from repro.scenarios import scenario_by_name

            scenario = scenario_by_name(args.source.split(":", 1)[1])
            return ScriptedSource.from_specs(scenario.events, round_seconds)
        if args.source.startswith("jsonl:"):
            target = args.source.split(":", 1)[1]
            if target == "-":
                return JsonLinesSource(sys.stdin, round_seconds)
            with open(target) as handle:
                return JsonLinesSource(handle, round_seconds)
        raise SystemExit(f"unknown --source {args.source!r}")

    on_plan = None
    if args.print_plans:
        def on_plan(plan):
            print(
                f"  plan round={plan.round} t={plan.clock:.1f}s "
                f"cost={plan.cost:.4g} moves={plan.migrations} "
                f"events={plan.events_absorbed}"
            )

    with GracefulShutdown() as stop:
        if args.resume:
            print(f"resuming service from {state_dir}")

            def create_fn():
                return SchedulerService.resume(state_dir, on_plan=on_plan)

        else:
            experiment = ExperimentConfig(
                **SCALES[args.scale], policy=args.policy, seed=args.seed
            )

            def create_fn():
                return SchedulerService.create(
                    experiment,
                    state_dir,
                    make_source,
                    config=config,
                    on_plan=on_plan,
                )

        outcome = supervise(
            state_dir,
            create_fn,
            max_restarts=args.max_restarts,
            serve_kwargs={"max_rounds": args.rounds, "stop_requested": stop},
        )
        outcome.service.close()
    report = outcome.report
    if outcome.service.recovered_from:
        print(f"recovered from: {outcome.service.recovered_from}")
    print(
        f"rounds: {report.rounds_total} total ({report.rounds} live)  "
        f"plans: {report.plans}  events: {report.events_applied}  "
        f"migrations: {report.migrations}"
    )
    print(f"final cost: {report.final_cost:,.4f}")
    adm = report.admissions
    print(
        f"admission: accepted {adm.get('accepted', 0)}, deferred "
        f"{adm.get('deferred', 0)}, coalesced {adm.get('coalesced', 0)}, "
        f"rejected {adm.get('rejected', 0)} "
        f"(backpressure rounds: {report.backpressure_rounds})"
    )
    if report.events_applied:
        print(
            f"throughput: {report.events_per_second:,.1f} events/s, "
            f"p99 event->plan latency {report.p99_latency_s * 1e3:.2f} ms"
        )
    if report.restarts or report.safe_mode or report.degraded:
        print(
            f"robustness: {report.restarts} supervised restart(s), "
            f"{len(report.safe_mode)} safe-mode window(s), "
            f"{len(report.degraded)} degraded window(s)"
        )
    print(f"stopped: {report.stop_reason}")
    if report.stop_reason == "graceful shutdown":
        print(
            f"final checkpoint flushed — resume with: "
            f"python -m repro serve --resume --state-dir {state_dir}"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} — S-CORE reproduction (ICDCS 2014)")
    print("paper-scale configurations:")
    canonical = ExperimentConfig.paper_canonical()
    fattree = ExperimentConfig.paper_fattree()
    print(f"  canonical: {canonical.n_racks} racks x "
          f"{canonical.hosts_per_rack} hosts, {canonical.vms_per_host} VM slots")
    print(f"  fat-tree:  k={fattree.fattree_k} "
          f"({fattree.fattree_k ** 3 // 4} hosts), "
          f"{fattree.vms_per_host} VM slots")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S-CORE: scalable traffic-aware VM management (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one S-CORE experiment")
    _add_experiment_flags(run_parser)
    run_parser.add_argument("--ga", action="store_true",
                            help="also compute the GA-optimal reference")
    run_parser.add_argument("--ga-population", type=int, default=60)
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = sub.add_parser(
        "compare-policies", help="compare all token policies"
    )
    _add_experiment_flags(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare_policies)

    profile_parser = sub.add_parser(
        "migration-profile", help="live-migration profile (Fig. 5c/d)"
    )
    profile_parser.add_argument("--ram", type=float, default=196.0)
    profile_parser.add_argument("--points", type=int, default=6)
    profile_parser.add_argument("--samples", type=int, default=30)
    profile_parser.add_argument("--seed", type=int, default=42)
    profile_parser.set_defaults(func=_cmd_migration_profile)

    scenario_parser = sub.add_parser(
        "scenario", help="run a named scenario from the catalogue"
    )
    scenario_parser.add_argument(
        "name", nargs="?", default=None,
        help="registered scenario name (omit or --list to see the catalogue)",
    )
    scenario_parser.add_argument(
        "--list", action="store_true", help="print the scenario catalogue"
    )
    scenario_parser.add_argument(
        "--scale", choices=["toy", "small", "paper"], default=None,
        help="topology scale override (default: as declared)",
    )
    scenario_parser.add_argument("--epochs", type=int, default=None)
    scenario_parser.add_argument(
        "--iterations-per-epoch", type=int, default=None
    )
    scenario_parser.add_argument("--seed", type=int, default=None)
    scenario_parser.add_argument(
        "--profile", action="store_true",
        help="print per-phase scheduling timings (transition / score / "
        "wave-apply / re-mask) and round-cache hit rates",
    )
    scenario_parser.add_argument(
        "--validate", action="store_true",
        help="run the engine-invariant harness after every injected "
        "event and epoch (debug; slows the run down)",
    )
    scenario_parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="make the run durable: journal + snapshot generations in DIR",
    )
    scenario_parser.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="rounds between snapshot generations (with --checkpoint-dir)",
    )
    scenario_parser.add_argument(
        "--recover-from", default=None, metavar="DIR",
        help="resume a killed durable run from its checkpoint directory",
    )
    scenario_parser.set_defaults(func=_cmd_scenario)

    serve_parser = sub.add_parser(
        "serve", help="run the scheduler-as-a-service daemon"
    )
    serve_parser.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="durable state directory (journal + snapshot generations)",
    )
    serve_parser.add_argument(
        "--resume", action="store_true",
        help="recover an existing service from --state-dir instead of "
        "creating one (topology/source come from its journal)",
    )
    serve_parser.add_argument(
        "--scale", choices=["toy", "small", "paper"], default="toy"
    )
    serve_parser.add_argument(
        "--policy", choices=["rr", "hlf", "random", "lrv"], default="hlf"
    )
    serve_parser.add_argument("--seed", type=int, default=42)
    serve_parser.add_argument(
        "--source", default="poisson", metavar="SPEC",
        help="event source: 'poisson', 'scenario:<name>', 'jsonl:<path>', "
        "'jsonl:-' (stdin) or 'none'",
    )
    serve_parser.add_argument(
        "--rate", type=float, default=3.0,
        help="poisson source: mean events per token round",
    )
    serve_parser.add_argument(
        "--horizon-rounds", type=float, default=12.0,
        help="poisson source: stream length in rounds",
    )
    serve_parser.add_argument(
        "--source-seed", type=int, default=0,
        help="poisson source: RNG seed (independent of --seed)",
    )
    serve_parser.add_argument(
        "--rounds", type=int, default=None, metavar="N",
        help="stop after N rounds (default: run until the stream is "
        "absorbed and the scheduler quiesces)",
    )
    serve_parser.add_argument("--checkpoint-every", type=int, default=4)
    serve_parser.add_argument("--queue-capacity", type=int, default=64)
    serve_parser.add_argument(
        "--queue-soft-limit", type=int, default=None,
        help="overload watermark (default: half the capacity)",
    )
    serve_parser.add_argument(
        "--max-restarts", type=int, default=8,
        help="supervised restart budget before a crash propagates",
    )
    serve_parser.add_argument(
        "--print-plans", action="store_true",
        help="print every emitted migration plan",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    info_parser = sub.add_parser("info", help="version and paper-scale info")
    info_parser.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
