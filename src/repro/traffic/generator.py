"""Synthetic DC workload generator (paper §VI, "We have built a DC traffic
generator to evaluate S-CORE under realistic DC load patterns").

The generator reproduces the traffic-matrix characteristics the paper bases
its evaluation on (citing Kandula IMC'09, Greenberg VL2, Benson IMC'10,
Kandula HotNets'09):

* the ToR-level matrix is **sparse** — most rack pairs exchange nothing;
* a handful of ToRs/services are **hotspots** attracting a large share of
  the bytes;
* per-pair rates are long-tailed (log-normal aggregate of mice plus
  occasional elephants).

Workload structure: VMs are partitioned into *services* (groups) whose
members talk to each other; a small set of services is designated hot and
additionally receives fan-in traffic from many other VMs.  The paper's
sparse → medium → dense progression is modelled by the preset patterns
:data:`SPARSE`, :data:`MEDIUM` and :data:`DENSE`, which both densify the
pair set and scale the rates (the paper scales its initial TM by ×10/×50).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import SeedLike, make_rng, spawn_rng
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class TrafficPattern:
    """Parameters of a synthetic workload.

    Attributes
    ----------
    name:
        Human-readable preset name.
    mean_group_size:
        Mean size of a service (communication group); sizes are geometric.
    intra_group_prob:
        Probability that a pair of VMs within the same service talks.
    hot_service_fraction:
        Fraction of services designated as hotspots.
    fan_in_prob:
        Probability that an arbitrary VM sends traffic into a hot service.
    background_pair_prob:
        Per-VM probability of one extra uniformly random background pair.
    base_rate_bytes:
        Median pairwise rate (bytes/second) before scaling.
    rate_sigma:
        Log-normal sigma of pairwise rates.
    hot_rate_multiplier:
        Rate multiplier for fan-in traffic towards hotspots.
    load_scale:
        Global rate multiplier (the paper's ×1 / ×10 / ×50 stress knob).
    """

    name: str
    mean_group_size: float = 4.0
    intra_group_prob: float = 0.5
    hot_service_fraction: float = 0.04
    fan_in_prob: float = 0.05
    background_pair_prob: float = 0.02
    base_rate_bytes: float = 1e5
    rate_sigma: float = 1.2
    hot_rate_multiplier: float = 8.0
    load_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive("mean_group_size", self.mean_group_size)
        check_probability("intra_group_prob", self.intra_group_prob)
        check_probability("hot_service_fraction", self.hot_service_fraction)
        check_probability("fan_in_prob", self.fan_in_prob)
        check_probability("background_pair_prob", self.background_pair_prob)
        check_positive("base_rate_bytes", self.base_rate_bytes)
        check_positive("rate_sigma", self.rate_sigma)
        check_positive("hot_rate_multiplier", self.hot_rate_multiplier)
        check_positive("load_scale", self.load_scale)

    def scaled(self, factor: float, name: Optional[str] = None) -> "TrafficPattern":
        """A copy of the pattern with its load scaled by ``factor``."""
        return replace(
            self,
            name=name or f"{self.name}x{factor:g}",
            load_scale=self.load_scale * factor,
        )


#: The paper's sparse TM: few hotspots, most pairs silent (Fig. 3a).
SPARSE = TrafficPattern(name="sparse")

#: Sparse scaled ×10 with denser fan-in (Fig. 3b).
MEDIUM = TrafficPattern(
    name="medium",
    intra_group_prob=0.65,
    hot_service_fraction=0.08,
    fan_in_prob=0.12,
    background_pair_prob=0.05,
    load_scale=10.0,
)

#: Sparse scaled ×50 with much denser fan-in (Fig. 3c).
DENSE = TrafficPattern(
    name="dense",
    intra_group_prob=0.8,
    hot_service_fraction=0.12,
    fan_in_prob=0.25,
    background_pair_prob=0.1,
    load_scale=50.0,
)

PATTERNS = {p.name: p for p in (SPARSE, MEDIUM, DENSE)}


class DCTrafficGenerator:
    """Generates pairwise VM traffic matrices for a given VM population."""

    def __init__(
        self,
        vm_ids: Sequence[int],
        pattern: TrafficPattern = SPARSE,
        seed: SeedLike = None,
    ) -> None:
        if len(vm_ids) < 2:
            raise ValueError(f"need at least 2 VMs, got {len(vm_ids)}")
        if len(set(vm_ids)) != len(vm_ids):
            raise ValueError("vm_ids contains duplicates")
        self._vm_ids = list(vm_ids)
        self._pattern = pattern
        self._rng = make_rng(seed)
        self._groups = self._partition_into_groups()
        n_hot = max(1, round(pattern.hot_service_fraction * len(self._groups)))
        order = self._rng.permutation(len(self._groups))
        self._hot_groups = [self._groups[i] for i in order[:n_hot]]

    @property
    def pattern(self) -> TrafficPattern:
        """The workload pattern in effect."""
        return self._pattern

    @property
    def groups(self) -> List[List[int]]:
        """The service groups (lists of VM IDs)."""
        return [list(g) for g in self._groups]

    @property
    def hot_groups(self) -> List[List[int]]:
        """The hotspot services."""
        return [list(g) for g in self._hot_groups]

    def generate(self) -> TrafficMatrix:
        """Produce one traffic matrix snapshot."""
        pattern = self._pattern
        rng = self._rng
        matrix = TrafficMatrix()
        mu = float(np.log(pattern.base_rate_bytes))

        def draw_rate(multiplier: float = 1.0) -> float:
            return float(
                rng.lognormal(mu, pattern.rate_sigma)
                * multiplier
                * pattern.load_scale
            )

        # Intra-service meshes.
        for group in self._groups:
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    if rng.random() < pattern.intra_group_prob:
                        matrix.add_rate(group[i], group[j], draw_rate())

        # Fan-in to hot services (the hotspot columns of Fig. 3a).
        hot_members = [vm for group in self._hot_groups for vm in group]
        hot_set = set(hot_members)
        if hot_members:
            for vm in self._vm_ids:
                if vm in hot_set:
                    continue
                if rng.random() < pattern.fan_in_prob:
                    target = int(rng.choice(hot_members))
                    matrix.add_rate(
                        vm, target, draw_rate(pattern.hot_rate_multiplier)
                    )

        # Sparse uniform background chatter.
        n = len(self._vm_ids)
        for vm in self._vm_ids:
            if rng.random() < pattern.background_pair_prob:
                other = self._vm_ids[int(rng.integers(0, n))]
                if other != vm:
                    matrix.add_rate(vm, other, draw_rate(0.2))

        return matrix

    def _partition_into_groups(self) -> List[List[int]]:
        """Partition the VM population into geometric-size services."""
        rng = spawn_rng(self._rng, stream=1)
        ids = list(self._vm_ids)
        rng.shuffle(ids)
        groups: List[List[int]] = []
        p = 1.0 / self._pattern.mean_group_size
        index = 0
        while index < len(ids):
            size = int(rng.geometric(p))
            size = max(2, min(size, len(ids) - index))
            groups.append(ids[index : index + size])
            index += size
        # A trailing singleton cannot form a pair; merge it into the
        # previous group.
        if len(groups) >= 2 and len(groups[-1]) < 2:
            groups[-2].extend(groups.pop())
        return groups


def pattern_by_name(name: str) -> TrafficPattern:
    """Look up one of the paper's preset patterns by name."""
    try:
        return PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown pattern {name!r}; known: {sorted(PATTERNS)}"
        )
