"""Sparse symmetric pairwise traffic matrix.

λ(u, v) is the average rate (bytes per second, incoming plus outgoing)
exchanged between VMs u and v over the measurement window (paper §III).
The matrix is undirected/symmetric — the cost model only ever uses the
combined rate — and sparse, since DC measurement studies consistently show
most VM pairs never talk.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.util.validation import check_non_negative


class TrafficMatrix:
    """Pairwise VM-to-VM average traffic rates.

    Rates are stored once per unordered pair; ``peers_of(u)`` returns the
    paper's ``V_u`` in O(1) via an adjacency index.
    """

    def __init__(self) -> None:
        self._adj: Dict[int, Dict[int, float]] = {}
        self._version = 0
        #: Canonical (us, vs, rates, version) cache for :meth:`pair_arrays`,
        #: seeded by the bulk constructor and dropped on the next mutation.
        self._pair_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, int]
        ] = None

    @property
    def version(self) -> int:
        """Counter bumped on every mutation.

        Derived caches (the fast engine's traffic snapshot) compare it to
        detect out-of-band matrix edits and resync instead of drifting;
        bulk operations bump it once.
        """
        return self._version

    # -- mutation ----------------------------------------------------------

    def set_rate(self, vm_u: int, vm_v: int, rate: float) -> None:
        """Set λ(u, v); a rate of exactly 0 removes the pair."""
        if vm_u == vm_v:
            raise ValueError(f"self-traffic is not modelled (VM {vm_u})")
        check_non_negative("rate", rate)
        self._version += 1
        if rate == 0.0:
            self._adj.get(vm_u, {}).pop(vm_v, None)
            self._adj.get(vm_v, {}).pop(vm_u, None)
            if vm_u in self._adj and not self._adj[vm_u]:
                del self._adj[vm_u]
            if vm_v in self._adj and not self._adj[vm_v]:
                del self._adj[vm_v]
            return
        self._adj.setdefault(vm_u, {})[vm_v] = rate
        self._adj.setdefault(vm_v, {})[vm_u] = rate

    def add_rate(self, vm_u: int, vm_v: int, rate: float) -> None:
        """Accumulate onto λ(u, v)."""
        check_non_negative("rate", rate)
        self.set_rate(vm_u, vm_v, self.rate(vm_u, vm_v) + rate)

    def apply_delta(self, changed_pairs: Iterable[Tuple[int, int, float]]) -> int:
        """Overwrite λ for every ``(u, v, new_rate)`` triple in one batch.

        The epoch-transition form of :meth:`set_rate`: new rates are
        absolute (a rate of 0 removes the pair), validation runs before
        any write so a bad triple leaves the matrix untouched, and the
        version counter bumps once for the whole batch.  Returns the
        number of pairs written.  The loop is kept tight (direct adjacency
        writes) because drift processes push tens of thousands of pairs
        per epoch through it at paper scale.
        """
        triples = [(int(u), int(v), float(r)) for u, v, r in changed_pairs]
        for u, v, rate in triples:
            if u == v:
                raise ValueError(f"self-traffic is not modelled (VM {u})")
            if rate < 0 or rate != rate:
                raise ValueError(f"rate must be >= 0, got {rate}")
        adj = self._adj
        for u, v, rate in triples:
            if rate == 0.0:
                row = adj.get(u)
                if row is not None:
                    row.pop(v, None)
                    if not row:
                        del adj[u]
                row = adj.get(v)
                if row is not None:
                    row.pop(u, None)
                    if not row:
                        del adj[v]
            else:
                row = adj.get(u)
                if row is None:
                    row = adj[u] = {}
                row[v] = rate
                row = adj.get(v)
                if row is None:
                    row = adj[v] = {}
                row[u] = rate
        if triples:
            self._version += 1
        return len(triples)

    def scale(self, factor: float) -> "TrafficMatrix":
        """Return a new matrix with every rate multiplied by ``factor``.

        This is the paper's TM ×10 / ×50 load-stress scaling (§VI).
        """
        check_non_negative("factor", factor)
        scaled = TrafficMatrix()
        for u, v, rate in self.pairs():
            scaled.set_rate(u, v, rate * factor)
        return scaled

    # -- queries --------------------------------------------------------------

    def rate(self, vm_u: int, vm_v: int) -> float:
        """λ(u, v); zero when the pair does not communicate."""
        return self._adj.get(vm_u, {}).get(vm_v, 0.0)

    def peers_of(self, vm_u: int) -> FrozenSet[int]:
        """The paper's ``V_u``: every VM exchanging data with u."""
        return frozenset(self._adj.get(vm_u, ()))

    def peer_rates(self, vm_u: int) -> Mapping[int, float]:
        """Mapping peer → λ(u, peer); the local state S-CORE decides from."""
        return dict(self._adj.get(vm_u, {}))

    def degree(self, vm_u: int) -> int:
        """Number of communication peers of u."""
        return len(self._adj.get(vm_u, ()))

    def pairs(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate (u, v, rate) once per unordered pair, with u < v."""
        for u, neighbors in self._adj.items():
            for v, rate in neighbors.items():
                if u < v:
                    yield (u, v, rate)

    def pair_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All unordered pairs as flat arrays ``(u, v, rate)`` with u < v.

        The array view of :meth:`pairs`, assembled through C-speed
        iterators — what the fast-engine snapshot builds from at paper
        scale (~50k pairs) without a per-pair python loop.  Matrices
        built through :meth:`from_pair_arrays` return their (read-only)
        input arrays directly until the first mutation.
        """
        if self._pair_cache is not None:
            us, vs, rates, version = self._pair_cache
            if version == self._version:
                return us, vs, rates
            self._pair_cache = None

        from itertools import chain

        lens = np.fromiter(
            (len(nbrs) for nbrs in self._adj.values()),
            dtype=np.int64,
            count=len(self._adj),
        )
        total = int(lens.sum())
        us = np.repeat(
            np.fromiter(self._adj.keys(), dtype=np.int64, count=len(self._adj)),
            lens,
        )
        vs = np.fromiter(
            chain.from_iterable(nbrs.keys() for nbrs in self._adj.values()),
            dtype=np.int64,
            count=total,
        )
        rates = np.fromiter(
            chain.from_iterable(nbrs.values() for nbrs in self._adj.values()),
            dtype=float,
            count=total,
        )
        keep = us < vs
        return us[keep], vs[keep], rates[keep]

    @property
    def n_pairs(self) -> int:
        """Number of communicating pairs."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    @property
    def vms_with_traffic(self) -> FrozenSet[int]:
        """All VMs that appear in at least one communicating pair."""
        return frozenset(self._adj)

    def total_rate(self) -> float:
        """Sum of λ over all pairs (bytes/second)."""
        return sum(rate for _, _, rate in self.pairs())

    def vm_load(self, vm_u: int) -> float:
        """Aggregate rate between u and all its peers."""
        return sum(self._adj.get(vm_u, {}).values())

    # -- aggregation -------------------------------------------------------------

    def tor_matrix(self, allocation, n_racks: int = 0) -> np.ndarray:
        """Aggregate the VM matrix to a rack-to-rack (ToR) matrix.

        This is the view shown in the paper's Fig. 3a-c heatmaps.  Traffic
        between co-rack VMs lands on the diagonal.  ``allocation`` must map
        every VM in this matrix.
        """
        racks = n_racks or allocation.topology.n_racks
        tor = np.zeros((racks, racks), dtype=float)
        topo = allocation.topology
        for u, v, rate in self.pairs():
            rack_u = topo.rack_of(allocation.server_of(u))
            rack_v = topo.rack_of(allocation.server_of(v))
            tor[rack_u, rack_v] += rate
            if rack_u != rack_v:
                tor[rack_v, rack_u] += rate
        return tor

    def copy(self) -> "TrafficMatrix":
        """Deep copy."""
        clone = TrafficMatrix()
        clone._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return clone

    @classmethod
    def from_pairs(cls, pairs: Iterator[Tuple[int, int, float]]) -> "TrafficMatrix":
        """Build a matrix from (u, v, rate) triples (rates accumulate)."""
        matrix = cls()
        for u, v, rate in pairs:
            matrix.add_rate(u, v, rate)
        return matrix

    @classmethod
    def from_pair_arrays(cls, us, vs, rates) -> "TrafficMatrix":
        """Bulk-build from canonical pair arrays: unique pairs, u < v,
        rate > 0.

        The vectorized sibling of :meth:`from_pairs` for inputs that are
        already in :meth:`pair_arrays` form — one grouped numpy pass plus
        a C-speed ``dict(zip(...))`` per source VM instead of two dict
        probes per pair.  The sharded coordinator builds hundreds of
        per-domain matrices from slices of the global pair arrays through
        this path.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        rates = np.asarray(rates, dtype=float)
        if not (us.shape == vs.shape == rates.shape) or us.ndim != 1:
            raise ValueError("us/vs/rates must be equal-length 1-d arrays")
        matrix = cls()
        if us.size == 0:
            return matrix
        if not (us < vs).all():
            raise ValueError("pairs must be canonical: u < v for every pair")
        if not (rates > 0.0).all():
            raise ValueError("rates must be > 0 (zero pairs are absent)")
        src = np.concatenate([us, vs])
        dst = np.concatenate([vs, us])
        both = np.concatenate([rates, rates])
        order = np.argsort(src, kind="stable")
        src, dst, both = src[order], dst[order], both[order]
        uniq, starts = np.unique(src, return_index=True)
        bounds = np.append(starts, src.size).tolist()
        dst_list = dst.tolist()
        rate_list = both.tolist()
        adj = matrix._adj
        for i, u in enumerate(uniq.tolist()):
            lo, hi = bounds[i], bounds[i + 1]
            row = dict(zip(dst_list[lo:hi], rate_list[lo:hi]))
            if len(row) != hi - lo:
                raise ValueError(
                    f"duplicate pairs for VM {u}; from_pair_arrays needs "
                    "unique pairs (accumulate duplicates via from_pairs)"
                )
            adj[u] = row
        matrix._version = 1
        cached = (us.copy(), vs.copy(), rates.copy())
        for array in cached:
            array.setflags(write=False)
        matrix._pair_cache = (*cached, matrix._version)
        return matrix

    def __len__(self) -> int:
        return self.n_pairs

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(pairs={self.n_pairs}, "
            f"vms={len(self._adj)}, total={self.total_rate():.3g} B/s)"
        )
