"""Flow-level traffic model: the elephant/mice long tail.

DC measurement studies (Kandula IMC'09, Benson IMC'10, cited throughout the
paper) report that *mice* flows dominate flow counts while a small set of
*elephant* flows carries most of the bytes.  S-CORE exploits exactly this:
averaging bytes over a window surfaces the elephants, whose endpoints are
then migrated together (§V-C "Load Balancing Considerations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive, check_probability


@dataclass(frozen=True)
class Flow:
    """One transport flow between two VMs.

    Attributes
    ----------
    src_vm, dst_vm:
        Endpoint VM IDs.
    size_bytes:
        Total bytes carried over the flow's lifetime.
    start_time, duration_s:
        Activity interval in seconds; rate = size / duration.
    """

    src_vm: int
    dst_vm: int
    size_bytes: float
    start_time: float = 0.0
    duration_s: float = 1.0

    def __post_init__(self) -> None:
        if self.src_vm == self.dst_vm:
            raise ValueError(f"flow endpoints must differ, got VM {self.src_vm} twice")
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")

    @property
    def rate_bps(self) -> float:
        """Average rate in bytes per second over the flow's lifetime."""
        return self.size_bytes / self.duration_s

    @property
    def end_time(self) -> float:
        """Completion time of the flow."""
        return self.start_time + self.duration_s

    @property
    def is_elephant(self) -> bool:
        """Conventional elephant threshold: more than 10 MB."""
        return self.size_bytes > 10 * 2**20


class FlowSizeDistribution:
    """Two-component long-tailed flow-size mixture.

    With probability ``1 - elephant_fraction`` a flow is a *mouse* drawn
    from a log-normal centred on tens of kilobytes; otherwise it is an
    *elephant* drawn from a Pareto with tail index ``alpha`` starting at
    ``elephant_min_bytes``.  Defaults yield ~90% mice by count with
    elephants carrying the large majority of bytes, matching the published
    measurements.
    """

    def __init__(
        self,
        elephant_fraction: float = 0.1,
        mouse_median_bytes: float = 20e3,
        mouse_sigma: float = 1.0,
        elephant_min_bytes: float = 10 * 2**20,
        alpha: float = 1.5,
    ) -> None:
        check_probability("elephant_fraction", elephant_fraction)
        check_positive("mouse_median_bytes", mouse_median_bytes)
        check_positive("mouse_sigma", mouse_sigma)
        check_positive("elephant_min_bytes", elephant_min_bytes)
        check_positive("alpha", alpha)
        self._elephant_fraction = elephant_fraction
        self._mouse_mu = float(np.log(mouse_median_bytes))
        self._mouse_sigma = mouse_sigma
        self._elephant_min = elephant_min_bytes
        self._alpha = alpha

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` flow sizes in bytes."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        is_elephant = rng.random(count) < self._elephant_fraction
        sizes = rng.lognormal(self._mouse_mu, self._mouse_sigma, count)
        n_elephants = int(is_elephant.sum())
        if n_elephants:
            # Pareto: min * (1/U)^(1/alpha)
            u = rng.random(n_elephants)
            sizes[is_elephant] = self._elephant_min * (1.0 / u) ** (1.0 / self._alpha)
        return sizes


def generate_flows(
    pairs: Sequence[Tuple[int, int]],
    flows_per_pair: int,
    window_s: float,
    seed: SeedLike = None,
    size_distribution: Optional[FlowSizeDistribution] = None,
) -> List[Flow]:
    """Generate a flow population over the given communicating pairs.

    Each pair receives ``flows_per_pair`` flows with long-tailed sizes,
    uniformly random start times in ``[0, window_s)``, and durations chosen
    so that mice complete quickly while elephants persist.
    """
    check_positive("window_s", window_s)
    if flows_per_pair <= 0:
        raise ValueError(f"flows_per_pair must be > 0, got {flows_per_pair}")
    rng = make_rng(seed)
    dist = size_distribution or FlowSizeDistribution()
    flows: List[Flow] = []
    for src, dst in pairs:
        sizes = dist.sample(rng, flows_per_pair)
        starts = rng.random(flows_per_pair) * window_s
        for size, start in zip(sizes, starts):
            # Duration heuristic: mice finish in O(100ms); elephants are
            # paced around 10 MB/s so they span a noticeable part of the
            # window, as real elephants do.
            if size > 10 * 2**20:
                duration = max(0.5, float(size) / 10e6)
            else:
                duration = 0.1
            duration = min(duration, window_s)
            flows.append(
                Flow(
                    src_vm=src,
                    dst_vm=dst,
                    size_bytes=float(size),
                    start_time=float(start),
                    duration_s=duration,
                )
            )
    return flows


def flows_to_matrix(flows: Iterable[Flow], window_s: float) -> TrafficMatrix:
    """Aggregate flows into average pairwise rates over a window.

    This is exactly what the dom0 throughput-calculation step does (§V-B3):
    sum bytes per communicating pair, divide by the measurement window.
    """
    check_positive("window_s", window_s)
    matrix = TrafficMatrix()
    for flow in flows:
        matrix.add_rate(flow.src_vm, flow.dst_vm, flow.size_bytes / window_s)
    return matrix


def byte_share_of_elephants(flows: Sequence[Flow]) -> float:
    """Fraction of total bytes carried by elephant flows."""
    total = sum(flow.size_bytes for flow in flows)
    if total == 0:
        return 0.0
    heavy = sum(flow.size_bytes for flow in flows if flow.is_elephant)
    return heavy / total
