"""Temporal rate estimation and slowly-drifting workloads.

Paper §IV: "Traffic load λ(u, v) can be captured dynamically by monitoring
incoming and outgoing traffic between VMs u and v, averaged over a given
time interval … the size of the time window can be set on the order of
minutes to hours."  The estimators here implement that averaging; the
:class:`HotspotDriftProcess` models the cited measurement finding that "DC
traffic exhibits fixed-set hotspots that change slowly over time", which is
what makes S-CORE stable (§VI-B, VM-oscillation discussion).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Iterator, List, Tuple

from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive, check_probability


def _pair(vm_u: int, vm_v: int) -> Tuple[int, int]:
    if vm_u == vm_v:
        raise ValueError(f"self-traffic is not modelled (VM {vm_u})")
    return (vm_u, vm_v) if vm_u < vm_v else (vm_v, vm_u)


class SlidingWindowRateEstimator:
    """Average pairwise rate over a fixed trailing window.

    ``record`` logs byte counts with timestamps; ``rate(u, v, now)``
    divides the bytes observed inside ``[now - window, now]`` by the window
    length.  Old samples are evicted lazily.
    """

    def __init__(self, window_s: float) -> None:
        check_positive("window_s", window_s)
        self._window = window_s
        self._samples: Dict[Tuple[int, int], Deque[Tuple[float, float]]] = {}

    @property
    def window_s(self) -> float:
        """Averaging-window length in seconds."""
        return self._window

    def record(self, vm_u: int, vm_v: int, n_bytes: float, timestamp: float) -> None:
        """Log ``n_bytes`` exchanged between u and v at ``timestamp``."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        self._samples.setdefault(_pair(vm_u, vm_v), deque()).append(
            (timestamp, n_bytes)
        )

    def rate(self, vm_u: int, vm_v: int, now: float) -> float:
        """Average rate (bytes/s) over the trailing window ending at ``now``."""
        key = _pair(vm_u, vm_v)
        queue = self._samples.get(key)
        if not queue:
            return 0.0
        horizon = now - self._window
        while queue and queue[0][0] < horizon:
            queue.popleft()
        total = sum(n for ts, n in queue if ts <= now)
        return total / self._window

    def snapshot(self, now: float) -> TrafficMatrix:
        """Materialize the current estimates into a :class:`TrafficMatrix`."""
        matrix = TrafficMatrix()
        for (u, v) in list(self._samples):
            rate = self.rate(u, v, now)
            if rate > 0:
                matrix.set_rate(u, v, rate)
        return matrix


class EwmaRateEstimator:
    """Exponentially-weighted moving average of pairwise rates.

    A cheaper alternative to the sliding window: ``update`` folds each new
    interval's observed rate into the estimate with weight ``alpha``.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        check_probability("alpha", alpha)
        if alpha == 0.0:
            raise ValueError("alpha must be > 0 or the estimate never updates")
        self._alpha = alpha
        self._estimates: Dict[Tuple[int, int], float] = {}

    def update(self, vm_u: int, vm_v: int, interval_rate: float) -> float:
        """Fold one interval's observed rate in; returns the new estimate."""
        if interval_rate < 0:
            raise ValueError(f"interval_rate must be >= 0, got {interval_rate}")
        key = _pair(vm_u, vm_v)
        previous = self._estimates.get(key)
        if previous is None:
            estimate = interval_rate
        else:
            estimate = self._alpha * interval_rate + (1 - self._alpha) * previous
        self._estimates[key] = estimate
        return estimate

    def rate(self, vm_u: int, vm_v: int) -> float:
        """Current smoothed estimate for the pair."""
        return self._estimates.get(_pair(vm_u, vm_v), 0.0)

    def snapshot(self) -> TrafficMatrix:
        """Materialize current estimates into a :class:`TrafficMatrix`."""
        matrix = TrafficMatrix()
        for (u, v), rate in self._estimates.items():
            if rate > 0:
                matrix.set_rate(u, v, rate)
        return matrix


class HotspotDriftProcess:
    """A traffic-matrix sequence whose hotspots drift slowly.

    Starting from a base matrix, each step perturbs per-pair rates with
    bounded multiplicative noise and, with small probability
    ``redirect_prob`` per step, re-targets one heavy pair to a new peer —
    modelling slow hotspot churn.  Used by the stability experiments to
    confirm that S-CORE does not oscillate under realistic dynamics.
    """

    def __init__(
        self,
        base: TrafficMatrix,
        noise: float = 0.1,
        redirect_prob: float = 0.05,
        seed: SeedLike = None,
    ) -> None:
        check_probability("redirect_prob", redirect_prob)
        if not 0 <= noise < 1:
            raise ValueError(f"noise must be in [0, 1), got {noise}")
        self._current = base.copy()
        self._noise = noise
        self._redirect_prob = redirect_prob
        self._rng = make_rng(seed)

    @property
    def current(self) -> TrafficMatrix:
        """The current matrix (do not mutate; copy if needed)."""
        return self._current

    def step(self) -> TrafficMatrix:
        """Advance one interval and return the new matrix."""
        self.step_delta()
        return self._current.copy()

    def step_delta(self) -> List[Tuple[int, int, float]]:
        """Advance one interval and return the λ changes as a delta.

        The epoch-transition form of :meth:`step`: the same RNG stream,
        the same resulting matrix (:attr:`current` advances in place),
        but the return value is the ``(u, v, new_rate)`` change list a
        delta-path consumer (``SCOREScheduler.apply_traffic_delta``)
        feeds to the engine without rebuilding anything.  A redirected
        pair appears with rate 0 and its new target with the merged rate.
        """
        rng = self._rng
        pairs = list(self._current.pairs())
        if not pairs:
            return []
        updated = TrafficMatrix()
        for u, v, rate in pairs:
            jitter = 1.0 + self._noise * (2 * rng.random() - 1.0)
            updated.set_rate(u, v, rate * jitter)
        changed: Dict[Tuple[int, int], float] = {
            _pair(u, v): rate for u, v, rate in updated.pairs()
        }
        if rng.random() < self._redirect_prob:
            # Move the heaviest pair's traffic to a new random peer.
            u, v, rate = max(pairs, key=lambda p: p[2])
            vms = list(updated.vms_with_traffic)
            candidate = vms[int(rng.integers(0, len(vms)))]
            if candidate not in (u, v):
                updated.set_rate(u, v, 0.0)
                updated.add_rate(u, candidate, rate)
                changed[_pair(u, v)] = 0.0
                changed[_pair(u, candidate)] = updated.rate(u, candidate)
        self._current = updated
        return [(u, v, rate) for (u, v), rate in changed.items()]

    def run(self, steps: int) -> Iterator[TrafficMatrix]:
        """Yield ``steps`` successive matrices."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            yield self.step()


class DiurnalDriftProcess:
    """Sinusoidal day/night load swings over two counter-phased regions.

    DC measurement studies report strong diurnal periodicity: user-facing
    services peak in the day, batch/backup traffic at night.  Pairs are
    split into two fixed groups by endpoint parity; group A's rates scale
    by ``1 + amplitude·sin(2π·t/period)`` and group B by the opposite
    phase, so the *relative* hotspot structure shifts every epoch while
    total load stays roughly level.  Fully deterministic (no RNG) — the
    same base matrix always yields the same trajectory.
    """

    def __init__(
        self,
        base: TrafficMatrix,
        amplitude: float = 0.5,
        period_epochs: int = 8,
    ) -> None:
        if not 0 <= amplitude < 1:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        check_positive("period_epochs", period_epochs)
        self._base = base.copy()
        self._current = base.copy()
        self._amplitude = amplitude
        self._period = period_epochs
        self._epoch = 0

    @property
    def current(self) -> TrafficMatrix:
        """The current matrix (do not mutate; copy if needed)."""
        return self._current

    def step_delta(self) -> List[Tuple[int, int, float]]:
        """Advance one epoch; return the (u, v, new_rate) change list."""
        self._epoch += 1
        swing = self._amplitude * math.sin(
            2.0 * math.pi * self._epoch / self._period
        )
        changed: List[Tuple[int, int, float]] = []
        for u, v, rate in self._base.pairs():
            factor = 1.0 + swing if (u + v) % 2 == 0 else 1.0 - swing
            new_rate = rate * factor
            if new_rate != self._current.rate(u, v):
                changed.append((u, v, new_rate))
        self._current.apply_delta(changed)
        return changed

    def step(self) -> TrafficMatrix:
        """Advance one epoch and return a copy of the new matrix."""
        self.step_delta()
        return self._current.copy()


class HotspotFlipDrift:
    """A one-shot hotspot relocation: the heavy pairs re-target at once.

    Models the adversarial end of the paper's "hotspots change slowly"
    premise: at ``flip_epoch`` the ``top_pairs`` heaviest pairs all
    redirect their traffic to fresh partners simultaneously (a service
    re-shard, a failover).  Every other epoch is a no-op, so the delta
    path's structural add/remove handling is exercised in isolation.
    """

    def __init__(
        self,
        base: TrafficMatrix,
        flip_epoch: int = 2,
        top_pairs: int = 8,
        seed: SeedLike = None,
    ) -> None:
        check_positive("flip_epoch", flip_epoch)
        check_positive("top_pairs", top_pairs)
        self._current = base.copy()
        self._flip_epoch = flip_epoch
        self._top_pairs = top_pairs
        self._rng = make_rng(seed)
        self._epoch = 0

    @property
    def current(self) -> TrafficMatrix:
        """The current matrix (do not mutate; copy if needed)."""
        return self._current

    def step_delta(self) -> List[Tuple[int, int, float]]:
        """Advance one epoch; non-flip epochs return an empty delta."""
        self._epoch += 1
        if self._epoch != self._flip_epoch:
            return []
        pairs = sorted(self._current.pairs(), key=lambda p: (-p[2], p[0], p[1]))
        heavy = pairs[: self._top_pairs]
        vms = sorted(self._current.vms_with_traffic)
        if not heavy or len(vms) < 3:
            return []
        # Zero every heavy pair first, then merge the redirected rates:
        # interleaving the two would let a later zeroing wipe out traffic
        # an earlier redirect just landed on that pair (load must be
        # conserved across the flip).
        changed: Dict[Tuple[int, int], float] = {
            _pair(u, v): 0.0 for u, v, _ in heavy
        }
        for u, v, rate in heavy:
            partner = int(vms[int(self._rng.integers(0, len(vms)))])
            if partner in (u, v):
                partner = next(x for x in vms if x not in (u, v))
            key = _pair(u, partner)
            base_rate = changed.get(key, self._current.rate(u, partner))
            changed[key] = base_rate + rate
        delta = [(u, v, rate) for (u, v), rate in changed.items()]
        self._current.apply_delta(delta)
        return delta

    def step(self) -> TrafficMatrix:
        """Advance one epoch and return a copy of the new matrix."""
        self.step_delta()
        return self._current.copy()
