"""Temporal rate estimation and slowly-drifting workloads.

Paper §IV: "Traffic load λ(u, v) can be captured dynamically by monitoring
incoming and outgoing traffic between VMs u and v, averaged over a given
time interval … the size of the time window can be set on the order of
minutes to hours."  The estimators here implement that averaging; the
:class:`HotspotDriftProcess` models the cited measurement finding that "DC
traffic exhibits fixed-set hotspots that change slowly over time", which is
what makes S-CORE stable (§VI-B, VM-oscillation discussion).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Tuple

from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive, check_probability


def _pair(vm_u: int, vm_v: int) -> Tuple[int, int]:
    if vm_u == vm_v:
        raise ValueError(f"self-traffic is not modelled (VM {vm_u})")
    return (vm_u, vm_v) if vm_u < vm_v else (vm_v, vm_u)


class SlidingWindowRateEstimator:
    """Average pairwise rate over a fixed trailing window.

    ``record`` logs byte counts with timestamps; ``rate(u, v, now)``
    divides the bytes observed inside ``[now - window, now]`` by the window
    length.  Old samples are evicted lazily.
    """

    def __init__(self, window_s: float) -> None:
        check_positive("window_s", window_s)
        self._window = window_s
        self._samples: Dict[Tuple[int, int], Deque[Tuple[float, float]]] = {}

    @property
    def window_s(self) -> float:
        """Averaging-window length in seconds."""
        return self._window

    def record(self, vm_u: int, vm_v: int, n_bytes: float, timestamp: float) -> None:
        """Log ``n_bytes`` exchanged between u and v at ``timestamp``."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        self._samples.setdefault(_pair(vm_u, vm_v), deque()).append(
            (timestamp, n_bytes)
        )

    def rate(self, vm_u: int, vm_v: int, now: float) -> float:
        """Average rate (bytes/s) over the trailing window ending at ``now``."""
        key = _pair(vm_u, vm_v)
        queue = self._samples.get(key)
        if not queue:
            return 0.0
        horizon = now - self._window
        while queue and queue[0][0] < horizon:
            queue.popleft()
        total = sum(n for ts, n in queue if ts <= now)
        return total / self._window

    def snapshot(self, now: float) -> TrafficMatrix:
        """Materialize the current estimates into a :class:`TrafficMatrix`."""
        matrix = TrafficMatrix()
        for (u, v) in list(self._samples):
            rate = self.rate(u, v, now)
            if rate > 0:
                matrix.set_rate(u, v, rate)
        return matrix


class EwmaRateEstimator:
    """Exponentially-weighted moving average of pairwise rates.

    A cheaper alternative to the sliding window: ``update`` folds each new
    interval's observed rate into the estimate with weight ``alpha``.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        check_probability("alpha", alpha)
        if alpha == 0.0:
            raise ValueError("alpha must be > 0 or the estimate never updates")
        self._alpha = alpha
        self._estimates: Dict[Tuple[int, int], float] = {}

    def update(self, vm_u: int, vm_v: int, interval_rate: float) -> float:
        """Fold one interval's observed rate in; returns the new estimate."""
        if interval_rate < 0:
            raise ValueError(f"interval_rate must be >= 0, got {interval_rate}")
        key = _pair(vm_u, vm_v)
        previous = self._estimates.get(key)
        if previous is None:
            estimate = interval_rate
        else:
            estimate = self._alpha * interval_rate + (1 - self._alpha) * previous
        self._estimates[key] = estimate
        return estimate

    def rate(self, vm_u: int, vm_v: int) -> float:
        """Current smoothed estimate for the pair."""
        return self._estimates.get(_pair(vm_u, vm_v), 0.0)

    def snapshot(self) -> TrafficMatrix:
        """Materialize current estimates into a :class:`TrafficMatrix`."""
        matrix = TrafficMatrix()
        for (u, v), rate in self._estimates.items():
            if rate > 0:
                matrix.set_rate(u, v, rate)
        return matrix


class HotspotDriftProcess:
    """A traffic-matrix sequence whose hotspots drift slowly.

    Starting from a base matrix, each step perturbs per-pair rates with
    bounded multiplicative noise and, with small probability
    ``redirect_prob`` per step, re-targets one heavy pair to a new peer —
    modelling slow hotspot churn.  Used by the stability experiments to
    confirm that S-CORE does not oscillate under realistic dynamics.
    """

    def __init__(
        self,
        base: TrafficMatrix,
        noise: float = 0.1,
        redirect_prob: float = 0.05,
        seed: SeedLike = None,
    ) -> None:
        check_probability("redirect_prob", redirect_prob)
        if not 0 <= noise < 1:
            raise ValueError(f"noise must be in [0, 1), got {noise}")
        self._current = base.copy()
        self._noise = noise
        self._redirect_prob = redirect_prob
        self._rng = make_rng(seed)

    @property
    def current(self) -> TrafficMatrix:
        """The current matrix (do not mutate; copy if needed)."""
        return self._current

    def step(self) -> TrafficMatrix:
        """Advance one interval and return the new matrix."""
        rng = self._rng
        pairs = list(self._current.pairs())
        if not pairs:
            return self._current.copy()
        updated = TrafficMatrix()
        for u, v, rate in pairs:
            jitter = 1.0 + self._noise * (2 * rng.random() - 1.0)
            updated.set_rate(u, v, rate * jitter)
        if rng.random() < self._redirect_prob:
            # Move the heaviest pair's traffic to a new random peer.
            u, v, rate = max(pairs, key=lambda p: p[2])
            vms = list(updated.vms_with_traffic)
            candidate = vms[int(rng.integers(0, len(vms)))]
            if candidate not in (u, v):
                updated.set_rate(u, v, 0.0)
                updated.add_rate(u, candidate, rate)
        self._current = updated
        return updated.copy()

    def run(self, steps: int) -> Iterator[TrafficMatrix]:
        """Yield ``steps`` successive matrices."""
        if steps < 0:
            raise ValueError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            yield self.step()
