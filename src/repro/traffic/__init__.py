"""DC traffic modelling (paper §VI and the measurement studies it cites).

The S-CORE cost function consumes pairwise average rates λ(u, v) between
VMs; this package provides:

:class:`TrafficMatrix`
    A sparse, symmetric pairwise-rate structure with fast per-VM peer
    queries (the paper's ``V_u``) and ToR-level aggregation (for Fig. 3a-c
    style heatmaps).
:class:`DCTrafficGenerator`
    Synthetic workload generator reproducing the published DC traffic
    characteristics: sparse ToR matrices with few hotspots, and long-tailed
    flow sizes where mice dominate counts and elephants dominate bytes
    (Kandula et al. IMC'09, Benson et al. IMC'10).
:mod:`repro.traffic.flows`
    Individual flow model + the elephant/mice size mixture.
:mod:`repro.traffic.temporal`
    Sliding-window and EWMA rate estimators (§IV requires averaging over a
    window "on the order of minutes to hours") and a slowly-drifting
    hotspot process for stability experiments.
"""

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.generator import (
    DCTrafficGenerator,
    TrafficPattern,
    DENSE,
    MEDIUM,
    SPARSE,
)
from repro.traffic.flows import Flow, FlowSizeDistribution, flows_to_matrix
from repro.traffic.temporal import (
    DiurnalDriftProcess,
    EwmaRateEstimator,
    HotspotDriftProcess,
    HotspotFlipDrift,
    SlidingWindowRateEstimator,
)

__all__ = [
    "TrafficMatrix",
    "DCTrafficGenerator",
    "TrafficPattern",
    "SPARSE",
    "MEDIUM",
    "DENSE",
    "Flow",
    "FlowSizeDistribution",
    "flows_to_matrix",
    "EwmaRateEstimator",
    "SlidingWindowRateEstimator",
    "DiurnalDriftProcess",
    "HotspotDriftProcess",
    "HotspotFlipDrift",
]
