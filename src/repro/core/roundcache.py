"""Persistent per-owner round-score cache (dirty-owner invalidation).

S-CORE's token protocol is local by design: a hold's decision depends
only on the holding VM's peers, its source host and its candidate
targets (Algorithm 1 / Lemma 3).  The wave-batched round engine
(:mod:`repro.core.rounds`) therefore does not need to re-score every
owner every round — a scored candidate row stays exact until something
in its *dependency footprint* changes:

* the owner itself migrates (its source host and probing order change),
* one of its communication peers migrates (every Lemma 3 term references
  peer placement, and the candidate set is built from peer racks),
* a λ on one of its incident pairs changes (rates weight every term),
* the dense VM index is remapped by churn (arrivals/departures).

Host-side state — free slots, RAM, CPU, egress — is deliberately *not*
part of the scored footprint: capacity never enters a Lemma 3 delta, and
feasibility is re-probed from the engine's live mirrors at every use.

:class:`RoundScoreCache` keeps one scored candidate CSR over the whole
VM population, owned by the :class:`~repro.core.fastcost.FastCostEngine`
and invalidated through the engine's mutation paths
(``apply_moves``/``apply_migration`` via each move's
:class:`~repro.core.fastcost.TouchedSet`, ``apply_traffic_delta`` for λ
changes, ``add_vms``/``remove_vms`` flush on dense-index remaps).  At
every round start :meth:`refresh` re-scores *only the dirty owners* —
one ``candidate_batch`` call over the stale subset — and splices the
fresh segments into the cached CSR.  Because a batched score is
computed per owner from that owner's own edges alone, the spliced result
is bit-for-bit the batch a full re-score would produce, which is what
lets the cached round trajectory equal the uncached one exactly
(``tests/test_round_cache.py`` pins this, and ``docs/engine.md``
documents the invalidation rules).

The cache survives across rounds, runs and epochs: late convergence
iterations (few migrations, mostly-clean owners) and steady-state
scenario epochs degrade into near-no-op sparse re-scores.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.fastcost import CandidateBatch, FastCostEngine, TouchedSet


def segment_rows(ptr: np.ndarray, owners: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(flat row indices, segment ptr) of the given owners' CSR segments.

    The standard expansion: ``rows`` walks each owner's ``ptr[i]:ptr[i+1]``
    slice in order, ``seg_ptr`` delimits them in the output.
    """
    owners = np.asarray(owners, dtype=np.int64)
    counts = (ptr[owners + 1] - ptr[owners]).astype(np.int64)
    seg_ptr = np.zeros(len(owners) + 1, dtype=np.int64)
    np.cumsum(counts, out=seg_ptr[1:])
    rows = np.repeat(ptr[owners] - seg_ptr[:-1], counts) + np.arange(
        int(seg_ptr[-1])
    )
    return rows, seg_ptr


class DecisionState:
    """Per-owner decisions carried *across* rounds and epochs.

    The cached wave loop maintains, for every owner: its chosen row and
    best gain, the live exact-tie pool, the shadow index of blocked rows
    that could matter if their host frees, and the per-host feasibility
    vector.  ``stale_decision`` is the owner-granular invalidation mark:
    it is set exactly when something that could change the owner's
    carried decision happened while the owner was not being maintained —
    a tie row's host filled after the owner settled, or a host holding a
    qualifying shadow row freed.  The next round start re-evaluates
    marked and re-scored owners and keeps everything else, which turns a
    mostly-converged round into a sparse re-score instead of a full
    O(rows) evaluation.
    """

    __slots__ = (
        "choice",
        "best",
        "pool_rows",
        "pool_owner",
        "pool_hosts",
        "pool_hkeys",
        "shadow",
        "shadow_hosts",
        "in_shadow",
        "host_ok",
        "stale_decision",
        "row_owner",
        "owner_pods",
    )

    def __init__(self, n: int, n_hosts: int) -> None:
        self.choice = np.full(n, -1, dtype=np.int64)
        self.best = np.full(n, -np.inf)
        self.pool_rows = np.empty(0, dtype=np.int64)
        self.pool_owner = np.empty(0, dtype=np.int64)
        #: Host of each pool row at insertion time (survives in-place
        #: re-scores, so deletions can always reconstruct their keys).
        self.pool_hosts = np.empty(0, dtype=np.int64)
        #: The host-keyed pool order (``host << 40 | row``), or None when
        #: a splice renumbered rows and the index must be rebuilt.
        self.pool_hkeys: Optional[np.ndarray] = None
        self.shadow = np.empty(0, dtype=np.int64)
        self.shadow_hosts = np.empty(0, dtype=np.int64)
        self.in_shadow: Optional[np.ndarray] = None
        self.host_ok: Optional[np.ndarray] = None
        self.stale_decision = np.zeros(n, dtype=bool)
        self.row_owner: Optional[np.ndarray] = None
        self.owner_pods: Optional[np.ndarray] = None

    def remap_rows(
        self,
        old_ptr: np.ndarray,
        new_ptr: np.ndarray,
        dirty_mask: np.ndarray,
        n_pairs: int,
    ) -> None:
        """Re-key the carried row ids after a refresh splice.

        Clean owners keep their within-segment offsets, so their rows
        shift by the per-owner segment displacement; dirty owners' rows
        are dropped (they are re-evaluated from the fresh scores).
        """
        shift = new_ptr[:-1] - old_ptr[:-1]
        keep = ~dirty_mask[self.pool_owner]
        self.pool_rows = self.pool_rows[keep] + shift[self.pool_owner[keep]]
        self.pool_hosts = self.pool_hosts[keep]
        self.pool_owner = self.pool_owner[keep]
        self.pool_hkeys = None  # rows renumbered; rebuilt on demand
        if self.shadow.size:
            shadow_owner = (
                np.searchsorted(old_ptr, self.shadow, side="right") - 1
            )
            keep = ~dirty_mask[shadow_owner]
            self.shadow = self.shadow[keep] + shift[shadow_owner[keep]]
            self.shadow_hosts = self.shadow_hosts[keep]
        self.in_shadow = np.zeros(n_pairs, dtype=bool)
        self.in_shadow[self.shadow] = True
        self.row_owner = None  # rebuilt from the new CSR on demand


class RoundScoreCache:
    """One scored candidate CSR over the full population, owner-invalidated.

    Owned by a :class:`FastCostEngine` (``engine.round_cache()``); the
    engine's mutating ops call :meth:`invalidate_owners`/:meth:`flush`,
    and the cached round loop calls :meth:`refresh` once per round.
    ``decision_state`` additionally carries the loop's per-owner
    decisions across rounds (see :class:`DecisionState`).
    """

    def __init__(
        self, engine: FastCostEngine, max_candidates: Optional[int]
    ) -> None:
        self._engine = engine
        self.max_candidates = max_candidates
        self._valid: Optional[np.ndarray] = None
        # Scored CSR over the dense VM index (owner i == dense VM i).
        self._ptr: Optional[np.ndarray] = None
        self._host: Optional[np.ndarray] = None
        self._delta: Optional[np.ndarray] = None
        self._onto: Optional[np.ndarray] = None
        self._source: Optional[np.ndarray] = None
        self._degree: Optional[np.ndarray] = None
        self._total_rate: Optional[np.ndarray] = None
        #: Cross-round decision carry (None until the cached loop builds
        #: it, and whenever a full re-score drops it).
        self.decision_state: Optional[DecisionState] = None
        # Hit-rate accounting (read by --profile and the bench suite).
        self.refreshes = 0
        self.owners_seen = 0
        self.owners_rescored = 0
        # Hybrid-splice accounting: dirty owners whose fresh scores were
        # scattered into their existing segments vs spliced (renumbering).
        self.owners_scattered = 0
        self.owners_spliced = 0

    # -- invalidation --------------------------------------------------------

    def flush(self) -> None:
        """Drop everything (dense-index remap, rebuild, rebinding)."""
        self._valid = None
        self.decision_state = None

    def invalidate_owners(self, dense_owners: np.ndarray) -> None:
        """Mark the given owners' scored rows stale."""
        if self._valid is not None:
            self._valid[dense_owners] = False

    def invalidate_decisions(self) -> None:
        """Drop only the cross-round decision carry, keeping scored rows.

        Mid-round structural churn (an injected arrival, retirement,
        capacity change or traffic delta) invalidates the round engine's
        in-flight incremental decision structures, but the persistent
        scored rows stay correct as long as the mutation itself routed
        through the engine's footprint invalidation (``apply_moves``,
        ``apply_traffic_delta``, splices).  This is the hook for exactly
        that case: the next round re-evaluates every owner's decision
        from its (mostly cached) scored rows instead of rebuilding them.
        """
        self.decision_state = None

    @property
    def hit_ratio(self) -> float:
        """Fraction of owner evaluations answered from cache so far."""
        if self.owners_seen == 0:
            return 0.0
        return 1.0 - self.owners_rescored / self.owners_seen

    # -- refresh -------------------------------------------------------------

    def refresh(self) -> Tuple[CandidateBatch, np.ndarray]:
        """Re-score the dirty owners and return the full-population batch.

        Returns ``(batch, dirty)``: the batch's arrays are the cache's
        own (zero copy), with ``vms[i] == i`` over the dense index, and
        ``dirty`` the owners that were re-scored (the loop re-evaluates
        exactly those).  A carried :class:`DecisionState` is row-remapped
        across a splice and dropped on a full re-score.  The round
        engine may correct rows of owners whose peers move mid-round in
        place: those owners are invalidated by the very ``apply_moves``
        that moved the peers, so a mutated row is always re-scored
        before its next round.
        """
        engine = self._engine
        n = engine.snapshot.n_vms
        self.refreshes += 1
        self.owners_seen += n
        if self._valid is None or len(self._valid) != n:
            self._adopt(
                engine.candidate_batch(
                    np.arange(n, dtype=np.int64), self.max_candidates
                )
            )
            self.decision_state = None
            self.owners_rescored += n
            return self._as_batch(), np.arange(n, dtype=np.int64)
        dirty = np.nonzero(~self._valid)[0]
        if dirty.size:
            fresh = engine.candidate_batch(dirty, self.max_candidates)
            if dirty.size == n:
                self._adopt(fresh)
                self.decision_state = None
            else:
                new_counts = fresh.ptr[1:] - fresh.ptr[:-1]
                old_counts = self._ptr[dirty + 1] - self._ptr[dirty]
                state = self.decision_state
                same = new_counts == old_counts
                if same.all():
                    # Candidate-set sizes unchanged (rate-only deltas,
                    # rack-local moves): scatter the fresh scores into
                    # the existing segments — no row renumbering, so
                    # carried row ids stay valid as-is.
                    rows, _ = segment_rows(self._ptr, dirty)
                    self._host[rows] = fresh.host
                    self._delta[rows] = fresh.delta
                    self._onto[rows] = fresh.onto_rate
                    self._source[dirty] = fresh.source
                    self._degree[dirty] = fresh.degree
                    self._total_rate[dirty] = fresh.total_rate
                    self.owners_scattered += int(dirty.size)
                else:
                    if same.any():
                        # Hybrid splice: owners whose candidate count is
                        # unchanged take the in-place scatter; only the
                        # changed-count subset pays the renumbering
                        # splice.  The scattered owners are marked valid
                        # *before* `_splice` runs so it copies their
                        # just-updated segments as clean ones.
                        keep = dirty[same]
                        dst_rows, _ = segment_rows(self._ptr, keep)
                        src_rows, _ = segment_rows(
                            fresh.ptr, np.nonzero(same)[0]
                        )
                        self._host[dst_rows] = fresh.host[src_rows]
                        self._delta[dst_rows] = fresh.delta[src_rows]
                        self._onto[dst_rows] = fresh.onto_rate[src_rows]
                        self._source[keep] = fresh.source[same]
                        self._degree[keep] = fresh.degree[same]
                        self._total_rate[keep] = fresh.total_rate[same]
                        self._valid[keep] = True
                        changed_pos = np.nonzero(~same)[0]
                        changed = dirty[changed_pos]
                        sub = fresh.select(changed_pos)
                    else:
                        changed = dirty
                        sub = fresh
                    old_ptr = self._ptr
                    self._splice(changed, sub)
                    if state is not None:
                        dirty_mask = np.zeros(n, dtype=bool)
                        dirty_mask[changed] = True
                        state.remap_rows(
                            old_ptr, self._ptr, dirty_mask, len(self._host)
                        )
                    self.owners_scattered += int(same.sum())
                    self.owners_spliced += int(changed.size)
                if state is not None and state.owner_pods is not None:
                    if fresh.n_pairs:
                        n_pods = state.owner_pods.shape[1]
                        hits = np.bincount(
                            fresh.owner * n_pods
                            + engine._pod_of[fresh.host],
                            minlength=len(dirty) * n_pods,
                        ).reshape(len(dirty), n_pods)
                        state.owner_pods[dirty] = hits > 0
                    else:
                        state.owner_pods[dirty] = False
            self._valid[dirty] = True
            self.owners_rescored += int(dirty.size)
        return self._as_batch(), dirty

    # -- internals -----------------------------------------------------------

    def _as_batch(self) -> CandidateBatch:
        n = len(self._degree)
        return CandidateBatch(
            vms=np.arange(n, dtype=np.int64),
            source=self._source,
            degree=self._degree,
            total_rate=self._total_rate,
            ptr=self._ptr,
            owner=None,
            host=self._host,
            delta=self._delta,
            onto_rate=self._onto,
        )

    def _adopt(self, batch: CandidateBatch) -> None:
        """Install a full-population batch wholesale."""
        n = batch.n_owners
        self._ptr = batch.ptr
        self._host = batch.host
        self._delta = batch.delta
        self._onto = batch.onto_rate
        self._source = batch.source
        self._degree = batch.degree
        self._total_rate = batch.total_rate
        self._valid = np.ones(n, dtype=bool)

    def _splice(self, dirty: np.ndarray, fresh: CandidateBatch) -> None:
        """Replace the dirty owners' segments with freshly scored ones.

        One gather per retained array: clean segments copy over from the
        old CSR, dirty segments from the fresh batch — per-owner scoring
        is deterministic and self-contained, so the spliced CSR is
        bit-identical to a full re-score.
        """
        old_ptr = self._ptr
        counts = (old_ptr[1:] - old_ptr[:-1]).astype(np.int64)
        counts[dirty] = fresh.ptr[1:] - fresh.ptr[:-1]
        n = len(counts)
        new_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=new_ptr[1:])
        total = int(new_ptr[-1])
        host = np.empty(total, dtype=self._host.dtype)
        delta = np.empty(total)
        onto = np.empty(total)

        clean = np.nonzero(self._valid)[0]
        src_rows, _ = segment_rows(old_ptr, clean)
        dst_rows, _ = segment_rows(new_ptr, clean)
        host[dst_rows] = self._host[src_rows]
        delta[dst_rows] = self._delta[src_rows]
        onto[dst_rows] = self._onto[src_rows]

        fresh_dst, _ = segment_rows(new_ptr, dirty)
        host[fresh_dst] = fresh.host
        delta[fresh_dst] = fresh.delta
        onto[fresh_dst] = fresh.onto_rate

        self._ptr = new_ptr
        self._host = host
        self._delta = delta
        self._onto = onto
        self._source[dirty] = fresh.source
        self._degree[dirty] = fresh.degree
        self._total_rate[dirty] = fresh.total_rate
