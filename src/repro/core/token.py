"""The migration token and its wire format (paper §V-A, §V-B2).

A token is "a message formed as an array of entries … a 32-bit VM ID
capable of representing over 4 billion IDs before recycling, and an 8-bit
communication level.  Entries are stored in ascending order by VM ID."
The wire encoding packs each entry as an unsigned 32-bit big-endian ID
followed by one level byte, which is exactly how the Xen implementation
ships it between dom0 token servers.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.cluster.vm import MAX_VM_ID

#: Highest communication level representable in the 8-bit entry field.
MAX_LEVEL_VALUE = 255

_ENTRY = struct.Struct("!IB")  # 32-bit VM ID + 8-bit level


@dataclass(frozen=True)
class TokenEntry:
    """One token entry: a VM ID and its recorded highest level estimate."""

    vm_id: int
    level: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.vm_id <= MAX_VM_ID:
            raise ValueError(f"vm_id must fit in 32 bits, got {self.vm_id}")
        if not 0 <= self.level <= MAX_LEVEL_VALUE:
            raise ValueError(f"level must fit in 8 bits, got {self.level}")


class Token:
    """The circulating migration token.

    Maintains the per-VM highest-communication-level estimates that the
    Highest-Level-First policy consults, keeps IDs in ascending order, and
    supports cyclic successor queries (the paper's ``u ⊕ 1``).
    """

    def __init__(self, vm_ids: Iterable[int]) -> None:
        ids = sorted(set(vm_ids))
        if not ids:
            raise ValueError("a token must carry at least one VM entry")
        for vm_id in (ids[0], ids[-1]):
            if not 0 <= vm_id <= MAX_VM_ID:
                raise ValueError(f"vm_id must fit in 32 bits, got {vm_id}")
        self._ids: List[int] = ids
        self._levels: Dict[int, int] = {vm_id: 0 for vm_id in ids}
        # Per-level sorted ID buckets (levels with no VMs are absent) plus a
        # mutation counter; what lets the Highest-Level-First policy find
        # level successors in O(log n) instead of scanning all IDs.
        self._buckets: Dict[int, List[int]] = {0: list(ids)}
        self._version = 0

    # -- entry access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, vm_id: int) -> bool:
        return vm_id in self._levels

    @property
    def vm_ids(self) -> Tuple[int, ...]:
        """All VM IDs in ascending order."""
        return tuple(self._ids)

    @property
    def lowest_id(self) -> int:
        """The paper's v0: the VM with the lowest ID."""
        return self._ids[0]

    def entries(self) -> Iterator[TokenEntry]:
        """Iterate entries in ascending ID order."""
        for vm_id in self._ids:
            yield TokenEntry(vm_id=vm_id, level=self._levels[vm_id])

    def level_of(self, vm_id: int) -> int:
        """Recorded highest-level estimate l_v for a VM."""
        return self._levels[vm_id]

    @property
    def version(self) -> int:
        """Counter bumped on every mutation (levels or membership).

        Policies maintaining derived indexes (e.g. the HLF unchecked
        buckets) compare it to detect out-of-band token mutations and
        rebuild instead of drifting.
        """
        return self._version

    def set_level(self, vm_id: int, level: int) -> None:
        """Overwrite a VM's recorded level (bounds-checked)."""
        if vm_id not in self._levels:
            raise KeyError(f"VM {vm_id} is not in the token")
        if not 0 <= level <= MAX_LEVEL_VALUE:
            raise ValueError(f"level must fit in 8 bits, got {level}")
        old = self._levels[vm_id]
        if old == level:
            return
        self._bucket_remove(old, vm_id)
        self._bucket_add(level, vm_id)
        self._levels[vm_id] = level
        self._version += 1

    def raise_level(self, vm_id: int, level: int) -> bool:
        """Record ``level`` only if it exceeds the stored estimate.

        This is Algorithm 1's update rule (`l_v ← l(u,v)` only when larger);
        returns whether an update happened.
        """
        if self._levels[vm_id] < level:
            self.set_level(vm_id, level)
            return True
        return False

    # -- membership management ---------------------------------------------------

    def add_vm(self, vm_id: int, level: int = 0) -> None:
        """Insert a (new) VM entry keeping ascending ID order."""
        if vm_id in self._levels:
            raise ValueError(f"VM {vm_id} is already in the token")
        if not 0 <= vm_id <= MAX_VM_ID:
            raise ValueError(f"vm_id must fit in 32 bits, got {vm_id}")
        if not 0 <= level <= MAX_LEVEL_VALUE:
            raise ValueError(f"level must fit in 8 bits, got {level}")
        insort(self._ids, vm_id)
        self._levels[vm_id] = level
        self._bucket_add(level, vm_id)
        self._version += 1

    def remove_vm(self, vm_id: int) -> None:
        """Drop a VM entry (e.g. the VM terminated)."""
        if vm_id not in self._levels:
            raise KeyError(f"VM {vm_id} is not in the token")
        if len(self._ids) == 1:
            raise ValueError("cannot remove the last entry of a token")
        index = bisect_left(self._ids, vm_id)
        del self._ids[index]
        self._bucket_remove(self._levels[vm_id], vm_id)
        del self._levels[vm_id]
        self._version += 1

    # -- circulation ----------------------------------------------------------------

    def successor(self, vm_id: int) -> int:
        """The paper's ``vm_id ⊕ 1``: next ID in ascending cyclic order.

        ``vm_id`` need not itself be in the token (the scan is by value),
        so the query remains valid right after an entry is removed.
        """
        index = bisect_right(self._ids, vm_id)
        if index == len(self._ids):
            index = 0
        return self._ids[index]

    def rotation_from(self, vm_id: int) -> List[int]:
        """The full token round starting at ``vm_id``, in visit order.

        This is the round-order *snapshot* the wave-batched scheduler
        consumes: the cyclic ascending-ID sequence a Round-Robin token
        would traverse over one iteration (``vm_id`` itself first when it
        is in the token, else its successor).  O(|V|) and allocation-free
        beyond the result list.
        """
        index = bisect_left(self._ids, vm_id)
        if index == len(self._ids):
            index = 0
        return self._ids[index:] + self._ids[:index]

    def set_levels(self, levels: Dict[int, int]) -> None:
        """Bulk-overwrite recorded level estimates (one version bump).

        The wave-batched HLF round uses this to refresh every entry from
        the measured highest levels at the end of a round instead of |V|
        single :meth:`set_level` calls; buckets are rebuilt wholesale.
        Unknown VM ids and out-of-range levels raise, leaving the token
        unchanged.
        """
        for vm_id, level in levels.items():
            if vm_id not in self._levels:
                raise KeyError(f"VM {vm_id} is not in the token")
            if not 0 <= level <= MAX_LEVEL_VALUE:
                raise ValueError(f"level must fit in 8 bits, got {level}")
        changed = False
        for vm_id, level in levels.items():
            if self._levels[vm_id] != level:
                self._levels[vm_id] = level
                changed = True
        if not changed:
            return
        buckets: Dict[int, List[int]] = {}
        for vm_id in self._ids:
            buckets.setdefault(self._levels[vm_id], []).append(vm_id)
        self._buckets = buckets
        self._version += 1

    def raise_levels(self, levels: Dict[int, int]) -> int:
        """Bulk raise-only update: Algorithm 1's rule over many entries.

        Each entry is raised to its given level only when that exceeds the
        stored estimate (``l_v ← l(u,v)`` only when larger) — what the
        wave-batched HLF round applies per wave instead of |settled| single
        :meth:`raise_level` calls.  One version bump when anything changed;
        unknown VM ids and out-of-range levels raise, leaving the token
        unchanged.  Returns the number of entries raised.
        """
        for vm_id, level in levels.items():
            if vm_id not in self._levels:
                raise KeyError(f"VM {vm_id} is not in the token")
            if not 0 <= level <= MAX_LEVEL_VALUE:
                raise ValueError(f"level must fit in 8 bits, got {level}")
        raised = 0
        for vm_id, level in levels.items():
            old = self._levels[vm_id]
            if old < level:
                self._bucket_remove(old, vm_id)
                self._bucket_add(level, vm_id)
                self._levels[vm_id] = level
                raised += 1
        if raised:
            self._version += 1
        return raised

    def vms_at_level(self, level: int) -> List[int]:
        """All VM IDs whose recorded estimate equals ``level`` (ascending).

        Served from the per-level bucket: O(bucket size), not O(|V|).
        """
        return list(self._buckets.get(level, ()))

    def max_recorded_level(self) -> int:
        """Highest level estimate currently recorded in the token."""
        return max(self._buckets)

    def levels_present(self) -> List[int]:
        """Levels that currently have at least one VM recorded (ascending)."""
        return sorted(self._buckets)

    # -- bucket maintenance -----------------------------------------------------

    def _bucket_add(self, level: int, vm_id: int) -> None:
        bucket = self._buckets.get(level)
        if bucket is None:
            self._buckets[level] = [vm_id]
        else:
            insort(bucket, vm_id)

    def _bucket_remove(self, level: int, vm_id: int) -> None:
        bucket = self._buckets[level]
        if len(bucket) == 1:
            del self._buckets[level]
        else:
            del bucket[bisect_left(bucket, vm_id)]

    # -- wire format --------------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to the §V-B2 wire format (per entry: u32 ID + u8 level)."""
        return b"".join(
            _ENTRY.pack(vm_id, self._levels[vm_id]) for vm_id in self._ids
        )

    @classmethod
    def decode(cls, payload: bytes) -> "Token":
        """Parse a token message; validates size and ascending ID order."""
        if len(payload) == 0 or len(payload) % _ENTRY.size != 0:
            raise ValueError(
                f"token payload must be a positive multiple of {_ENTRY.size} "
                f"bytes, got {len(payload)}"
            )
        token = cls.__new__(cls)
        token._ids = []
        token._levels = {}
        token._buckets = {}
        token._version = 0
        previous = -1
        for offset in range(0, len(payload), _ENTRY.size):
            vm_id, level = _ENTRY.unpack_from(payload, offset)
            if vm_id <= previous:
                raise ValueError(
                    "token entries must be in strictly ascending ID order"
                )
            previous = vm_id
            token._ids.append(vm_id)
            token._levels[vm_id] = level
            token._buckets.setdefault(level, []).append(vm_id)
        return token

    @property
    def wire_size(self) -> int:
        """Size in bytes of the encoded token (5 bytes per VM)."""
        return len(self._ids) * _ENTRY.size

    def __repr__(self) -> str:
        return f"Token(vms={len(self._ids)}, wire_size={self.wire_size}B)"
