"""Wave-batched token rounds: one S-CORE iteration, numpy end-to-end.

The reference control loop (`SCOREScheduler.run_reference`) circulates the
token hold by hold — ~|V| per-VM python/numpy round-trips per iteration.
When a policy can freeze its visit order at round start
(:meth:`repro.core.policies.TokenPolicy.round_order`), this module executes
the whole round in *waves* instead:

1. **Round snapshot.**  Every hold's candidate targets and Lemma 3 deltas
   are scored in one vectorized pass
   (:meth:`repro.core.fastcost.FastCostEngine.candidate_batch`).  The
   candidate *sets* are frozen for the round (the round-snapshot
   contract); delta values are kept exact across waves by incremental
   adjustment (see 4).
2. **Wave planning.**  Proposals are admitted greedily in descending-gain
   priority under the interference rule — no two migrations in a wave may
   share a source host, a target host, or a communication-peer relation —
   which makes every admitted move's delta, capacity probe and §V-C
   bandwidth probe exact regardless of application order within the wave.
   When a proposal's target host is already claimed, the planner may
   *retarget* it to another candidate with exactly the same delta (same-
   rack ties are pervasive), so equal-gain movers pack one wave instead
   of serializing; in an interference-free round no retargeting (and no
   deferral) ever happens, and the outcome is identical to the
   sequential loop's.
3. **Batched apply.**  Each wave lands as one batched allocation update
   (``Allocation.migrate_many``) plus one batched cache update
   (``FastCostEngine.apply_moves``).
4. **Deferral + re-evaluation.**  Proposals the wave could not admit are
   re-evaluated against the post-wave state: feasibility is re-masked
   from the engine's live mirrors every wave, and the deltas of every
   deferred VM with a *moved peer* are incrementally corrected (only the
   moved peers' terms change), so every applied delta is exact at its
   application time.  VMs without a beneficial move are settled when
   first evaluated.

A round therefore applies the same kind of strictly-improving, exactly-
accounted migrations as the sequential loop: when no decision interacts
with another the outcomes are identical, and when they do interact the
round still only applies exact positive deltas (``tests/test_wave_rounds``
pins both properties, plus the interference rule itself on live waves).

**Incremental round cache.**  With ``use_cache=True`` the engine runs the
same protocol against the :class:`~repro.core.roundcache.RoundScoreCache`
instead of a per-round throwaway batch: scored candidate rows persist
across waves, rounds and epochs, and each wave re-evaluates only the
owners inside its dependency footprint — owners with a moved peer (their
Lemma 3 terms changed) and owners holding a candidate in a rack whose
capacity state *flipped* (a filled pick, a freed strictly-better host).
Everything else keeps its cached decision untouched, which is exactly
what a full re-evaluation would recompute, so the cached trajectory is
bit-for-bit the uncached one (``tests/test_round_cache.py`` pins the
equivalence; the uncached loop survives as the reference path).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation, CapacityError
from repro.core.fastcost import CandidateBatch, FastCostEngine, pair_levels
from repro.core.migration import MigrationDecision, MigrationEngine
from repro.core.roundcache import segment_rows
from repro.traffic.matrix import TrafficMatrix


#: Reason strings indexed by the round engine's per-hold reason codes.
#: ``retired`` settles a hold whose VM left the allocation mid-round (an
#: injected departure): the hold is consumed without a decision.
_REASONS = ("no_peers", "no_feasible_target", "no_gain", "migrated", "retired")


class DecisionColumns:
    """Lazily materialized per-hold decision record (column arrays).

    Token rounds mint one decision per hold — tens of thousands per
    paper-scale iteration — so the hot loop writes flat columns and the
    :class:`~repro.core.migration.MigrationDecision` tuples are built
    only when someone actually reads them (reports, tests, analyses).
    Behaves as an immutable sequence; ``overlay`` carries the rare
    decisions produced by the sequential fallback path verbatim.
    """

    __slots__ = ("vm", "source", "target", "delta", "reason", "overlay",
                 "_materialized")

    def __init__(self, n: int) -> None:
        self.vm = np.zeros(n, dtype=np.int64)
        self.source = np.zeros(n, dtype=np.int64)
        self.target = np.full(n, -1, dtype=np.int64)
        self.delta = np.zeros(n)
        self.reason = np.full(n, -1, dtype=np.int8)
        self.overlay: dict = {}
        self._materialized: Optional[List[MigrationDecision]] = None

    @property
    def complete(self) -> bool:
        """Whether every hold has been decided."""
        return bool((self.reason >= 0).all())

    def _materialize(self) -> List[MigrationDecision]:
        if self._materialized is None:
            out = [
                MigrationDecision(
                    vm, src, tgt if code == 3 else None, delta, code == 3,
                    _REASONS[code],
                )
                for vm, src, tgt, delta, code in zip(
                    self.vm.tolist(),
                    self.source.tolist(),
                    self.target.tolist(),
                    self.delta.tolist(),
                    self.reason.tolist(),
                )
            ]
            for pos, decision in self.overlay.items():
                out[pos] = decision
            self._materialized = out
        return self._materialized

    def __len__(self) -> int:
        return len(self.vm)

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def migrated_count(self) -> int:
        """Number of migrated holds, without materializing."""
        return int((self.reason == 3).sum())


@dataclass
class RoundResult:
    """Outcome of one wave-batched token round."""

    #: Final per-hold decisions, aligned with the round's visit order —
    #: an array-backed lazy sequence (see :class:`DecisionColumns`).
    decisions: DecisionColumns = field(
        default_factory=lambda: DecisionColumns(0)
    )
    #: Per-hold migrated flags / applied deltas, aligned with the order —
    #: the array form the scheduler builds its time series from.
    hold_migrated: np.ndarray = field(default_factory=lambda: np.empty(0, bool))
    hold_delta: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: Number of migrations performed.
    migrations: int = 0
    #: Number of waves the round took (1 when nothing interfered).
    waves: int = 0
    #: Total deferral events (a hold deferred over k waves counts k times).
    deferrals: int = 0
    #: Per-wave applied moves, ``(vm_id, source_host, target_host)`` — the
    #: raw material of the wave-disjointness property test.  Populated only
    #: when the engine was built with ``record_waves=True``.
    wave_moves: List[List[Tuple[int, int, int]]] = field(default_factory=list)

    @classmethod
    def for_round(cls, n: int) -> "RoundResult":
        return cls(
            decisions=DecisionColumns(n),
            hold_migrated=np.zeros(n, dtype=bool),
            hold_delta=np.zeros(n),
        )

    @property
    def interference_free(self) -> bool:
        """Whether every proposal landed in the first wave, untouched."""
        return self.deferrals == 0


class BatchedRoundEngine:
    """Executes wave-batched token rounds over one (allocation, traffic).

    Bound to the same :class:`FastCostEngine` the migration engine uses;
    thresholds (``cm``, §V-C bandwidth, candidate cap) are read from the
    :class:`MigrationEngine` so batched and per-hold decisions share one
    configuration.
    """

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        engine: MigrationEngine,
        fast: FastCostEngine,
        record_waves: bool = False,
        wave_callback=None,
        use_cache: bool = False,
        profile=None,
    ) -> None:
        """``wave_callback``, when given, is invoked after every wave with
        the list of VM ids whose holds settled in it (movers and
        non-movers alike; every VM of the round is reported exactly once
        across the round's waves).  The scheduler wires it to the
        policy's mid-round token refresh (``TokenPolicy.wave_refresh``).

        ``use_cache`` routes full-population rounds through the engine's
        persistent :class:`~repro.core.roundcache.RoundScoreCache`
        (dirty-owner re-scoring within and across rounds; exact same
        trajectory).  ``profile``, when given, is a
        :class:`repro.util.profiling.PhaseTimings` accumulating per-phase
        wall clock (score / re-mask / plan / wave-apply / adjust /
        settle)."""
        if not fast.is_bound_to(allocation, traffic):
            raise ValueError(
                "fast engine is not bound to the scheduler's allocation/traffic"
            )
        self._allocation = allocation
        self._traffic = traffic
        self._engine = engine
        self._fast = fast
        self._record_waves = record_waves
        self._wave_callback = wave_callback
        self._use_cache = use_cache
        self._profile = profile

    # -- profiling hooks -----------------------------------------------------

    def _tick(self) -> float:
        return time.perf_counter() if self._profile is not None else 0.0

    def _lap(self, phase: str, t0: float) -> None:
        if self._profile is not None:
            self._profile.add(phase, time.perf_counter() - t0)

    def run_round(self, order: Sequence[int], injector=None) -> RoundResult:
        """Run one full token round over ``order`` (a visit-order snapshot).

        Dispatches to the cached loop when enabled and ``order`` covers
        the engine's whole population (the round cache is keyed by the
        dense VM index); partial orders always take the uncached path.

        ``injector``, when given, is pumped after every applied wave (and
        after the wave callback) with the number of holds decided so far:
        ``injector(settled_holds) -> bool``.  Returning ``True`` means
        external events mutated engine state mid-round (churn, traffic
        deltas, capacity changes); the in-flight scored batch is then
        stale, so the round abandons it and finishes through
        :meth:`_finish_round_live` — fresh re-scores of the still
        undecided holds against the live state.  Both loops pump at the
        exact same protocol points, so a cached/uncached twin pair under
        an identical injector sees identical pump times and produces the
        identical trajectory.
        """
        if self._use_cache:
            n = self._fast.snapshot.n_vms
            if len(order) == n:
                dense_order = self._fast.dense_indices(order)
                if bool(np.bincount(dense_order, minlength=n).all()):
                    return self._run_round_cached(order, dense_order, injector)
        return self._run_round_uncached(order, injector)

    def _run_round_uncached(
        self, order: Sequence[int], injector=None
    ) -> RoundResult:
        """The reference wave loop: full re-mask of every pending owner
        per wave, round-local candidate batch.  Pinned against the cached
        loop by ``tests/test_round_cache.py``."""
        fast = self._fast
        n = len(order)
        result = RoundResult.for_round(n)
        t0 = self._tick()
        batch = fast.candidate_batch(
            fast.dense_indices(order), self._engine.max_candidates
        )
        self._lap("score", t0)
        positions = np.arange(n, dtype=np.int64)
        if self._wave_segment(result, batch, positions, injector):
            self._finish_round_live(result, list(order), injector)
        assert result.decisions.complete
        return result

    def _wave_segment(
        self,
        result: RoundResult,
        batch: CandidateBatch,
        positions: np.ndarray,
        injector=None,
    ) -> bool:
        """Run the uncached wave loop over one scored batch to completion.

        ``positions`` maps the batch's owners to their visit positions in
        the round.  Returns ``True`` when the injector fired mid-segment:
        the batch (round-snapshot candidate sets, incrementally adjusted
        deltas) no longer describes the live engine state, so the caller
        must re-score whatever is still undecided and run a new segment.
        """
        fast = self._fast
        engine = self._engine
        cm = engine.migration_cost
        threshold = engine.bandwidth_threshold
        n_hosts = self._allocation.cluster.n_servers

        while positions.size:
            t0 = self._tick()
            feasible = fast.candidate_feasible(batch, threshold)
            choice, best, _, ties = fast.best_candidates(
                batch, feasible, return_ties=True
            )
            self._lap("re-mask", t0)
            beneficial = (choice >= 0) & (best > 0) & (best > cm)
            t0 = self._tick()
            settled_ids = self._settle_owners(
                result, batch, np.nonzero(~beneficial)[0], positions, choice,
                best,
            )
            self._lap("settle", t0)
            prop = np.nonzero(beneficial)[0]
            if prop.size == 0:
                if self._wave_callback is not None and settled_ids:
                    self._wave_callback(settled_ids)
                break
            result.waves += 1
            t0 = self._tick()
            accepted, target = self._plan_wave(
                batch, best, prop, ties, n_hosts
            )
            self._lap("plan", t0)
            t0 = self._tick()
            moved, old_hosts, new_hosts = self._apply_wave(
                result, positions, batch, prop[accepted], target[accepted],
                settled_ids,
            )
            self._lap("wave-apply", t0)
            if self._wave_callback is not None and settled_ids:
                # Fired after the wave landed, so refreshes see the
                # post-wave placement (the freshest state this round).
                self._wave_callback(settled_ids)
            if injector is not None and injector(self._settled_count(result)):
                return True
            deferred = prop[~accepted]
            if deferred.size == 0:
                break
            result.deferrals += int(deferred.size)
            keep = batch.select(deferred, with_onto=threshold is not None)
            keep_positions = positions[deferred]
            if moved.size:
                t0 = self._tick()
                self._adjust_stale(
                    keep,
                    np.arange(keep.n_owners, dtype=np.int64),
                    moved,
                    old_hosts,
                    new_hosts,
                )
                self._lap("adjust", t0)
            batch = keep
            positions = keep_positions
        return False

    @staticmethod
    def _settled_count(result: RoundResult) -> int:
        """Holds decided so far this round (the injector's clock input)."""
        return int((result.decisions.reason >= 0).sum())

    def _settle_retired(
        self, result: RoundResult, vm_ids: List[int], positions: List[int]
    ) -> None:
        """Consume the holds of VMs that left the allocation mid-round.

        A retired VM's remaining holds settle with the ``retired`` reason
        (no decision, zero delta); they still consume their clock ticks,
        keeping the round's hold count — and therefore every twin's event
        timeline — fixed at the visit-order snapshot's length.  Retired
        settles are not reported to the wave callback: the VM already
        left the token, so there is nothing to refresh.
        """
        cols = result.decisions
        pos = np.asarray(positions, dtype=np.int64)
        cols.vm[pos] = np.asarray(vm_ids, dtype=np.int64)
        cols.source[pos] = -1
        cols.delta[pos] = 0.0
        cols.reason[pos] = 4  # retired

    def _finish_round_live(
        self, result: RoundResult, order_ids: List[int], injector
    ) -> None:
        """Finish a round whose in-flight batch an injected event staled.

        Loops until every hold is decided: settle the holds of VMs that
        no longer exist, score a *fresh* candidate batch over the still
        undecided (and still placed) VMs against the live engine state,
        and run a wave segment over it — which may itself be interrupted
        by further injections.  The continuation depends only on live
        engine state, so the cached and uncached loops (which share this
        path after bailing out) produce bit-identical trajectories.
        """
        allocation = self._allocation
        fast = self._fast
        while True:
            undecided = np.nonzero(result.decisions.reason < 0)[0]
            if undecided.size == 0:
                return
            alive_pos: List[int] = []
            alive_ids: List[int] = []
            gone_pos: List[int] = []
            gone_ids: List[int] = []
            for pos in undecided.tolist():
                vm_id = order_ids[pos]
                if vm_id in allocation:
                    alive_pos.append(pos)
                    alive_ids.append(vm_id)
                else:
                    gone_pos.append(pos)
                    gone_ids.append(vm_id)
            if gone_pos:
                self._settle_retired(result, gone_ids, gone_pos)
            if not alive_pos:
                return
            t0 = self._tick()
            batch = fast.candidate_batch(
                fast.dense_indices(alive_ids), self._engine.max_candidates
            )
            self._lap("score", t0)
            positions = np.asarray(alive_pos, dtype=np.int64)
            if not self._wave_segment(result, batch, positions, injector):
                return

    # -- cached round loop ---------------------------------------------------

    #: Bit position of the host field in pool-by-host keys (rows < 2^40).
    _HOST_SHIFT = 40

    def _run_round_cached(
        self, order: Sequence[int], dense_order: np.ndarray, injector=None
    ) -> RoundResult:
        """One token round against the persistent round-score cache.

        Owners are indexed by *dense VM* (the cache's key space), with
        ``pos_of`` mapping them back to visit positions; every per-owner
        sequence handed to the planner or the report is sorted by visit
        position first, so decisions, waves and applied moves come out in
        exactly the uncached loop's order.

        Tie rows live in two tiers.  The round-local *active* set holds
        the ties of currently-beneficial owners — the only rows the wave
        planner can use — and is small (proposals shrink wave over
        wave), so per-wave maintenance is O(touched).  Everything else
        sits in the cache's persistent pool plus the shadow index, which
        are only *read* mid-round (host-keyed slices marking settled
        owners stale) and batch-updated once per round, so a
        mostly-converged round costs a sparse re-score, not a full
        O(rows) evaluation.
        """
        fast = self._fast
        engine = self._engine
        n = len(order)
        result = RoundResult.for_round(n)
        t0 = self._tick()
        cache = fast.round_cache(engine.max_candidates)
        batch, dirty = cache.refresh()
        self._lap("score", t0)
        if self._profile is not None:
            self._profile.bump("owners", n)
            self._profile.bump("owners_rescored", int(dirty.size))
        pos_of = np.empty(n, dtype=np.int64)
        pos_of[dense_order] = np.arange(n, dtype=np.int64)
        cm = engine.migration_cost
        threshold = engine.bandwidth_threshold
        n_hosts = self._allocation.cluster.n_servers
        ptr = batch.ptr
        pod_of_host = fast._pod_of

        # Incremental feasibility (and therefore decision persistence)
        # needs per-host state: a uniform population and no §V-C budget.
        # Otherwise every wave re-evaluates all pending owners — the
        # uncached cost profile, same semantics.
        t0 = self._tick()
        host_ok = fast.uniform_host_ok() if threshold is None else None
        state = cache.decision_state if host_ok is not None else None
        if state is not None:
            # Mostly-dirty rounds (early convergence, big drift bursts):
            # one vectorized full evaluation beats piecewise catch-up.
            state.stale_decision[dirty] = True
            if int(state.stale_decision.sum()) * 4 > n:
                state = None
                cache.decision_state = None
        shadow = np.empty(0, dtype=np.int64)
        shadow_hosts = np.empty(0, dtype=np.int64)
        in_shadow = None
        owner_pods = None
        empty64 = np.empty(0, dtype=np.int64)
        act_rows = empty64
        act_owner = empty64.copy()
        retired: List[np.ndarray] = []
        # Round-local shadow additions (bitmap-gated, so duplicates are
        # impossible); merged into the host-sorted index once at round
        # end instead of re-building it every wave.
        shadow_side: List[np.ndarray] = []
        if state is not None:
            # Carried decisions: re-evaluate only the re-scored owners
            # plus those whose ``stale_decision`` mark was set while they
            # were unmaintained (a tie host filled, a qualifying blocked
            # host freed) — including, below, flips that happened
            # *between* runs; everything else keeps its (choice, best,
            # ties, shadow) verbatim — a fresh evaluation would
            # reproduce it.
            choice, best = state.choice, state.best
            if state.row_owner is None:
                state.row_owner = np.repeat(
                    np.arange(n, dtype=np.int64), ptr[1:] - ptr[:-1]
                )
            row_owner_arr = state.row_owner
            owner_pods = state.owner_pods
            pool_rows = state.pool_rows
            pool_owner = state.pool_owner
            pool_hosts = state.pool_hosts
            hpool = state.pool_hkeys
            if hpool is None:
                pool_hosts = batch.host[pool_rows].astype(np.int64)
                hpool = np.sort((pool_hosts << self._HOST_SHIFT) | pool_rows)
            shadow = state.shadow
            shadow_hosts = state.shadow_hosts
            in_shadow = state.in_shadow
            need = state.stale_decision
            need[dirty] = True
            flips = np.nonzero(host_ok != state.host_ok)[0]
            if flips.size:
                # Out-of-round capacity changes (drains, resizes, runs
                # through other engine paths).  Filled hosts unseat the
                # pooled ties sitting on them; freed hosts route through
                # the shadow index, exactly like a mid-round wave.
                filled = flips[~host_ok[flips]]
                if filled.size:
                    _, rows = self._host_pool_rows(hpool, filled)
                    if rows.size:
                        need[row_owner_arr[rows]] = True
                freed = flips[host_ok[flips]]
                if freed.size and shadow.size:
                    _, cand = self._shadow_rows(shadow, shadow_hosts, freed)
                    if cand.size:
                        c_owner = row_owner_arr[cand]
                        hit = batch.delta[cand] >= best[c_owner]
                        need[c_owner[hit]] = True
            state.host_ok = host_ok
            sub = np.nonzero(need)[0]
            if sub.size:
                pos, rows = self._owner_pool_rows(pool_rows, ptr, sub)
                if rows.size:
                    pool_rows, pool_owner, pool_hosts, hpool = (
                        self._pool_delete(
                            pool_rows, pool_owner, pool_hosts, hpool,
                            rows, row_pos=pos,
                        )
                    )
                if shadow.size:
                    # Re-evaluated owners rebuild their blocked rows
                    # against their fresh best; drop the stale entries so
                    # the shadow never accumulates garbage across rounds.
                    sh_keep = ~need[row_owner_arr[shadow]]
                    in_shadow[shadow[~sh_keep]] = False
                    shadow = shadow[sh_keep]
                    shadow_hosts = shadow_hosts[sh_keep]
                new_rows, new_owner, new_blocked = self._rescore_owners(
                    batch, sub, host_ok, threshold, choice, best,
                    with_blocked=True,
                )
                shadow, shadow_hosts = self._shadow_insert(
                    shadow, shadow_hosts, in_shadow, new_blocked, batch
                )
            else:
                new_rows = empty64
                new_owner = empty64.copy()
            need[:] = False
            # Activate the beneficial owners' ties: fresh ones routed by
            # their owner's verdict, carried ones extracted from the
            # persistent pool (and re-inserted when the round retires
            # them again).
            beneficial0 = (choice >= 0) & (best > 0) & (best > cm)
            if new_rows.size:
                act_mask = beneficial0[new_owner]
                act_rows = new_rows[act_mask]
                act_owner = new_owner[act_mask]
                if not bool(act_mask.all()):
                    retired.append(new_rows[~act_mask])
            ben = np.nonzero(beneficial0)[0]
            if sub.size:
                fresh_mask = np.zeros(n, dtype=bool)
                fresh_mask[sub] = True
                ben = ben[~fresh_mask[ben]]
            if ben.size:
                pos, rows = self._owner_pool_rows(pool_rows, ptr, ben)
                if rows.size:
                    act_rows, act_owner = self._active_merge(
                        act_rows, act_owner, rows, pool_owner[pos]
                    )
                    pool_rows, pool_owner, pool_hosts, hpool = (
                        self._pool_delete(
                            pool_rows, pool_owner, pool_hosts, hpool,
                            rows, row_pos=pos,
                        )
                    )
        else:
            # Round-start evaluation of every owner — the one full pass;
            # the values (and the exact-tie row pool) are then maintained
            # incrementally wave over wave and, in the uniform case,
            # carried into the next round.
            feasible = fast.candidate_feasible(batch, threshold)
            choice, best, _, tie_rows = fast.best_candidates(
                batch, feasible, return_ties=True
            )
            # Row → owner map (one pass; the freed-host scan and tie-pool
            # bookkeeping gather from it instead of bisecting).
            row_owner_arr = np.repeat(
                np.arange(n, dtype=np.int64), ptr[1:] - ptr[:-1]
            )
            tie_owner = row_owner_arr[tie_rows]
            pool_rows = tie_rows
            pool_owner = tie_owner
            pool_hosts = batch.host[tie_rows].astype(np.int64)
            hpool = empty64
            if host_ok is not None:
                # Split: beneficial owners' ties go live; the rest are
                # only needed when decisions carry across rounds.
                beneficial0 = (choice >= 0) & (best > 0) & (best > cm)
                act_mask = beneficial0[tie_owner]
                act_rows = tie_rows[act_mask]
                act_owner = tie_owner[act_mask]
                # (owner × pod) candidate incidence, pruning stale-delta
                # corrections to incidences that can touch a candidate.
                n_pods = int(pod_of_host.max()) + 1
                owner_pods = (
                    np.bincount(
                        row_owner_arr * n_pods + pod_of_host[batch.host],
                        minlength=n * n_pods,
                    ).reshape(n, n_pods)
                    > 0
                )
                # Shadow index: infeasible rows whose delta already
                # reaches their owner's best.  Only these can change a
                # decision when their host frees up, so the freed-host
                # scan touches them alone.  Host-sorted for sliced
                # lookup; later qualifiers merge in by sorted insertion,
                # gated by an O(1) membership bitmap.
                blocked = np.nonzero(
                    ~feasible & (batch.delta >= best[row_owner_arr])
                )[0]
                by_host = np.argsort(batch.host[blocked])
                shadow = blocked[by_host]
                shadow_hosts = batch.host[shadow].astype(np.int64)
                in_shadow = np.zeros(batch.n_pairs, dtype=bool)
                in_shadow[shadow] = True
                if int(dirty.size) * 4 <= n:
                    # Mostly-clean round: worth carrying decisions into
                    # the next one.  (Heavy rounds skip the pool build —
                    # the next round would mass-invalidate it anyway.)
                    from repro.core.roundcache import DecisionState

                    pool_rows = tie_rows[~act_mask]
                    pool_owner = tie_owner[~act_mask]
                    pool_hosts = pool_hosts[~act_mask]
                    hpool = np.sort(
                        (pool_hosts << self._HOST_SHIFT) | pool_rows
                    )
                    state = DecisionState(n, n_hosts)
                    state.choice = choice
                    state.best = best
                    state.host_ok = host_ok
                    state.row_owner = row_owner_arr
                    state.owner_pods = owner_pods
            else:
                act_rows = tie_rows
                act_owner = tie_owner
            del feasible
        self._lap("re-mask", t0)
        pending = np.ones(n, dtype=bool)

        while True:
            beneficial = pending & (choice >= 0) & (best > 0) & (best > cm)
            to_settle = np.nonzero(pending & ~beneficial)[0]
            t0 = self._tick()
            if to_settle.size:
                to_settle = to_settle[
                    np.argsort(pos_of[to_settle], kind="stable")
                ]
                pending[to_settle] = False
                if state is not None:
                    act_rows, act_owner = self._active_retire(
                        act_rows, act_owner, ptr, to_settle, retired
                    )
            settled_ids = self._settle_owners(
                result, batch, to_settle, pos_of, choice, best
            )
            self._lap("settle", t0)
            prop = np.nonzero(beneficial)[0]
            if prop.size == 0:
                if self._wave_callback is not None and settled_ids:
                    self._wave_callback(settled_ids)
                break
            prop = prop[np.argsort(pos_of[prop], kind="stable")]
            result.waves += 1
            t0 = self._tick()
            accepted, target = self._plan_wave(
                batch, best, prop, act_rows, n_hosts, tie_owner=act_owner
            )
            self._lap("plan", t0)
            t0 = self._tick()
            moved, old_hosts, new_hosts = self._apply_wave(
                result, pos_of, batch, prop[accepted], target[accepted],
                settled_ids,
            )
            self._lap("wave-apply", t0)
            if self._wave_callback is not None and settled_ids:
                self._wave_callback(settled_ids)
            if injector is not None and injector(self._settled_count(result)):
                # Injected events mutated engine state mid-round: both the
                # round-local incremental structures (choice/best, active
                # ties, shadow) and any carried cross-round decision state
                # are stale.  Drop the decision carry — the persistent
                # scored rows themselves stay valid because every event
                # routes through the engine's footprint invalidation —
                # and finish the round on the live path, exactly like the
                # uncached loop.
                cache.invalidate_decisions()
                self._finish_round_live(result, list(order), injector)
                assert result.decisions.complete
                return result
            wave_owners = prop[accepted]
            pending[wave_owners] = False
            if state is not None and wave_owners.size:
                act_rows, act_owner = self._active_retire(
                    act_rows, act_owner, ptr, np.sort(wave_owners), retired
                )
            deferred = prop[~accepted]
            if deferred.size == 0:
                break
            result.deferrals += int(deferred.size)
            if moved.size:
                t0 = self._tick()
                stale = self._adjust_stale(
                    batch, deferred, moved, old_hosts, new_hosts,
                    owner_pods=owner_pods,
                )
                self._lap("adjust", t0)
                t0 = self._tick()
                if host_ok is None:
                    # Per-row feasibility (mixed VM sizes or a §V-C
                    # budget): every pending owner re-probes — the
                    # uncached loop's cost profile, same semantics.
                    cache.decision_state = None
                    sub = np.nonzero(pending)[0]
                    act_rows, act_owner = self._rescore_owners(
                        batch, sub, None, threshold, choice, best
                    )
                    self._lap("re-mask", t0)
                    continue
                # Surgical invalidation: exactly the owners inside this
                # wave's dependency footprint.
                host_hit = np.zeros(n_hosts, dtype=bool)
                host_hit[old_hosts] = True
                host_hit[new_hosts] = True
                touched = np.nonzero(host_hit)[0]
                now_ok = fast.uniform_host_ok(touched)
                flipped = now_ok != host_ok[touched]
                freed = touched[flipped & now_ok]
                filled = touched[flipped & ~now_ok]
                host_ok[touched] = now_ok
                dropped_owner = empty64
                shadow_new = []
                affected = []
                if filled.size:
                    # Filled picks.  Active ties drop out (a pending
                    # owner losing its whole tie set re-probes; the
                    # dropped row enters the shadow — it may return if
                    # the host frees again).  Pooled ties of unmaintained
                    # owners only *mark* them for lazy round-start
                    # catch-up; the pool itself is not touched mid-round.
                    filled_flag = np.zeros(n_hosts, dtype=bool)
                    filled_flag[filled] = True
                    hit = filled_flag[batch.host[act_rows]]
                    if bool(hit.any()):
                        dropped_owner = act_owner[hit]
                        shadow_new.append(act_rows[hit])
                        affected.append(dropped_owner)
                        act_rows = act_rows[~hit]
                        act_owner = act_owner[~hit]
                    if hpool.size:
                        _, prows = self._host_pool_rows(hpool, filled)
                        if prows.size:
                            state.stale_decision[row_owner_arr[prows]] = True
                rescore = np.zeros(n, dtype=bool)
                rescore[stale] = True
                if dropped_owner.size:
                    _, has_rows = self._first_pool_rows(
                        act_rows, ptr, dropped_owner
                    )
                    rescore[dropped_owner[~has_rows]] = True
                rescore &= pending
                sub = np.nonzero(rescore)[0]
                added = []
                if sub.size:
                    pos, _ = self._owner_pool_rows(act_rows, ptr, sub)
                    if pos.size:
                        keep = np.ones(len(act_rows), dtype=bool)
                        keep[pos] = False
                        act_rows = act_rows[keep]
                        act_owner = act_owner[keep]
                    new_rows, new_owner, new_blocked = self._rescore_owners(
                        batch, sub, host_ok, threshold, choice, best,
                        with_blocked=True,
                    )
                    added.append((new_rows, new_owner))
                    if new_blocked.size:
                        shadow_new.append(new_blocked)
                if freed.size and (shadow.size or shadow_side):
                    # Freed strictly-better (or tying) hosts, via the
                    # shadow index (plus this round's gated side buffer).
                    # Settled owners with a qualifying blocked row are
                    # marked for lazy round-start catch-up; pending ones
                    # update right here.
                    cand_pos, cand = self._shadow_rows(
                        shadow, shadow_hosts, freed
                    )
                    if shadow_side:
                        freed_flag = np.zeros(n_hosts, dtype=bool)
                        freed_flag[freed] = True
                        side = np.concatenate(shadow_side)
                        side_hit = side[freed_flag[batch.host[side]]]
                        # The side buffer is append-only: a promoted row
                        # leaves only by its membership bit, and can be
                        # re-appended after a later fill.  Gate + dedup,
                        # or a twice-freed host would hand the same row
                        # to the pool twice and desync the host index.
                        side_hit = np.unique(side_hit[in_shadow[side_hit]])
                        if side_hit.size:
                            cand = np.concatenate([cand, side_hit])
                    c_owner = row_owner_arr[cand]
                    if state is not None:
                        settled_hit = ~pending[c_owner] & (
                            batch.delta[cand] >= best[c_owner]
                        )
                        state.stale_decision[c_owner[settled_hit]] = True
                    eligible = pending & ~rescore
                    fr_rows, fr_owner, improved = self._freed_rows_update(
                        batch, cand, row_owner_arr, eligible, best
                    )
                    if improved.size:
                        pos, _ = self._owner_pool_rows(
                            act_rows, ptr, improved
                        )
                        if pos.size:
                            keep = np.ones(len(act_rows), dtype=bool)
                            keep[pos] = False
                            act_rows = act_rows[keep]
                            act_owner = act_owner[keep]
                    if fr_rows.size:
                        added.append((fr_rows, fr_owner))
                        affected.append(fr_owner)
                        # Promoted rows leave the shadow: a live tie must
                        # never double as a blocked entry, or a later
                        # freed slice would re-add it.  Rows from the
                        # main index delete in place; side-buffer rows
                        # only clear their membership bit (the round-end
                        # merge re-checks it).
                        in_main = np.zeros(len(cand), dtype=bool)
                        in_main[: len(cand_pos)] = True
                        at = np.searchsorted(fr_rows, cand).clip(
                            max=len(fr_rows) - 1
                        )
                        taken = fr_rows[at] == cand
                        in_shadow[cand[taken]] = False
                        tm = taken & in_main
                        if tm.any():
                            shadow = np.delete(shadow, cand_pos[tm[: len(cand_pos)]])
                            shadow_hosts = np.delete(
                                shadow_hosts, cand_pos[tm[: len(cand_pos)]]
                            )
                if shadow_new:
                    ins = np.unique(np.concatenate(shadow_new))
                    ins = ins[~in_shadow[ins]]
                    if ins.size:
                        in_shadow[ins] = True
                        shadow_side.append(ins)
                if added:
                    new_rows = np.concatenate([a[0] for a in added])
                    new_owner = np.concatenate([a[1] for a in added])
                    if len(added) > 1:
                        merge = np.argsort(new_rows, kind="stable")
                        new_rows = new_rows[merge]
                        new_owner = new_owner[merge]
                    act_rows, act_owner = self._active_merge(
                        act_rows, act_owner, new_rows, new_owner
                    )
                if affected:
                    # Choice = first (probing-order) live tie; recompute
                    # for owners whose tie set changed — identical to a
                    # recompute for everyone else.  Owners left without
                    # ties were either rescued above (pending) or marked
                    # stale (settled); their choice is not read before
                    # it is rebuilt.
                    aff_hit = np.zeros(n, dtype=bool)
                    aff_hit[np.concatenate(affected)] = True
                    aff = np.nonzero(aff_hit)[0]
                    first, has_rows = self._first_pool_rows(
                        act_rows, ptr, aff
                    )
                    choice[aff[has_rows]] = act_rows[first[has_rows]]
                self._lap("re-mask", t0)

        if state is not None:
            if shadow_side:
                # Unique: a row can re-enter the side buffer after a
                # promotion cleared its membership bit mid-round.
                side = np.unique(np.concatenate(shadow_side))
                side = side[in_shadow[side]]  # promoted rows dropped out
                if side.size:
                    hosts_s = batch.host[side].astype(np.int64)
                    by_host = np.argsort(hosts_s, kind="stable")
                    side = side[by_host]
                    hosts_s = hosts_s[by_host]
                    at = np.searchsorted(shadow_hosts, hosts_s)
                    shadow = np.insert(shadow, at, side)
                    shadow_hosts = np.insert(shadow_hosts, at, hosts_s)
            # Retire the round's settled ties back into the persistent
            # pool; fills that happened after an owner settled are caught
            # here (the owner re-evaluates next round).
            assert act_rows.size == 0
            if retired:
                ret_rows = np.concatenate(retired)
                order_r = np.argsort(ret_rows, kind="stable")
                ret_rows = ret_rows[order_r]
                ret_owner = row_owner_arr[ret_rows]
                bad = ~host_ok[batch.host[ret_rows]]
                if bool(bad.any()):
                    state.stale_decision[ret_owner[bad]] = True
                pool_rows, pool_owner, pool_hosts, hpool = self._pool_insert(
                    pool_rows, pool_owner, pool_hosts, hpool, ret_rows,
                    ret_owner, batch,
                )
            state.pool_rows = pool_rows
            state.pool_owner = pool_owner
            state.pool_hosts = pool_hosts
            state.pool_hkeys = hpool
            state.shadow = shadow
            state.shadow_hosts = shadow_hosts
            state.in_shadow = in_shadow
            state.row_owner = row_owner_arr
            state.owner_pods = owner_pods
            cache.decision_state = state
        assert result.decisions.complete
        return result

    # -- active-tie bookkeeping ----------------------------------------------

    def _active_merge(
        self,
        act_rows: np.ndarray,
        act_owner: np.ndarray,
        add_rows: np.ndarray,
        add_owner: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Insert row-sorted additions into the active tie set."""
        if add_rows.size == 0:
            return act_rows, act_owner
        at = np.searchsorted(act_rows, add_rows)
        return (
            np.insert(act_rows, at, add_rows),
            np.insert(act_owner, at, add_owner),
        )

    def _active_retire(
        self,
        act_rows: np.ndarray,
        act_owner: np.ndarray,
        ptr: np.ndarray,
        owners: np.ndarray,
        retired: List[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Move settling owners' live ties onto the round's retire list."""
        if act_rows.size == 0 or owners.size == 0:
            return act_rows, act_owner
        pos, rows = self._owner_pool_rows(act_rows, ptr, owners)
        if pos.size == 0:
            return act_rows, act_owner
        retired.append(rows)
        keep = np.ones(len(act_rows), dtype=bool)
        keep[pos] = False
        return act_rows[keep], act_owner[keep]

    # -- pool / shadow bookkeeping -------------------------------------------

    def _host_pool_rows(
        self, hpool: np.ndarray, hosts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(positions, row ids) of the pool entries on the given hosts."""
        base = np.asarray(hosts, dtype=np.int64) << self._HOST_SHIFT
        lo = np.searchsorted(hpool, base)
        hi = np.searchsorted(hpool, base + (np.int64(1) << self._HOST_SHIFT))
        counts = hi - lo
        seg = np.zeros(len(lo) + 1, dtype=np.int64)
        np.cumsum(counts, out=seg[1:])
        pos = np.repeat(lo - seg[:-1], counts) + np.arange(int(seg[-1]))
        rows = hpool[pos] & ((np.int64(1) << self._HOST_SHIFT) - 1)
        return pos, rows

    def _owner_pool_rows(
        self, tie_rows: np.ndarray, ptr: np.ndarray, owners: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(positions, row ids) of the given owners' entries in the
        row-sorted pool (each owner's rows live in ``ptr[o]:ptr[o+1]``)."""
        lo = np.searchsorted(tie_rows, ptr[owners])
        hi = np.searchsorted(tie_rows, ptr[owners + 1])
        counts = hi - lo
        seg = np.zeros(len(lo) + 1, dtype=np.int64)
        np.cumsum(counts, out=seg[1:])
        pos = np.repeat(lo - seg[:-1], counts) + np.arange(int(seg[-1]))
        return pos, tie_rows[pos]

    def _first_pool_rows(
        self, tie_rows: np.ndarray, ptr: np.ndarray, owners: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(first pool position, any-rows mask) per owner."""
        lo = np.searchsorted(tie_rows, ptr[owners])
        has = lo < len(tie_rows)
        has[has] &= tie_rows[lo[has]] < ptr[owners[has] + 1]
        return lo, has

    def _pool_delete(
        self,
        tie_rows: np.ndarray,
        tie_owner: np.ndarray,
        tie_hosts: np.ndarray,
        hpool: np.ndarray,
        rows: np.ndarray,
        row_pos: Optional[np.ndarray] = None,
        hpool_pos: Optional[np.ndarray] = None,
    ):
        """Remove the given row ids from both pool orders."""
        if row_pos is None:
            row_pos = np.searchsorted(tie_rows, np.sort(rows))
        if hpool_pos is None:
            keys = (tie_hosts[row_pos] << self._HOST_SHIFT) | tie_rows[row_pos]
            hpool_pos = np.searchsorted(hpool, np.sort(keys))
        return (
            np.delete(tie_rows, row_pos),
            np.delete(tie_owner, row_pos),
            np.delete(tie_hosts, row_pos),
            np.delete(hpool, hpool_pos),
        )

    def _pool_insert(
        self,
        tie_rows: np.ndarray,
        tie_owner: np.ndarray,
        tie_hosts: np.ndarray,
        hpool: np.ndarray,
        add_rows: np.ndarray,
        add_owner: np.ndarray,
        batch: CandidateBatch,
    ):
        """Insert row-sorted additions into both pool orders."""
        if add_rows.size == 0:
            return tie_rows, tie_owner, tie_hosts, hpool
        hosts = batch.host[add_rows].astype(np.int64)
        at = np.searchsorted(tie_rows, add_rows)
        tie_rows = np.insert(tie_rows, at, add_rows)
        tie_owner = np.insert(tie_owner, at, add_owner)
        tie_hosts = np.insert(tie_hosts, at, hosts)
        keys = np.sort((hosts << self._HOST_SHIFT) | add_rows)
        hpool = np.insert(hpool, np.searchsorted(hpool, keys), keys)
        return tie_rows, tie_owner, tie_hosts, hpool

    def _shadow_rows(
        self, shadow: np.ndarray, shadow_hosts: np.ndarray, hosts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(positions, row ids) of shadow entries on the given hosts."""
        lo = np.searchsorted(shadow_hosts, hosts, side="left")
        hi = np.searchsorted(shadow_hosts, hosts, side="right")
        counts = hi - lo
        seg = np.zeros(len(hosts) + 1, dtype=np.int64)
        np.cumsum(counts, out=seg[1:])
        flat = np.repeat(lo - seg[:-1], counts) + np.arange(int(seg[-1]))
        return flat, shadow[flat]

    def _shadow_insert(
        self,
        shadow: np.ndarray,
        shadow_hosts: np.ndarray,
        in_shadow: np.ndarray,
        rows: np.ndarray,
        batch: CandidateBatch,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge qualifying rows into the host-sorted shadow index.

        Gated by the O(1) membership bitmap, so re-qualifying rows
        (oscillating hosts) never balloon the index.  A row can arrive
        twice in one batch (a dropped tie that also re-qualifies through
        its owner's re-score), hence the dedup.
        """
        rows = np.unique(rows)
        rows = rows[~in_shadow[rows]]
        if rows.size == 0:
            return shadow, shadow_hosts
        in_shadow[rows] = True
        hosts = batch.host[rows].astype(np.int64)
        by_host = np.argsort(hosts, kind="stable")
        rows = rows[by_host]
        hosts = hosts[by_host]
        at = np.searchsorted(shadow_hosts, hosts)
        return (
            np.insert(shadow, at, rows),
            np.insert(shadow_hosts, at, hosts),
        )

    def _freed_rows_update(
        self,
        batch: CandidateBatch,
        rows: np.ndarray,
        row_owner_arr: np.ndarray,
        eligible: np.ndarray,
        best: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fold freshly-freed candidate rows into the owners' decisions.

        A host regaining capacity can only matter to an owner holding a
        candidate row on it, and only when that row's delta reaches the
        owner's cached best: strictly better replaces the best (the
        "freed strictly-better host" invalidation), exactly equal joins
        the tie set.  Everything below the bar is untouched — which is
        precisely what a full re-mask would conclude.  ``rows`` come from
        the caller's shadow index (possibly with duplicates and stale
        entries; both are filtered here).

        Returns ``(tie_rows, tie_owners, improved_owners)``: the rows to
        add to the live tie pool and the owners whose previous ties are
        now obsolete.  ``best`` is updated in place.
        """
        empty = np.empty(0, dtype=np.int64)
        if rows.size == 0:
            return empty, empty.copy(), empty.copy()
        row_owner = row_owner_arr[rows]
        ok = eligible[row_owner]
        rows, row_owner = rows[ok], row_owner[ok]
        if rows.size == 0:
            return empty, empty.copy(), empty.copy()
        deltas = batch.delta[rows]
        reach = deltas >= best[row_owner]
        rows, row_owner, deltas = rows[reach], row_owner[reach], deltas[reach]
        if rows.size == 0:
            return empty, empty.copy(), empty.copy()
        order = np.argsort(rows, kind="stable")
        rows, row_owner, deltas = rows[order], row_owner[order], deltas[order]
        seg_first = np.ones(len(rows), dtype=bool)
        seg_first[1:] = row_owner[1:] != row_owner[:-1]
        starts = np.flatnonzero(seg_first)
        owners_u = row_owner[starts]
        seg_max = np.maximum.reduceat(deltas, starts)
        gain = seg_max > best[owners_u]
        improved = owners_u[gain]
        best[improved] = seg_max[gain]
        win = deltas == best[row_owner]
        return rows[win], row_owner[win], improved

    def _rescore_owners(
        self,
        batch: CandidateBatch,
        owners: np.ndarray,
        host_ok: Optional[np.ndarray],
        threshold: Optional[float],
        choice: np.ndarray,
        best: np.ndarray,
        with_blocked: bool = False,
    ) -> Tuple[np.ndarray, ...]:
        """Recompute (choice, best) plus exact-tie rows for a dirty subset.

        The subset restriction of :meth:`FastCostEngine.best_candidates`:
        same masking, same segment maxima, same first-in-probing-order
        tie-breaking, evaluated only over the given owners' candidate
        rows.  Updates ``choice``/``best`` in place and returns the
        owners' fresh tie rows (row-ascending, therefore owner-grouped);
        with ``with_blocked`` a third element carries the owners'
        *infeasible* rows whose delta reaches the fresh best — the rows
        the caller's shadow index must track in case their host frees.
        """
        fast = self._fast
        rows, seg_ptr = segment_rows(batch.ptr, owners)
        choice[owners] = -1
        best[owners] = -np.inf
        empty = np.empty(0, dtype=np.int64)
        if rows.size == 0:
            if with_blocked:
                return empty, empty.copy(), empty.copy()
            return empty, empty.copy()
        if host_ok is not None:
            feas = host_ok[batch.host[rows]]
        else:
            seg_len = (seg_ptr[1:] - seg_ptr[:-1]).astype(np.int64)
            row_owner = np.repeat(owners, seg_len)
            feas = fast.candidate_feasible_rows(
                batch, rows, row_owner, threshold
            )
        deltas = batch.delta[rows]
        masked = np.where(feas, deltas, -np.inf)
        starts = seg_ptr[:-1]
        nonempty = seg_ptr[1:] > starts
        seg_max = np.full(len(owners), -np.inf)
        if np.any(nonempty):
            seg_max[nonempty] = np.maximum.reduceat(masked, starts[nonempty])
        best[owners] = seg_max
        seg_len = (seg_ptr[1:] - starts).astype(np.int64)
        max_rep = np.repeat(seg_max, seg_len)
        hit = feas & (masked == max_rep)
        hit_idx = np.nonzero(hit)[0]
        if hit_idx.size:
            owner_local = np.searchsorted(seg_ptr, hit_idx, side="right") - 1
            new_owner = owners[owner_local]
            new_rows = rows[hit_idx]
            first = np.ones(len(new_owner), dtype=bool)
            first[1:] = new_owner[1:] != new_owner[:-1]
            choice[new_owner[first]] = new_rows[first]
        else:
            new_rows = empty
            new_owner = empty.copy()
        if not with_blocked:
            return new_rows, new_owner
        blocked = rows[~feas & (deltas >= max_rep)]
        return new_rows, new_owner, blocked

    # -- wave planning ------------------------------------------------------

    def _plan_wave(
        self,
        batch: CandidateBatch,
        best: np.ndarray,
        prop: np.ndarray,
        ties: np.ndarray,
        n_hosts: int,
        tie_owner: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Greedy interference-free admission with exact-tie retargeting.

        Returns ``(accepted, target)`` over ``prop``: the admission mask
        and each admitted proposal's target host.  Priority is descending
        Lemma 3 gain (stable on visit position — callers pass ``prop`` in
        visit order).  Each proposal may land on any candidate whose
        delta *exactly equals* its best (``ties``, from
        :meth:`FastCostEngine.best_candidates`) — the first such host in
        probing order not yet claimed this wave — so an already-claimed
        host only defers a VM when no equally-good alternative exists.
        ``tie_owner``, when given, supplies each tied row's owner
        position directly (the cached loop maintains it alongside its tie
        pool); rows must be grouped by owner, probing order within.
        """
        fast = self._fast
        snap = fast.snapshot
        n_prop = len(prop)
        order = np.argsort(-best[prop], kind="stable")
        rank_of = np.empty(n_prop, dtype=np.int64)
        rank_of[order] = np.arange(n_prop)

        # Tied rows of the proposal owners only, mapped to proposal index.
        prop_index = np.full(batch.n_owners, -1, dtype=np.int64)
        prop_index[prop] = np.arange(n_prop)
        owner_of_ties = (
            batch.owner[ties] if tie_owner is None else tie_owner
        )
        t_owner = prop_index[owner_of_ties]
        in_prop = t_owner >= 0
        t_owner = t_owner[in_prop]
        t_host = batch.host[ties[in_prop]]

        sources = batch.source[prop]
        vms = batch.vms[prop]
        accepted = np.zeros(n_prop, dtype=bool)
        target = np.full(n_prop, -1, dtype=np.int64)
        alive = np.ones(n_prop, dtype=bool)
        host_used = np.zeros(n_hosts, dtype=bool)
        vm_blocked = np.zeros(snap.n_vms, dtype=bool)
        big = n_prop  # sentinel priority rank

        while True:
            alive &= ~host_used[sources] & ~vm_blocked[vms]
            # Compact the tied rows to the still-contending owners; rows of
            # admitted/claimed hosts and settled owners never return.
            open_rows = alive[t_owner] & ~host_used[t_host]
            t_owner = t_owner[open_rows]
            t_host = t_host[open_rows]
            if t_owner.size == 0:
                break
            # First open tied row per owner (probing order).
            pick = np.full(n_prop, -1, dtype=np.int64)
            # rows are grouped by owner ascending; first occurrence wins.
            first_of_owner = np.ones(len(t_owner), dtype=bool)
            first_of_owner[1:] = t_owner[1:] != t_owner[:-1]
            pick[t_owner[first_of_owner]] = np.nonzero(first_of_owner)[0]
            contenders = np.nonzero(pick >= 0)[0]
            # Host claims resolve by gain priority (then visit order).
            claim = np.full(n_hosts, big, dtype=np.int64)
            np.minimum.at(claim, sources[contenders], rank_of[contenders])
            np.minimum.at(claim, t_host[pick[contenders]], rank_of[contenders])
            winners = contenders[
                (claim[sources[contenders]] == rank_of[contenders])
                & (claim[t_host[pick[contenders]]] == rank_of[contenders])
            ]
            # Peer filter, vectorized: a winner yields when one of its
            # peers is a higher-priority winner (the loser stays alive for
            # the next admission round — conservative vs the sequential
            # sweep, but converging to the same admitted set).
            winner_rank = np.full(snap.n_vms, big, dtype=np.int64)
            winner_rank[vms[winners]] = rank_of[winners]
            w_ptr, w_peers = self._peer_slices(vms[winners])
            peer_best = np.full(len(winners), big, dtype=np.int64)
            starts = w_ptr[:-1]
            nonempty = w_ptr[1:] > starts
            if np.any(nonempty):
                peer_best[nonempty] = np.minimum.reduceat(
                    winner_rank[w_peers], starts[nonempty]
                )
            ok = (peer_best > rank_of[winners]) & ~vm_blocked[vms[winners]]
            chosen = winners[ok]
            if chosen.size == 0:
                break
            accepted[chosen] = True
            alive[chosen] = False
            target[chosen] = t_host[pick[chosen]]
            host_used[sources[chosen]] = True
            host_used[target[chosen]] = True
            c_ptr, c_peers = self._peer_slices(vms[chosen])
            vm_blocked[c_peers] = True
        return accepted, target

    def _peer_slices(self, dense_vms: np.ndarray):
        """CSR (ptr, flat peer indices) of the given dense VMs."""
        snap = self._fast.snapshot
        counts = (snap.ptr[dense_vms + 1] - snap.ptr[dense_vms]).astype(np.int64)
        ptr = np.zeros(len(dense_vms) + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        flat = np.repeat(snap.ptr[dense_vms] - ptr[:-1], counts) + np.arange(
            int(ptr[-1])
        )
        return ptr, snap.peer[flat]

    # -- wave application ---------------------------------------------------

    def _apply_wave(
        self,
        result: RoundResult,
        positions: np.ndarray,
        batch: CandidateBatch,
        wave: np.ndarray,
        targets: np.ndarray,
        settled_ids: List[int],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply one admitted wave; returns (moved dense, old, new hosts).

        Every hold decided here (movers, exact-gate no-gain settles and
        capacity-fallback decisions) is appended to ``settled_ids`` for
        the wave callback.

        The batched apply is guarded by ``Allocation.migrate_many``'s
        validate-first contract: if the allocation's own accounting rejects
        any move (mirror drift — not expected, but checked), the wave
        falls back to per-move application and the rejected holds settle
        through the sequential reference path.
        """
        fast = self._fast
        allocation = self._allocation
        vm_ids = fast.snapshot.vm_ids
        dense = batch.vms[wave]
        sources = batch.source[wave]
        # Theorem 1 is decided on the exact per-peer delta (the value the
        # cache update applies), not the batch's aggregated score — a move
        # whose true gain is zero must not ride in on rounding noise.  A
        # proposal failing the exact gate settles as no-gain.
        exact = fast.exact_deltas(dense, targets)
        cm = self._engine.migration_cost
        settled_ids.extend(vm_ids[dense].tolist())
        genuine = (exact > 0) & (exact > cm)
        if not genuine.all():
            cols = result.decisions
            pos = positions[wave[~genuine]]
            cols.vm[pos] = vm_ids[dense[~genuine]]
            cols.source[pos] = sources[~genuine]
            cols.delta[pos] = np.maximum(exact[~genuine], 0.0)
            cols.reason[pos] = 2  # no_gain (failed the exact gate)
            wave = wave[genuine]
            dense = dense[genuine]
            sources = sources[genuine]
            targets = targets[genuine]
        moves = list(zip(vm_ids[dense].tolist(), targets.tolist()))
        moved_rows: List[int] = []
        drift_moved: List[Tuple[int, int, int]] = []  # dense, old, new
        wave_log: List[Tuple[int, int, int]] = []
        try:
            allocation.migrate_many(moves)
            moved_rows = list(range(len(moves)))
        except CapacityError:
            for row, (vm_id, tgt) in enumerate(moves):
                try:
                    allocation.migrate(vm_id, tgt)
                    moved_rows.append(row)
                except CapacityError:
                    decision = self._engine.decide_and_migrate(
                        allocation, self._traffic, vm_id
                    )
                    pos = int(positions[wave[row]])
                    cols = result.decisions
                    cols.overlay[pos] = decision
                    cols.reason[pos] = 3 if decision.migrated else 2
                    if decision.migrated:
                        result.migrations += 1
                        result.hold_migrated[pos] = True
                        result.hold_delta[pos] = decision.delta
                        drift_moved.append(
                            (
                                int(dense[row]),
                                decision.source_host,
                                decision.target_host,
                            )
                        )
                        wave_log.append(
                            (vm_id, decision.source_host, decision.target_host)
                        )
        moved_rows = np.array(moved_rows, dtype=np.int64)
        if moved_rows.size:
            deltas, _ = fast.apply_moves(dense[moved_rows], targets[moved_rows])
            pos_arr = positions[wave[moved_rows]]
            result.hold_migrated[pos_arr] = True
            result.hold_delta[pos_arr] = deltas
            cols = result.decisions
            moved_vms = vm_ids[dense[moved_rows]]
            moved_tgts = targets[moved_rows]
            cols.vm[pos_arr] = moved_vms
            cols.source[pos_arr] = sources[moved_rows]
            cols.target[pos_arr] = moved_tgts
            cols.delta[pos_arr] = deltas
            cols.reason[pos_arr] = 3  # migrated
            if self._record_waves:
                wave_log.extend(
                    zip(
                        moved_vms.tolist(),
                        sources[moved_rows].tolist(),
                        moved_tgts.tolist(),
                    )
                )
            result.migrations += int(moved_rows.size)
        if self._record_waves:
            result.wave_moves.append(wave_log)
        moved_dense = np.concatenate(
            [dense[moved_rows], np.array([m[0] for m in drift_moved], dtype=np.int64)]
        )
        old_hosts = np.concatenate(
            [sources[moved_rows], np.array([m[1] for m in drift_moved], dtype=np.int64)]
        )
        new_hosts = np.concatenate(
            [targets[moved_rows], np.array([m[2] for m in drift_moved], dtype=np.int64)]
        )
        return moved_dense, old_hosts, new_hosts

    # -- staleness ----------------------------------------------------------

    def _adjust_stale(
        self,
        batch: CandidateBatch,
        owners: np.ndarray,
        moved: np.ndarray,
        old_hosts: np.ndarray,
        new_hosts: np.ndarray,
        owner_pods: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Correct the given owners' deltas for this wave's peer movements.

        For owner u with candidate x and moved peer p (rate λ):

        ``Δ(u→x) += λ·(w[l(src_u, new_p)] − w[l(src_u, old_p)])
                  − λ·(w[l(x, new_p)] − w[l(x, old_p)])``

        and the §V-C landing rate gains/loses λ as p lands on / leaves x.
        Only the moved peers' terms change, so the correction touches
        ``Σ_u |candidates(u)| × |moved peers(u)|`` rows — a tiny slice of
        a full re-score — and keeps every retained delta exact against
        the post-wave placement (candidate sets stay the round snapshot).

        ``owners`` selects which of the batch's owners to correct (the
        uncached loop passes all of its compacted batch, the cached loop
        the deferred subset of the full-population batch).  Returns the
        owner indices that actually had a moved peer — the cached loop's
        stale set.  ``owner_pods``, when given, is an (owners × pods)
        candidate-incidence map: an incidence whose peer moved between
        pods the owner holds no candidate in contributes exactly zero to
        the candidate-side term, so its row expansion is skipped outright
        (the source-side aggregate still counts every incidence).
        """
        fast = self._fast
        snap = fast.snapshot
        pw = fast._path_weight
        rack_of, pod_of = fast._rack_of, fast._pod_of
        moved_flag = np.zeros(snap.n_vms, dtype=bool)
        moved_flag[moved] = True
        old_of = np.zeros(snap.n_vms, dtype=np.int64)
        new_of = np.zeros(snap.n_vms, dtype=np.int64)
        old_of[moved] = old_hosts
        new_of[moved] = new_hosts

        # (owner, moved peer) incidences of the given owners.
        owners = np.asarray(owners, dtype=np.int64)
        deg = batch.degree[owners]
        cum = np.zeros(len(owners) + 1, dtype=np.int64)
        np.cumsum(deg, out=cum[1:])
        owner_e = np.repeat(
            np.arange(len(owners), dtype=np.int64), deg
        )
        edge = np.repeat(
            snap.ptr[batch.vms[owners]] - cum[:-1], deg
        ) + np.arange(int(cum[-1]))
        peer = snap.peer[edge]
        hit = moved_flag[peer]
        if not np.any(hit):
            return np.empty(0, dtype=np.int64)
        m_owner = owner_e[hit]
        m_peer = peer[hit]
        m_rate = snap.rate[edge[hit]]
        m_old = old_of[m_peer]
        m_new = new_of[m_peer]

        src = batch.source[owners[m_owner]]
        src_term = m_rate * (
            pw[pair_levels(src, m_new, rack_of, pod_of)]
            - pw[pair_levels(src, m_old, rack_of, pod_of)]
        )
        # Work in the compact row space of the stale owners only (their
        # candidate segments), then scatter once into the batch arrays.
        u_own, inv = np.unique(m_owner, return_inverse=True)
        g_own = owners[u_own]
        seg_len = (batch.ptr[g_own + 1] - batch.ptr[g_own]).astype(np.int64)
        c_ptr = np.zeros(len(u_own) + 1, dtype=np.int64)
        np.cumsum(seg_len, out=c_ptr[1:])
        n_stale_rows = int(c_ptr[-1])
        if n_stale_rows == 0:
            return g_own
        stale_rows = np.repeat(
            batch.ptr[g_own] - c_ptr[:-1], seg_len
        ) + np.arange(n_stale_rows)
        # Source-side term: one per-owner aggregate over its whole segment.
        src_adjust = np.zeros(len(u_own))
        np.add.at(src_adjust, inv, src_term)
        adjust = np.repeat(src_adjust, seg_len)

        # Candidate-side term: expand each incidence over the owner's rows.
        if owner_pods is not None:
            ow = owners[m_owner]
            hit = (
                owner_pods[ow, pod_of[m_new]]
                | owner_pods[ow, pod_of[m_old]]
            )
            inv_c = inv[hit]
            rate_c = m_rate[hit]
            old_c = m_old[hit]
            new_c = m_new[hit]
        else:
            inv_c, rate_c, old_c, new_c = inv, m_rate, m_old, m_new
        inc_rows = seg_len[inv_c]
        i_ptr = np.zeros(len(inv_c) + 1, dtype=np.int64)
        np.cumsum(inc_rows, out=i_ptr[1:])
        total = int(i_ptr[-1])
        row_local = np.repeat(c_ptr[inv_c] - i_ptr[:-1], inc_rows) + np.arange(
            total
        )
        inc = np.repeat(np.arange(len(inv_c), dtype=np.int64), inc_rows)
        hosts = batch.host[stale_rows[row_local]]
        new_r = new_c[inc]
        old_r = old_c[inc]
        # The level-weight difference vanishes unless the candidate host
        # shares a pod with the peer's old or new placement (both levels
        # are 3 otherwise) — which prunes the expensive part of the
        # expansion to a couple of pods' worth of rows.
        host_pod = pod_of[hosts]
        near = (host_pod == pod_of[new_r]) | (host_pod == pod_of[old_r])
        row_near = row_local[near]
        hosts_n = hosts[near]
        new_n = new_r[near]
        old_n = old_r[near]
        rate_n = rate_c[inc[near]]
        cand_term = rate_n * (
            pw[pair_levels(hosts_n, new_n, rack_of, pod_of)]
            - pw[pair_levels(hosts_n, old_n, rack_of, pod_of)]
        )
        adjust -= np.bincount(row_near, weights=cand_term, minlength=n_stale_rows)
        batch.delta[stale_rows] += adjust
        if self._engine.bandwidth_threshold is not None:
            # The §V-C landing rate is only consumed when the threshold is
            # in force; skip the correction otherwise.
            onto_term = rate_n * (
                (new_n == hosts_n).astype(float) - (old_n == hosts_n)
            )
            batch.onto_rate[stale_rows] += np.bincount(
                row_near, weights=onto_term, minlength=n_stale_rows
            )
        return g_own

    # -- settlement ---------------------------------------------------------

    def _settle_owners(
        self,
        result: RoundResult,
        batch: CandidateBatch,
        rows: np.ndarray,
        positions: np.ndarray,
        choice: np.ndarray,
        best: np.ndarray,
    ) -> List[int]:
        """Record final decisions for owners without a beneficial move.

        ``rows`` are owner indices into the batch (callers pass them in
        visit order); ``positions`` maps owner index → visit position.
        Returns the settled VM ids (the wave callback reports them
        together with the wave's movers).
        """
        if rows.size == 0:
            return []
        vm_ids = self._fast.snapshot.vm_ids
        reason_code = np.where(
            batch.degree[rows] == 0, 0, np.where(choice[rows] < 0, 1, 2)
        )
        deltas = np.where(reason_code == 2, np.maximum(best[rows], 0.0), 0.0)
        vms = vm_ids[batch.vms[rows]]
        pos = positions[rows]
        cols = result.decisions
        cols.vm[pos] = vms
        cols.source[pos] = batch.source[rows]
        cols.delta[pos] = deltas
        cols.reason[pos] = reason_code
        return vms.tolist()
