"""Wave-batched token rounds: one S-CORE iteration, numpy end-to-end.

The reference control loop (`SCOREScheduler.run_reference`) circulates the
token hold by hold — ~|V| per-VM python/numpy round-trips per iteration.
When a policy can freeze its visit order at round start
(:meth:`repro.core.policies.TokenPolicy.round_order`), this module executes
the whole round in *waves* instead:

1. **Round snapshot.**  Every hold's candidate targets and Lemma 3 deltas
   are scored in one vectorized pass
   (:meth:`repro.core.fastcost.FastCostEngine.candidate_batch`).  The
   candidate *sets* are frozen for the round (the round-snapshot
   contract); delta values are kept exact across waves by incremental
   adjustment (see 4).
2. **Wave planning.**  Proposals are admitted greedily in descending-gain
   priority under the interference rule — no two migrations in a wave may
   share a source host, a target host, or a communication-peer relation —
   which makes every admitted move's delta, capacity probe and §V-C
   bandwidth probe exact regardless of application order within the wave.
   When a proposal's target host is already claimed, the planner may
   *retarget* it to another candidate with exactly the same delta (same-
   rack ties are pervasive), so equal-gain movers pack one wave instead
   of serializing; in an interference-free round no retargeting (and no
   deferral) ever happens, and the outcome is identical to the
   sequential loop's.
3. **Batched apply.**  Each wave lands as one batched allocation update
   (``Allocation.migrate_many``) plus one batched cache update
   (``FastCostEngine.apply_moves``).
4. **Deferral + re-evaluation.**  Proposals the wave could not admit are
   re-evaluated against the post-wave state: feasibility is re-masked
   from the engine's live mirrors every wave, and the deltas of every
   deferred VM with a *moved peer* are incrementally corrected (only the
   moved peers' terms change), so every applied delta is exact at its
   application time.  VMs without a beneficial move are settled when
   first evaluated.

A round therefore applies the same kind of strictly-improving, exactly-
accounted migrations as the sequential loop: when no decision interacts
with another the outcomes are identical, and when they do interact the
round still only applies exact positive deltas (``tests/test_wave_rounds``
pins both properties, plus the interference rule itself on live waves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation, CapacityError
from repro.core.fastcost import CandidateBatch, FastCostEngine, pair_levels
from repro.core.migration import MigrationDecision, MigrationEngine
from repro.traffic.matrix import TrafficMatrix


@dataclass
class RoundResult:
    """Outcome of one wave-batched token round."""

    #: Final per-hold decisions, aligned with the round's visit order.
    decisions: List[MigrationDecision] = field(default_factory=list)
    #: Per-hold migrated flags / applied deltas, aligned with the order —
    #: the array form the scheduler builds its time series from.
    hold_migrated: np.ndarray = field(default_factory=lambda: np.empty(0, bool))
    hold_delta: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: Number of migrations performed.
    migrations: int = 0
    #: Number of waves the round took (1 when nothing interfered).
    waves: int = 0
    #: Total deferral events (a hold deferred over k waves counts k times).
    deferrals: int = 0
    #: Per-wave applied moves, ``(vm_id, source_host, target_host)`` — the
    #: raw material of the wave-disjointness property test.  Populated only
    #: when the engine was built with ``record_waves=True``.
    wave_moves: List[List[Tuple[int, int, int]]] = field(default_factory=list)

    @property
    def interference_free(self) -> bool:
        """Whether every proposal landed in the first wave, untouched."""
        return self.deferrals == 0


class BatchedRoundEngine:
    """Executes wave-batched token rounds over one (allocation, traffic).

    Bound to the same :class:`FastCostEngine` the migration engine uses;
    thresholds (``cm``, §V-C bandwidth, candidate cap) are read from the
    :class:`MigrationEngine` so batched and per-hold decisions share one
    configuration.
    """

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        engine: MigrationEngine,
        fast: FastCostEngine,
        record_waves: bool = False,
        wave_callback=None,
    ) -> None:
        """``wave_callback``, when given, is invoked after every wave with
        the list of VM ids whose holds settled in it (movers and
        non-movers alike; every VM of the round is reported exactly once
        across the round's waves).  The scheduler wires it to the
        policy's mid-round token refresh (``TokenPolicy.wave_refresh``)."""
        if not fast.is_bound_to(allocation, traffic):
            raise ValueError(
                "fast engine is not bound to the scheduler's allocation/traffic"
            )
        self._allocation = allocation
        self._traffic = traffic
        self._engine = engine
        self._fast = fast
        self._record_waves = record_waves
        self._wave_callback = wave_callback

    def run_round(self, order: Sequence[int]) -> RoundResult:
        """Run one full token round over ``order`` (a visit-order snapshot)."""
        fast = self._fast
        engine = self._engine
        n = len(order)
        result = RoundResult(
            decisions=[None] * n,  # type: ignore[list-item]
            hold_migrated=np.zeros(n, dtype=bool),
            hold_delta=np.zeros(n),
        )
        batch = fast.candidate_batch(
            fast.dense_indices(order), engine.max_candidates
        )
        positions = np.arange(n, dtype=np.int64)
        cm = engine.migration_cost
        threshold = engine.bandwidth_threshold
        n_hosts = self._allocation.cluster.n_servers

        while positions.size:
            feasible = fast.candidate_feasible(batch, threshold)
            choice, best, _, ties = fast.best_candidates(
                batch, feasible, return_ties=True
            )
            beneficial = (choice >= 0) & (best > 0) & (best > cm)
            settled_ids = self._settle_non_movers(
                result, batch, positions, choice, best, beneficial
            )
            prop = np.nonzero(beneficial)[0]
            if prop.size == 0:
                if self._wave_callback is not None and settled_ids:
                    self._wave_callback(settled_ids)
                break
            result.waves += 1
            accepted, target = self._plan_wave(
                batch, best, prop, ties, n_hosts
            )
            moved, old_hosts, new_hosts = self._apply_wave(
                result, positions, batch, prop[accepted], target[accepted],
                settled_ids,
            )
            if self._wave_callback is not None and settled_ids:
                # Fired after the wave landed, so refreshes see the
                # post-wave placement (the freshest state this round).
                self._wave_callback(settled_ids)
            deferred = prop[~accepted]
            if deferred.size == 0:
                break
            result.deferrals += int(deferred.size)
            keep = batch.select(deferred, with_onto=threshold is not None)
            keep_positions = positions[deferred]
            if moved.size:
                self._adjust_stale(keep, moved, old_hosts, new_hosts)
            batch = keep
            positions = keep_positions

        assert all(d is not None for d in result.decisions)
        return result

    # -- wave planning ------------------------------------------------------

    def _plan_wave(
        self,
        batch: CandidateBatch,
        best: np.ndarray,
        prop: np.ndarray,
        ties: np.ndarray,
        n_hosts: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Greedy interference-free admission with exact-tie retargeting.

        Returns ``(accepted, target)`` over ``prop``: the admission mask
        and each admitted proposal's target host.  Priority is descending
        Lemma 3 gain (stable on visit position).  Each proposal may land
        on any candidate whose delta *exactly equals* its best (``ties``,
        from :meth:`FastCostEngine.best_candidates`) — the first such host
        in probing order not yet claimed this wave — so an already-claimed
        host only defers a VM when no equally-good alternative exists.
        """
        fast = self._fast
        snap = fast.snapshot
        n_prop = len(prop)
        order = np.argsort(-best[prop], kind="stable")
        rank_of = np.empty(n_prop, dtype=np.int64)
        rank_of[order] = np.arange(n_prop)

        # Tied rows of the proposal owners only, mapped to proposal index.
        prop_index = np.full(batch.n_owners, -1, dtype=np.int64)
        prop_index[prop] = np.arange(n_prop)
        t_owner = prop_index[batch.owner[ties]]
        in_prop = t_owner >= 0
        t_owner = t_owner[in_prop]
        t_host = batch.host[ties[in_prop]]

        sources = batch.source[prop]
        vms = batch.vms[prop]
        accepted = np.zeros(n_prop, dtype=bool)
        target = np.full(n_prop, -1, dtype=np.int64)
        alive = np.ones(n_prop, dtype=bool)
        host_used = np.zeros(n_hosts, dtype=bool)
        vm_blocked = np.zeros(snap.n_vms, dtype=bool)
        big = n_prop  # sentinel priority rank

        while True:
            alive &= ~host_used[sources] & ~vm_blocked[vms]
            # Compact the tied rows to the still-contending owners; rows of
            # admitted/claimed hosts and settled owners never return.
            open_rows = alive[t_owner] & ~host_used[t_host]
            t_owner = t_owner[open_rows]
            t_host = t_host[open_rows]
            if t_owner.size == 0:
                break
            # First open tied row per owner (probing order).
            pick = np.full(n_prop, -1, dtype=np.int64)
            # rows are grouped by owner ascending; first occurrence wins.
            first_of_owner = np.ones(len(t_owner), dtype=bool)
            first_of_owner[1:] = t_owner[1:] != t_owner[:-1]
            pick[t_owner[first_of_owner]] = np.nonzero(first_of_owner)[0]
            contenders = np.nonzero(pick >= 0)[0]
            # Host claims resolve by gain priority (then visit order).
            claim = np.full(n_hosts, big, dtype=np.int64)
            np.minimum.at(claim, sources[contenders], rank_of[contenders])
            np.minimum.at(claim, t_host[pick[contenders]], rank_of[contenders])
            winners = contenders[
                (claim[sources[contenders]] == rank_of[contenders])
                & (claim[t_host[pick[contenders]]] == rank_of[contenders])
            ]
            # Peer filter, vectorized: a winner yields when one of its
            # peers is a higher-priority winner (the loser stays alive for
            # the next admission round — conservative vs the sequential
            # sweep, but converging to the same admitted set).
            winner_rank = np.full(snap.n_vms, big, dtype=np.int64)
            winner_rank[vms[winners]] = rank_of[winners]
            w_ptr, w_peers = self._peer_slices(vms[winners])
            peer_best = np.full(len(winners), big, dtype=np.int64)
            starts = w_ptr[:-1]
            nonempty = w_ptr[1:] > starts
            if np.any(nonempty):
                peer_best[nonempty] = np.minimum.reduceat(
                    winner_rank[w_peers], starts[nonempty]
                )
            ok = (peer_best > rank_of[winners]) & ~vm_blocked[vms[winners]]
            chosen = winners[ok]
            if chosen.size == 0:
                break
            accepted[chosen] = True
            alive[chosen] = False
            target[chosen] = t_host[pick[chosen]]
            host_used[sources[chosen]] = True
            host_used[target[chosen]] = True
            c_ptr, c_peers = self._peer_slices(vms[chosen])
            vm_blocked[c_peers] = True
        return accepted, target

    def _peer_slices(self, dense_vms: np.ndarray):
        """CSR (ptr, flat peer indices) of the given dense VMs."""
        snap = self._fast.snapshot
        counts = (snap.ptr[dense_vms + 1] - snap.ptr[dense_vms]).astype(np.int64)
        ptr = np.zeros(len(dense_vms) + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        flat = np.repeat(snap.ptr[dense_vms] - ptr[:-1], counts) + np.arange(
            int(ptr[-1])
        )
        return ptr, snap.peer[flat]

    # -- wave application ---------------------------------------------------

    def _apply_wave(
        self,
        result: RoundResult,
        positions: np.ndarray,
        batch: CandidateBatch,
        wave: np.ndarray,
        targets: np.ndarray,
        settled_ids: List[int],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply one admitted wave; returns (moved dense, old, new hosts).

        Every hold decided here (movers, exact-gate no-gain settles and
        capacity-fallback decisions) is appended to ``settled_ids`` for
        the wave callback.

        The batched apply is guarded by ``Allocation.migrate_many``'s
        validate-first contract: if the allocation's own accounting rejects
        any move (mirror drift — not expected, but checked), the wave
        falls back to per-move application and the rejected holds settle
        through the sequential reference path.
        """
        fast = self._fast
        allocation = self._allocation
        vm_ids = fast.snapshot.vm_ids
        dense = batch.vms[wave]
        sources = batch.source[wave]
        # Theorem 1 is decided on the exact per-peer delta (the value the
        # cache update applies), not the batch's aggregated score — a move
        # whose true gain is zero must not ride in on rounding noise.  A
        # proposal failing the exact gate settles as no-gain.
        exact = fast.exact_deltas(dense, targets)
        cm = self._engine.migration_cost
        settled_ids.extend(vm_ids[dense].tolist())
        genuine = (exact > 0) & (exact > cm)
        if not genuine.all():
            decisions = result.decisions
            for pos, vm_id, src, d in zip(
                positions[wave[~genuine]].tolist(),
                vm_ids[dense[~genuine]].tolist(),
                sources[~genuine].tolist(),
                exact[~genuine].tolist(),
            ):
                decisions[pos] = MigrationDecision(
                    vm_id=vm_id,
                    source_host=src,
                    target_host=None,
                    delta=max(0.0, d),
                    migrated=False,
                    reason="no_gain",
                )
            wave = wave[genuine]
            dense = dense[genuine]
            sources = sources[genuine]
            targets = targets[genuine]
        moves = list(zip(vm_ids[dense].tolist(), targets.tolist()))
        moved_rows: List[int] = []
        drift_moved: List[Tuple[int, int, int]] = []  # dense, old, new
        wave_log: List[Tuple[int, int, int]] = []
        try:
            allocation.migrate_many(moves)
            moved_rows = list(range(len(moves)))
        except CapacityError:
            for row, (vm_id, tgt) in enumerate(moves):
                try:
                    allocation.migrate(vm_id, tgt)
                    moved_rows.append(row)
                except CapacityError:
                    decision = self._engine.decide_and_migrate(
                        allocation, self._traffic, vm_id
                    )
                    pos = positions[wave[row]]
                    result.decisions[pos] = decision
                    if decision.migrated:
                        result.migrations += 1
                        result.hold_migrated[pos] = True
                        result.hold_delta[pos] = decision.delta
                        drift_moved.append(
                            (
                                int(dense[row]),
                                decision.source_host,
                                decision.target_host,
                            )
                        )
                        wave_log.append(
                            (vm_id, decision.source_host, decision.target_host)
                        )
        moved_rows = np.array(moved_rows, dtype=np.int64)
        if moved_rows.size:
            deltas = fast.apply_moves(dense[moved_rows], targets[moved_rows])
            pos_arr = positions[wave[moved_rows]]
            result.hold_migrated[pos_arr] = True
            result.hold_delta[pos_arr] = deltas
            decisions = result.decisions
            srcs = sources[moved_rows].tolist()
            for pos, row, src, delta in zip(
                pos_arr.tolist(), moved_rows.tolist(), srcs, deltas.tolist()
            ):
                vm_id, tgt = moves[row]
                decisions[pos] = MigrationDecision(
                    vm_id=vm_id,
                    source_host=src,
                    target_host=tgt,
                    delta=delta,
                    migrated=True,
                    reason="migrated",
                )
            if self._record_waves:
                wave_log.extend(
                    (moves[row][0], src, moves[row][1])
                    for row, src in zip(moved_rows.tolist(), srcs)
                )
            result.migrations += int(moved_rows.size)
        if self._record_waves:
            result.wave_moves.append(wave_log)
        moved_dense = np.concatenate(
            [dense[moved_rows], np.array([m[0] for m in drift_moved], dtype=np.int64)]
        )
        old_hosts = np.concatenate(
            [sources[moved_rows], np.array([m[1] for m in drift_moved], dtype=np.int64)]
        )
        new_hosts = np.concatenate(
            [targets[moved_rows], np.array([m[2] for m in drift_moved], dtype=np.int64)]
        )
        return moved_dense, old_hosts, new_hosts

    # -- staleness ----------------------------------------------------------

    def _adjust_stale(
        self,
        batch: CandidateBatch,
        moved: np.ndarray,
        old_hosts: np.ndarray,
        new_hosts: np.ndarray,
    ) -> None:
        """Correct deferred owners' deltas for this wave's peer movements.

        For owner u with candidate x and moved peer p (rate λ):

        ``Δ(u→x) += λ·(w[l(src_u, new_p)] − w[l(src_u, old_p)])
                  − λ·(w[l(x, new_p)] − w[l(x, old_p)])``

        and the §V-C landing rate gains/loses λ as p lands on / leaves x.
        Only the moved peers' terms change, so the correction touches
        ``Σ_u |candidates(u)| × |moved peers(u)|`` rows — a tiny slice of
        a full re-score — and keeps every retained delta exact against
        the post-wave placement (candidate sets stay the round snapshot).
        """
        fast = self._fast
        snap = fast.snapshot
        pw = fast._path_weight
        rack_of, pod_of = fast._rack_of, fast._pod_of
        moved_flag = np.zeros(snap.n_vms, dtype=bool)
        moved_flag[moved] = True
        old_of = np.zeros(snap.n_vms, dtype=np.int64)
        new_of = np.zeros(snap.n_vms, dtype=np.int64)
        old_of[moved] = old_hosts
        new_of[moved] = new_hosts

        # (owner, moved peer) incidences of the deferred owners.
        owners = np.arange(batch.n_owners, dtype=np.int64)
        deg = batch.degree
        cum = np.zeros(batch.n_owners + 1, dtype=np.int64)
        np.cumsum(deg, out=cum[1:])
        owner_e = np.repeat(owners, deg)
        edge = np.repeat(snap.ptr[batch.vms] - cum[:-1], deg) + np.arange(
            int(cum[-1])
        )
        peer = snap.peer[edge]
        hit = moved_flag[peer]
        if not np.any(hit):
            return
        m_owner = owner_e[hit]
        m_peer = peer[hit]
        m_rate = snap.rate[edge[hit]]
        m_old = old_of[m_peer]
        m_new = new_of[m_peer]

        src = batch.source[m_owner]
        src_term = m_rate * (
            pw[pair_levels(src, m_new, rack_of, pod_of)]
            - pw[pair_levels(src, m_old, rack_of, pod_of)]
        )
        # Work in the compact row space of the stale owners only (their
        # candidate segments), then scatter once into the batch arrays.
        row_counts = (batch.ptr[1:] - batch.ptr[:-1]).astype(np.int64)
        u_own, inv = np.unique(m_owner, return_inverse=True)
        seg_len = row_counts[u_own]
        c_ptr = np.zeros(len(u_own) + 1, dtype=np.int64)
        np.cumsum(seg_len, out=c_ptr[1:])
        n_stale_rows = int(c_ptr[-1])
        if n_stale_rows == 0:
            return
        stale_rows = np.repeat(batch.ptr[u_own] - c_ptr[:-1], seg_len) + np.arange(
            n_stale_rows
        )
        # Source-side term: one per-owner aggregate over its whole segment.
        src_adjust = np.zeros(len(u_own))
        np.add.at(src_adjust, inv, src_term)
        adjust = np.repeat(src_adjust, seg_len)

        # Candidate-side term: expand each incidence over the owner's rows.
        inc_rows = seg_len[inv]
        i_ptr = np.zeros(len(m_owner) + 1, dtype=np.int64)
        np.cumsum(inc_rows, out=i_ptr[1:])
        total = int(i_ptr[-1])
        row_local = np.repeat(c_ptr[inv] - i_ptr[:-1], inc_rows) + np.arange(
            total
        )
        inc = np.repeat(np.arange(len(m_owner), dtype=np.int64), inc_rows)
        hosts = batch.host[stale_rows[row_local]]
        new_r = m_new[inc]
        old_r = m_old[inc]
        # The level-weight difference vanishes unless the candidate host
        # shares a pod with the peer's old or new placement (both levels
        # are 3 otherwise) — which prunes the expensive part of the
        # expansion to a couple of pods' worth of rows.
        host_pod = pod_of[hosts]
        near = (host_pod == pod_of[new_r]) | (host_pod == pod_of[old_r])
        row_near = row_local[near]
        hosts_n = hosts[near]
        new_n = new_r[near]
        old_n = old_r[near]
        rate_n = m_rate[inc[near]]
        cand_term = rate_n * (
            pw[pair_levels(hosts_n, new_n, rack_of, pod_of)]
            - pw[pair_levels(hosts_n, old_n, rack_of, pod_of)]
        )
        adjust -= np.bincount(row_near, weights=cand_term, minlength=n_stale_rows)
        batch.delta[stale_rows] += adjust
        if self._engine.bandwidth_threshold is not None:
            # The §V-C landing rate is only consumed when the threshold is
            # in force; skip the correction otherwise.
            onto_term = rate_n * (
                (new_n == hosts_n).astype(float) - (old_n == hosts_n)
            )
            batch.onto_rate[stale_rows] += np.bincount(
                row_near, weights=onto_term, minlength=n_stale_rows
            )

    # -- settlement ---------------------------------------------------------

    def _settle_non_movers(
        self,
        result: RoundResult,
        batch: CandidateBatch,
        positions: np.ndarray,
        choice: np.ndarray,
        best: np.ndarray,
        beneficial: np.ndarray,
    ) -> List[int]:
        """Record final decisions for every owner without a beneficial move.

        Returns the settled VM ids (the wave callback reports them
        together with the wave's movers).
        """
        decisions = result.decisions
        vm_ids = self._fast.snapshot.vm_ids
        rows = np.nonzero(~beneficial)[0]
        if rows.size == 0:
            return []
        reason_code = np.where(
            batch.degree[rows] == 0, 0, np.where(choice[rows] < 0, 1, 2)
        )
        deltas = np.where(reason_code == 2, np.maximum(best[rows], 0.0), 0.0)
        reasons = ("no_peers", "no_feasible_target", "no_gain")
        settled = vm_ids[batch.vms[rows]].tolist()
        for pos, vm_id, source, code, delta in zip(
            positions[rows].tolist(),
            settled,
            batch.source[rows].tolist(),
            reason_code.tolist(),
            deltas.tolist(),
        ):
            decisions[pos] = MigrationDecision(
                vm_id=vm_id,
                source_host=source,
                target_host=None,
                delta=delta,
                migrated=False,
                reason=reasons[code],
            )
        return settled
