"""Array-backed fast cost engine for paper-scale runs.

The naive :class:`repro.core.cost.CostModel` walks python dicts per VM pair
and is the readable reference implementation of Eq. (1)/(2) and Lemma 3.
At the paper's published scale (2560 hosts, ~35k VMs, ~50k communicating
pairs) the per-pair python loops dominate the run, so this module provides
the same quantities computed over flat numpy arrays:

* :class:`TrafficSnapshot` freezes a :class:`~repro.traffic.matrix.TrafficMatrix`
  into CSR-style arrays — one (peer index, rate) slice per VM plus
  undirected pair arrays — over a dense VM index.
* :func:`pair_levels` computes communication levels for whole pair arrays
  from the topology's cached per-host rack/pod id vectors
  (:meth:`repro.topology.base.Topology.host_rack_ids`).
* :class:`FastCostEngine` binds a snapshot to one allocation and maintains
  incremental caches — per-VM cost (Eq. 1), network-wide cost (Eq. 2) and
  per-host capacity usage — updated in O(peers of the moving VM) per
  migration, exactly as Lemma 3 promises.

The engine exposes the same query signatures as ``CostModel`` for the
methods shared with it (``total_cost``, ``vm_cost``, ``highest_level``,
``migration_delta``), so scheduler policies and tests can use either
implementation interchangeably; the differential test suite asserts the
two agree to within 1e-9 on randomized scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel, LinkWeights
from repro.topology.base import Topology
from repro.traffic.matrix import TrafficMatrix


def pair_levels(
    hosts_u: np.ndarray,
    hosts_v: np.ndarray,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
) -> np.ndarray:
    """Element-wise communication levels between two host arrays."""
    levels = np.full(hosts_u.shape, 3, dtype=np.int64)
    levels[pod_of[hosts_u] == pod_of[hosts_v]] = 2
    levels[rack_of[hosts_u] == rack_of[hosts_v]] = 1
    levels[hosts_u == hosts_v] = 0
    return levels


def path_weight_table(weights: LinkWeights, max_level: int) -> np.ndarray:
    """``2 * Σ_{i<=l} c_i`` per level as a lookup array (level 0 included)."""
    return np.array(
        [weights.path_weight(level) for level in range(max_level + 1)]
    )


class TrafficSnapshot:
    """An immutable array view of a traffic matrix over a dense VM index.

    ``vm_ids`` fixes the index space (ascending VM id order); the CSR
    triplet (``ptr``, ``peer``, ``rate``) stores each VM's peers — peers
    appear in ascending VM-id order within a slice, matching the sort
    order the naive candidate ranking uses for ties.  ``pair_u/pair_v/
    pair_rate`` hold every unordered pair once (u < v in dense indices).
    """

    __slots__ = (
        "vm_ids",
        "vm_index",
        "ptr",
        "peer",
        "rate",
        "row",
        "pair_u",
        "pair_v",
        "pair_rate",
    )

    def __init__(
        self,
        vm_ids: np.ndarray,
        vm_index: Dict[int, int],
        ptr: np.ndarray,
        peer: np.ndarray,
        rate: np.ndarray,
        row: np.ndarray,
        pair_u: np.ndarray,
        pair_v: np.ndarray,
        pair_rate: np.ndarray,
    ) -> None:
        self.vm_ids = vm_ids
        self.vm_index = vm_index
        self.ptr = ptr
        self.peer = peer
        self.rate = rate
        self.row = row
        self.pair_u = pair_u
        self.pair_v = pair_v
        self.pair_rate = pair_rate

    @classmethod
    def build(
        cls,
        traffic: TrafficMatrix,
        vm_ids: Sequence[int],
        strict: bool = False,
    ) -> "TrafficSnapshot":
        """Snapshot ``traffic`` over the given VM population.

        Pairs touching VMs outside ``vm_ids`` are skipped unless ``strict``
        is set, in which case they raise (the scheduler guarantees the
        traffic matrix only references placed VMs, so the engine builds in
        strict mode to catch drift).
        """
        ids = np.array(sorted(vm_ids), dtype=np.int64)
        index = {int(vm_id): i for i, vm_id in enumerate(ids)}
        us: List[int] = []
        vs: List[int] = []
        rates: List[float] = []
        for u, v, rate in traffic.pairs():
            iu = index.get(u)
            iv = index.get(v)
            if iu is None or iv is None:
                if strict:
                    missing = u if iu is None else v
                    raise ValueError(
                        f"traffic references VM {missing} outside the "
                        f"snapshot population"
                    )
                continue
            if iu > iv:
                iu, iv = iv, iu
            us.append(iu)
            vs.append(iv)
            rates.append(rate)
        pair_u = np.array(us, dtype=np.int64)
        pair_v = np.array(vs, dtype=np.int64)
        pair_rate = np.array(rates, dtype=float)

        n = len(ids)
        # Directed edge list (each pair twice) -> CSR sorted by (owner, peer).
        row = np.concatenate([pair_u, pair_v])
        col = np.concatenate([pair_v, pair_u])
        val = np.concatenate([pair_rate, pair_rate])
        order = np.lexsort((col, row))
        row, col, val = row[order], col[order], val[order]
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(row, minlength=n), out=ptr[1:])
        return cls(
            vm_ids=ids,
            vm_index=index,
            ptr=ptr,
            peer=col,
            rate=val,
            row=row,
            pair_u=pair_u,
            pair_v=pair_v,
            pair_rate=pair_rate,
        )

    @property
    def n_vms(self) -> int:
        """Size of the dense VM index."""
        return len(self.vm_ids)

    @property
    def n_pairs(self) -> int:
        """Number of communicating (unordered) pairs captured."""
        return len(self.pair_rate)

    def peers_slice(self, dense_vm: int) -> Tuple[np.ndarray, np.ndarray]:
        """(peer dense indices, rates) of one VM, ascending by peer id."""
        lo, hi = self.ptr[dense_vm], self.ptr[dense_vm + 1]
        return self.peer[lo:hi], self.rate[lo:hi]


def assignment_cost(
    assignment: np.ndarray,
    snapshot: TrafficSnapshot,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
    path_weight: np.ndarray,
) -> float:
    """Eq. (2) cost of a dense host-assignment vector, fully vectorized.

    Shared by the GA baseline (thousands of candidate evaluations) and the
    engine's full recomputation path.
    """
    hu = assignment[snapshot.pair_u]
    hv = assignment[snapshot.pair_v]
    levels = pair_levels(hu, hv, rack_of, pod_of)
    return float(np.dot(snapshot.pair_rate, path_weight[levels]))


# -- population-matrix helpers (the batched GA engine) -----------------------
#
# The GA baseline evaluates, breeds and repairs a whole population of
# host-assignment vectors per generation.  These helpers operate on the
# population as one ``(pop, n_vms)`` integer matrix so a full generation is
# numpy end-to-end: no per-individual python loop anywhere on the hot path.

#: Row-chunk budget (elements of a (rows, n_pairs) temp) for population
#: scoring/repair; bounds peak memory at paper scale (~128 MB per temp).
_POPULATION_CHUNK_ELEMS = 16_000_000


def _row_chunks(n_rows: int, row_width: int) -> Tuple[range, int]:
    """(start offsets, chunk size) splitting rows so chunk × width is bounded."""
    rows = max(1, _POPULATION_CHUNK_ELEMS // max(1, row_width))
    return range(0, n_rows, rows), rows


def population_cost(
    assignments: np.ndarray,
    snapshot: TrafficSnapshot,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
    path_weight: np.ndarray,
) -> np.ndarray:
    """Eq. (2) cost of every row of a ``(pop, n_vms)`` assignment matrix.

    Row ``i`` equals ``assignment_cost(assignments[i], ...)`` to within
    float-summation reordering (the differential suite pins 1e-9 relative).
    Evaluation is chunked over rows so the (rows, n_pairs) level temporaries
    stay bounded regardless of population size.
    """
    assignments = np.asarray(assignments)
    if assignments.ndim != 2:
        raise ValueError(
            f"assignments must be a (pop, n_vms) matrix, got shape "
            f"{assignments.shape}"
        )
    pop = assignments.shape[0]
    costs = np.empty(pop, dtype=float)
    if snapshot.n_pairs == 0:
        costs[:] = 0.0
        return costs
    # Narrow mirrors of the host/rack/pod vectors cut the gather bandwidth
    # of the hot loop.  Levels exploit the containment hierarchy (same host
    # ⊆ same rack ⊆ same pod): level = 3 − pod_eq − rack_eq − host_eq, so
    # the weight matrix is one gather from a reversed path-weight table
    # over cheap int8 sums instead of three boolean masked writes.
    narrow = (
        np.int16
        if len(rack_of) < 2**15 - 1 and int(pod_of.max(initial=0)) < 2**15 - 1
        else np.int32
    )
    rack_n = rack_of.astype(narrow)
    pod_n = pod_of.astype(narrow)
    weight_rev = path_weight[3::-1].copy()  # index by (3 - level)
    starts, rows = _row_chunks(pop, snapshot.n_pairs)
    for start in starts:
        block = assignments[start : start + rows]
        if narrow is np.int16 and block.dtype != np.int16:
            block = block.astype(np.int16)
        hu = block[:, snapshot.pair_u]
        hv = block[:, snapshot.pair_v]
        eq_sum = (pod_n[hu] == pod_n[hv]).view(np.int8)
        eq_sum = eq_sum + (rack_n[hu] == rack_n[hv]).view(np.int8)
        eq_sum += (hu == hv).view(np.int8)
        costs[start : start + rows] = weight_rev[eq_sum] @ snapshot.pair_rate
    return costs


def population_counts(assignments: np.ndarray, n_hosts: int) -> np.ndarray:
    """Per-row host occupancy: ``counts[i, h]`` VMs of row ``i`` on ``h``."""
    assignments = np.asarray(assignments)
    pop, n_vms = assignments.shape
    counts = np.empty((pop, n_hosts), dtype=np.int64)
    starts, rows = _row_chunks(pop, n_vms)
    for start in starts:
        block = assignments[start : start + rows].astype(np.int64, copy=False)
        n = block.shape[0]
        flat = block + (np.arange(n, dtype=np.int64) * n_hosts)[:, None]
        counts[start : start + n] = np.bincount(
            flat.ravel(), minlength=n * n_hosts
        ).reshape(n, n_hosts)
    return counts


def population_feasible(assignments: np.ndarray, slots: np.ndarray) -> np.ndarray:
    """Per-row slot-capacity feasibility of a population matrix."""
    counts = population_counts(assignments, len(slots))
    return np.all(counts <= slots[None, :], axis=1)


def tournament_select(
    costs: np.ndarray, contenders: np.ndarray, worst: bool = False
) -> np.ndarray:
    """Winner index of each tournament row (lowest cost; ties → first).

    ``contenders`` is a ``(n, k)`` matrix of population indices; ``worst``
    flips the objective (the reverse tournaments replacement uses to pick
    losers).  Pure — callers draw the contender matrix from their RNG.
    """
    contenders = np.asarray(contenders)
    entry_costs = costs[contenders]
    pick = entry_costs.argmax(axis=1) if worst else entry_costs.argmin(axis=1)
    return contenders[np.arange(len(contenders)), pick]


def apply_swap_mutations(
    assignments: np.ndarray,
    rows: np.ndarray,
    swap_pairs: np.ndarray,
    n_swaps: np.ndarray,
) -> None:
    """Apply per-row VM swap mutations (§VI-A) to the matrix in place.

    ``swap_pairs`` is ``(len(rows), max_swaps, 2)`` VM indices and
    ``n_swaps`` how many leading swap slots each row uses.  Swapping the
    host assignments of two VMs permutes a row, so per-host occupancy —
    and therefore capacity feasibility — is invariant: mutated rows never
    need a repair pass.  The loop is over swap *slots* (a small constant),
    never over individuals.
    """
    rows = np.asarray(rows)
    for slot in range(swap_pairs.shape[1]):
        active = n_swaps > slot
        if not np.any(active):
            break
        r = rows[active]
        i = swap_pairs[active, slot, 0]
        j = swap_pairs[active, slot, 1]
        vi = assignments[r, i].copy()
        assignments[r, i] = assignments[r, j]
        assignments[r, j] = vi


def _run_ranks(keys: np.ndarray) -> np.ndarray:
    """0-based index of every entry within its run of equal ``keys``.

    ``keys`` must be run-grouped (equal values adjacent, e.g. sorted).
    Implemented as a forward max-accumulate of run-start positions —
    sequential passes only, no random gathers, which is what makes victim
    ranking cheap at millions of entries.
    """
    n = len(keys)
    idx = np.arange(n, dtype=np.int32)
    run_start = np.zeros(n, dtype=np.int32)
    if n > 1:
        np.multiply(keys[1:] != keys[:-1], idx[1:], out=run_start[1:])
        np.maximum.accumulate(run_start, out=run_start)
    return idx - run_start


def _group_starts(group_of: np.ndarray) -> np.ndarray:
    """First-host offsets of the contiguous groups in ``group_of``.

    Group ids must be consecutive integers starting at 0, each covering a
    contiguous host range (true of the rack and pod vectors of both paper
    topologies) — the repair stages index per-group aggregates by the raw
    id, so gapped id spaces would silently read the wrong group.
    """
    diffs = np.diff(group_of)
    if (
        len(group_of) == 0
        or group_of[0] != 0
        or np.any((diffs != 0) & (diffs != 1))
    ):
        raise ValueError(
            "population_repair requires contiguous host groups "
            "(consecutive rack/pod ids from 0 over the host index)"
        )
    return np.concatenate([[0], np.where(diffs > 0)[0] + 1])


def population_repair(
    assignments: np.ndarray,
    slots: np.ndarray,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
) -> int:
    """Move VMs off over-capacity hosts, preferring rack- then pod-local
    free slots — the batched form of the GA's capacity-repair pass.

    Victims (the highest-indexed surplus VMs of every overfull host) are
    extracted once per row block, then placed in three vectorized stages of
    shrinking locality — same rack as the overfull host, same pod,
    anywhere — mirroring the per-individual repair's preference order.
    Within a stage, evictees fill their group's free slots in ascending
    host order.  Operates on the whole ``(pop, n_vms)`` matrix in place and
    returns the number of VMs moved.  Total slots must cover ``n_vms``
    (guaranteed whenever a feasible assignment exists), or the final stage
    raises.
    """
    assignments_full = np.asarray(assignments)
    n_hosts = len(slots)
    slots = np.asarray(slots, dtype=np.int64)
    group_maps = (
        np.asarray(rack_of, dtype=np.int64),
        np.asarray(pod_of, dtype=np.int64),
        np.zeros(n_hosts, dtype=np.int64),
    )
    group_starts = [_group_starts(g) for g in group_maps]
    moved_total = 0
    starts, chunk = _row_chunks(len(assignments_full), assignments_full.shape[1])
    for start in starts:
        moved_total += _repair_block(
            assignments_full[start : start + chunk],
            slots,
            group_maps,
            group_starts,
        )
    return moved_total


def _repair_block(
    block: np.ndarray,
    slots: np.ndarray,
    group_maps: Sequence[np.ndarray],
    group_starts: Sequence[np.ndarray],
) -> int:
    """Repair one row block: extract victims once, place in locality stages."""
    n_rows, _ = block.shape
    n_hosts = len(slots)
    counts = population_counts(block, n_hosts)
    over_host = counts > slots[None, :]
    if not np.any(over_host):
        return 0
    free = slots[None, :] - np.minimum(counts, slots[None, :])

    # Victims: on each overfull host, the highest-indexed VMs beyond the
    # slot limit.  Every occupant of an overfull host is encoded into one
    # sortable integer (row, host, vm); a single radix sort then groups
    # entries by (row, host) in ascending VM order, so in-group rank ranks
    # by VM index.
    on_over = over_host[np.arange(n_rows)[:, None], block]
    flat = np.flatnonzero(on_over)
    n_vms = block.shape[1]
    entry_rows = flat // n_vms
    entry_hosts = block.reshape(-1)[flat].astype(np.int64)
    key = (entry_rows * n_hosts + entry_hosts) * n_vms + (
        flat - entry_rows * n_vms
    )
    key.sort(kind="stable")
    group_key = key // n_vms
    rank = _run_ranks(group_key)
    # Thresholds per entry without decoding every entry's host: the host is
    # recoverable from the group key alone.
    victim = rank >= slots[group_key % n_hosts]
    victim_group = group_key[victim]
    vv = key[victim] - victim_group * n_vms
    vr, vh = np.divmod(victim_group, n_hosts)

    pending = np.ones(len(vr), dtype=bool)
    moved = 0
    for stage, (group_of, gstarts) in enumerate(zip(group_maps, group_starts)):
        is_final = stage == len(group_maps) - 1
        pr, ph, pv = vr[pending], vh[pending], vv[pending]
        if pr.size == 0:
            break

        # Rank pending victims within their (row, preference-group).  The
        # victim arrays are sorted by (row, host, vm) and group ids are
        # nondecreasing in the host index, so any pending subset is already
        # sorted by (row, group).
        pg = group_of[ph]
        vrank = _run_ranks(pr * n_hosts + pg)

        # Per-(row, group) free capacity; group ids are consecutive from 0.
        group_free = np.add.reduceat(free, gstarts, axis=1)
        satisfied = vrank < group_free[pr, pg]
        if is_final and not np.all(satisfied):
            raise ValueError(
                "repair impossible: total slots do not cover the population"
            )
        if not np.any(satisfied):
            continue

        # Targets: evictee with in-group rank k lands on the first host of
        # its group whose cumulative free capacity exceeds k.  One global
        # searchsorted over the per-row cumulative-free array made globally
        # monotone by per-row offsets.
        cum_free = np.cumsum(free, axis=1)
        stride = int(cum_free[:, -1].max()) + 1
        offsets = np.arange(n_rows, dtype=np.int64) * stride
        monotone = (cum_free + offsets[:, None]).ravel()
        sr = pr[satisfied]
        gstart_host = gstarts[pg[satisfied]]
        base = np.where(gstart_host > 0, cum_free[sr, gstart_host - 1], 0)
        targets_flat = np.searchsorted(
            monotone, offsets[sr] + base + vrank[satisfied] + 1, side="left"
        )
        target_hosts = targets_flat - sr * n_hosts
        block[sr, pv[satisfied]] = target_hosts.astype(block.dtype, copy=False)
        filled = np.bincount(
            sr * n_hosts + target_hosts, minlength=n_rows * n_hosts
        ).reshape(n_rows, n_hosts)
        free -= filled
        moved += int(satisfied.sum())
        pending_idx = np.nonzero(pending)[0]
        pending[pending_idx[satisfied]] = False
    return moved


class FastCostEngine:
    """Incremental, vectorized cost engine bound to one allocation.

    The engine snapshots the traffic matrix and mirrors the allocation's
    VM → host mapping and per-host capacity usage into flat arrays.  All
    mutations must flow through :meth:`apply_migration` (the scheduler and
    :class:`repro.core.migration.MigrationEngine` do this) or be followed
    by :meth:`rebuild`; the scheduler rebuilds at the start of every run
    and after churn/traffic updates, so external mutation between runs is
    safe.
    """

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        weights: Optional[LinkWeights] = None,
    ) -> None:
        topology: Topology = allocation.topology
        self._weights = weights or LinkWeights.paper()
        if self._weights.max_level < topology.max_level:
            raise ValueError(
                f"weights cover {self._weights.max_level} levels but topology "
                f"has {topology.max_level}"
            )
        self._topology = topology
        self._allocation = allocation
        self._traffic = traffic
        self._path_weight = path_weight_table(self._weights, topology.max_level)
        self._rack_of = topology.host_rack_ids()
        self._pod_of = topology.host_pod_ids()
        self._slot_cap, self._ram_cap, self._cpu_cap, self._nic_cap = (
            allocation.cluster.capacity_arrays()
        )
        self.rebuild()

    # -- binding -----------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The topology levels are computed against."""
        return self._topology

    @property
    def weights(self) -> LinkWeights:
        """The link weights in effect."""
        return self._weights

    @property
    def allocation(self) -> Allocation:
        """The bound allocation."""
        return self._allocation

    @property
    def traffic(self) -> TrafficMatrix:
        """The bound traffic matrix (snapshotted at the last rebuild)."""
        return self._traffic

    @property
    def snapshot(self) -> TrafficSnapshot:
        """The current traffic snapshot (rebuilt on demand, not live)."""
        return self._snap

    def is_bound_to(self, allocation: Allocation, traffic: TrafficMatrix) -> bool:
        """Whether this engine's caches describe the given pair of objects."""
        return allocation is self._allocation and traffic is self._traffic

    def _check_bound(
        self, allocation: Optional[Allocation], traffic: Optional[TrafficMatrix]
    ) -> None:
        if allocation is not None and allocation is not self._allocation:
            raise ValueError(
                "FastCostEngine is bound to a different allocation; "
                "build a new engine or use the naive CostModel"
            )
        if traffic is not None and traffic is not self._traffic:
            raise ValueError(
                "FastCostEngine is bound to a different traffic matrix; "
                "call update_traffic() first"
            )

    def update_traffic(self, traffic: TrafficMatrix) -> None:
        """Bind a new traffic matrix and rebuild the caches."""
        self._traffic = traffic
        self.rebuild()

    def rebuild(self) -> None:
        """Resnapshot traffic and resync every cache from the allocation."""
        allocation = self._allocation
        self._snap = TrafficSnapshot.build(
            self._traffic, list(allocation.vm_ids()), strict=True
        )
        snap = self._snap
        n = snap.n_vms
        self._host_of = np.fromiter(
            (allocation.server_of(int(vm)) for vm in snap.vm_ids),
            dtype=np.int64,
            count=n,
        )
        n_hosts = len(self._slot_cap)
        self._slot_used = np.bincount(self._host_of, minlength=n_hosts)
        ram = np.fromiter(
            (allocation.vm(int(vm)).ram_mb for vm in snap.vm_ids),
            dtype=np.int64,
            count=n,
        )
        cpu = np.fromiter(
            (allocation.vm(int(vm)).cpu for vm in snap.vm_ids),
            dtype=float,
            count=n,
        )
        self._vm_ram = ram
        self._vm_cpu = cpu
        self._ram_used = np.bincount(self._host_of, weights=ram, minlength=n_hosts)
        self._ram_used = self._ram_used.astype(np.int64)
        self._cpu_used = np.bincount(self._host_of, weights=cpu, minlength=n_hosts)
        # Per-VM Eq. (1) costs over the directed edge list, then Eq. (2).
        levels = pair_levels(
            self._host_of[snap.row],
            self._host_of[snap.peer],
            self._rack_of,
            self._pod_of,
        )
        edge_cost = snap.rate * self._path_weight[levels]
        self._vm_cost = np.bincount(snap.row, weights=edge_cost, minlength=n)
        self._total = assignment_cost(
            self._host_of, snap, self._rack_of, self._pod_of, self._path_weight
        )
        # Per-host NIC egress (§V-C): every directed edge whose endpoints sit
        # on different hosts contributes its rate to the owner's host.
        crossing = levels > 0
        self._egress = np.bincount(
            self._host_of[snap.row][crossing],
            weights=snap.rate[crossing],
            minlength=n_hosts,
        )

    # -- CostModel-compatible queries --------------------------------------

    def total_cost(
        self,
        allocation: Optional[Allocation] = None,
        traffic: Optional[TrafficMatrix] = None,
    ) -> float:
        """C_A, Eq. (2) — maintained incrementally across migrations."""
        self._check_bound(allocation, traffic)
        return self._total

    def recompute_total_cost(self) -> float:
        """Eq. (2) from scratch over the arrays (drift diagnostics)."""
        return assignment_cost(
            self._host_of,
            self._snap,
            self._rack_of,
            self._pod_of,
            self._path_weight,
        )

    def vm_cost(
        self,
        allocation: Optional[Allocation],
        traffic: Optional[TrafficMatrix],
        vm_u: int,
    ) -> float:
        """C_A(u), Eq. (1) — read from the incremental per-VM cache."""
        self._check_bound(allocation, traffic)
        return float(self._vm_cost[self._dense(vm_u)])

    def highest_level(
        self,
        allocation: Optional[Allocation],
        traffic: Optional[TrafficMatrix],
        vm_u: int,
    ) -> int:
        """l_A(u): max communication level to any peer; 0 without peers."""
        self._check_bound(allocation, traffic)
        peers, _ = self._snap.peers_slice(self._dense(vm_u))
        if peers.size == 0:
            return 0
        host_u = self._host_of[self._dense(vm_u)]
        levels = pair_levels(
            np.full(peers.shape, host_u, dtype=np.int64),
            self._host_of[peers],
            self._rack_of,
            self._pod_of,
        )
        return int(levels.max())

    def migration_delta(
        self,
        allocation: Optional[Allocation],
        traffic: Optional[TrafficMatrix],
        vm_u: int,
        target_host: int,
    ) -> float:
        """ΔC_A(u → x), Lemma 3; positive values are reductions."""
        self._check_bound(allocation, traffic)
        deltas = self.migration_deltas(
            vm_u, np.array([target_host], dtype=np.int64)
        )
        return float(deltas[0])

    # -- batch / incremental API -------------------------------------------

    def peer_hosts_and_rates(self, vm_u: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(peer VM ids, peer host indices, rates) for one VM."""
        peers, rates = self._snap.peers_slice(self._dense(vm_u))
        return self._snap.vm_ids[peers], self._host_of[peers], rates

    def degree(self, vm_u: int) -> int:
        """Number of communication peers of ``vm_u`` in the snapshot."""
        dense = self._dense(vm_u)
        return int(self._snap.ptr[dense + 1] - self._snap.ptr[dense])

    def migration_deltas(self, vm_u: int, hosts: np.ndarray) -> np.ndarray:
        """Lemma 3 deltas of moving ``vm_u`` to every host in ``hosts``.

        One vectorized pass over a (n_hosts, n_peers) level matrix; the
        entry for the VM's current host is exactly 0.0.
        """
        dense = self._dense(vm_u)
        hosts = np.asarray(hosts, dtype=np.int64)
        peers, rates = self._snap.peers_slice(dense)
        if peers.size == 0:
            return np.zeros(hosts.shape, dtype=float)
        source = int(self._host_of[dense])
        peer_hosts = self._host_of[peers]
        before = pair_levels(
            np.full(peers.shape, source, dtype=np.int64),
            peer_hosts,
            self._rack_of,
            self._pod_of,
        )
        # after[i, j]: level between candidate i and peer j.
        cand_rack = self._rack_of[hosts][:, None]
        cand_pod = self._pod_of[hosts][:, None]
        after = np.full((len(hosts), len(peers)), 3, dtype=np.int64)
        after[cand_pod == self._pod_of[peer_hosts][None, :]] = 2
        after[cand_rack == self._rack_of[peer_hosts][None, :]] = 1
        after[hosts[:, None] == peer_hosts[None, :]] = 0
        weighted = rates * (
            self._path_weight[before][None, :] - self._path_weight[after]
        )
        return weighted.sum(axis=1)

    def candidate_hosts(
        self, vm_u: int, max_candidates: Optional[int] = None
    ) -> np.ndarray:
        """Candidate targets in the naive probing order (§V-B5), as an array.

        Matches :meth:`repro.core.migration.MigrationEngine.candidate_hosts`
        exactly: peers ranked by (level desc, rate desc, VM id asc), each
        contributing its own server then the rest of its rack.
        """
        dense = self._dense(vm_u)
        peers, rates = self._snap.peers_slice(dense)
        if peers.size == 0:
            return np.empty(0, dtype=np.int64)
        source = int(self._host_of[dense])
        peer_hosts = self._host_of[peers]
        levels = pair_levels(
            np.full(peers.shape, source, dtype=np.int64),
            peer_hosts,
            self._rack_of,
            self._pod_of,
        )
        # peers are stored ascending by VM id, so a stable sort on
        # (-level, -rate) reproduces the naive (level, rate, id) ranking.
        order = np.lexsort((-rates, -levels))
        topo = self._topology
        seen = bytearray(len(self._slot_cap))
        seen[source] = 1
        candidates: List[int] = []
        for peer_host in peer_hosts[order]:
            peer_host = int(peer_host)
            if not seen[peer_host]:
                seen[peer_host] = 1
                candidates.append(peer_host)
            for host in topo.hosts_in_rack(int(self._rack_of[peer_host])):
                if not seen[host]:
                    seen[host] = 1
                    candidates.append(host)
            if max_candidates and len(candidates) >= max_candidates:
                return np.array(candidates[:max_candidates], dtype=np.int64)
        return np.array(candidates, dtype=np.int64)

    def can_host_many(self, hosts: np.ndarray, vm) -> np.ndarray:
        """Vectorized slot/RAM/CPU feasibility of ``vm`` on each host.

        Written as ``cap - used >= need`` — the exact float expression of
        ``Allocation.free_*``/``can_host`` — so the mirror cannot disagree
        with the allocation at a capacity boundary.
        """
        hosts = np.asarray(hosts, dtype=np.int64)
        return (
            (self._slot_cap[hosts] - self._slot_used[hosts] >= 1)
            & (self._ram_cap[hosts] - self._ram_used[hosts] >= vm.ram_mb)
            & (self._cpu_cap[hosts] - self._cpu_used[hosts] >= vm.cpu)
        )

    def host_of(self, vm_u: int) -> int:
        """Mirror of ``allocation.server_of`` from the engine's arrays."""
        return int(self._host_of[self._dense(vm_u)])

    def host_egress(self, host: int) -> float:
        """Aggregate NIC-crossing rate of ``host`` (bytes/second).

        Maintained incrementally across migrations; agrees with the naive
        :meth:`repro.core.migration.MigrationEngine.host_egress_rate` to
        within float-summation reordering.
        """
        return float(self._egress[host])

    def bandwidth_feasible_many(
        self, vm_u: int, hosts: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Vectorized §V-C check over candidate targets.

        For each candidate, the post-migration NIC load is the host's
        current egress plus u's flows that would start crossing it, minus
        u's flows to VMs already there (which drop off the NIC); feasible
        when that stays within ``threshold`` of the NIC line rate.
        """
        hosts = np.asarray(hosts, dtype=np.int64)
        budget = threshold * self._nic_cap[hosts]
        peers, rates = self._snap.peers_slice(self._dense(vm_u))
        if peers.size == 0:
            return self._egress[hosts] <= budget
        peer_hosts = self._host_of[peers]
        onto_target = np.bincount(
            peer_hosts, weights=rates, minlength=len(self._egress)
        )[hosts]
        load_after = self._egress[hosts] + (rates.sum() - onto_target) - onto_target
        return load_after <= budget

    def apply_migration(self, vm_u: int, target_host: int) -> float:
        """Update every cache for ``vm_u`` moving to ``target_host``.

        O(peers of u): the per-VM cost cache of u and of each of its peers,
        the network-wide total and the capacity mirrors are all adjusted
        from the Lemma 3 terms.  Returns the applied delta (positive =
        reduction).  The bound allocation must be migrated separately
        (callers do ``allocation.migrate(...)`` first).
        """
        dense = self._dense(vm_u)
        source = int(self._host_of[dense])
        target = int(target_host)
        if source == target:
            return 0.0
        peers, rates = self._snap.peers_slice(dense)
        delta = 0.0
        if peers.size:
            peer_hosts = self._host_of[peers]
            before = pair_levels(
                np.full(peers.shape, source, dtype=np.int64),
                peer_hosts,
                self._rack_of,
                self._pod_of,
            )
            after = pair_levels(
                np.full(peers.shape, target, dtype=np.int64),
                peer_hosts,
                self._rack_of,
                self._pod_of,
            )
            contrib = rates * (
                self._path_weight[before] - self._path_weight[after]
            )
            delta = float(contrib.sum())
            self._vm_cost[peers] -= contrib
            self._vm_cost[dense] -= delta
            self._total -= delta
            # Egress (§V-C): u's flows leave the source NIC and land on the
            # target's; peers co-located with either endpoint flip between
            # intra-host and NIC-crossing on their own host.
            colocated_source = rates[before == 0].sum()
            colocated_target = rates[after == 0].sum()
            total_rate = rates.sum()
            self._egress[source] += colocated_source - (
                total_rate - colocated_source
            )
            self._egress[target] += (total_rate - colocated_target) - (
                colocated_target
            )
        self._host_of[dense] = target
        self._slot_used[source] -= 1
        self._slot_used[target] += 1
        self._ram_used[source] -= self._vm_ram[dense]
        self._ram_used[target] += self._vm_ram[dense]
        self._cpu_used[source] -= self._vm_cpu[dense]
        self._cpu_used[target] += self._vm_cpu[dense]
        return delta

    # -- internals ----------------------------------------------------------

    def _dense(self, vm_u: int) -> int:
        try:
            return self._snap.vm_index[vm_u]
        except KeyError:
            raise KeyError(
                f"VM {vm_u} is not in the engine's snapshot; call rebuild()"
            ) from None

    def __repr__(self) -> str:
        return (
            f"FastCostEngine(vms={self._snap.n_vms}, "
            f"pairs={self._snap.n_pairs}, hosts={len(self._slot_cap)})"
        )


def engine_from_cost_model(
    cost_model: CostModel, allocation: Allocation, traffic: TrafficMatrix
) -> FastCostEngine:
    """Build an engine sharing a naive model's topology and weights."""
    if cost_model.topology is not allocation.topology:
        raise ValueError(
            "cost model and allocation disagree on the topology instance"
        )
    return FastCostEngine(allocation, traffic, weights=cost_model.weights)
