"""Array-backed fast cost engine for paper-scale runs.

The naive :class:`repro.core.cost.CostModel` walks python dicts per VM pair
and is the readable reference implementation of Eq. (1)/(2) and Lemma 3.
At the paper's published scale (2560 hosts, ~35k VMs, ~50k communicating
pairs) the per-pair python loops dominate the run, so this module provides
the same quantities computed over flat numpy arrays:

* :class:`TrafficSnapshot` freezes a :class:`~repro.traffic.matrix.TrafficMatrix`
  into CSR-style arrays — one (peer index, rate) slice per VM plus
  undirected pair arrays — over a dense VM index.
* :func:`pair_levels` computes communication levels for whole pair arrays
  from the topology's cached per-host rack/pod id vectors
  (:meth:`repro.topology.base.Topology.host_rack_ids`).
* :class:`FastCostEngine` binds a snapshot to one allocation and maintains
  incremental caches — per-VM cost (Eq. 1), network-wide cost (Eq. 2) and
  per-host capacity usage — updated in O(peers of the moving VM) per
  migration, exactly as Lemma 3 promises.

The engine exposes the same query signatures as ``CostModel`` for the
methods shared with it (``total_cost``, ``vm_cost``, ``highest_level``,
``migration_delta``), so scheduler policies and tests can use either
implementation interchangeably; the differential test suite asserts the
two agree to within 1e-9 on randomized scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel, LinkWeights
from repro.topology.base import Topology
from repro.traffic.matrix import TrafficMatrix


def pair_levels(
    hosts_u: np.ndarray,
    hosts_v: np.ndarray,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
) -> np.ndarray:
    """Element-wise communication levels between two host arrays."""
    levels = np.full(hosts_u.shape, 3, dtype=np.int64)
    levels[pod_of[hosts_u] == pod_of[hosts_v]] = 2
    levels[rack_of[hosts_u] == rack_of[hosts_v]] = 1
    levels[hosts_u == hosts_v] = 0
    return levels


def path_weight_table(weights: LinkWeights, max_level: int) -> np.ndarray:
    """``2 * Σ_{i<=l} c_i`` per level as a lookup array (level 0 included)."""
    return np.array(
        [weights.path_weight(level) for level in range(max_level + 1)]
    )


class TrafficSnapshot:
    """An immutable array view of a traffic matrix over a dense VM index.

    ``vm_ids`` fixes the index space (ascending VM id order); the CSR
    triplet (``ptr``, ``peer``, ``rate``) stores each VM's peers — peers
    appear in ascending VM-id order within a slice, matching the sort
    order the naive candidate ranking uses for ties.  ``pair_u/pair_v/
    pair_rate`` hold every unordered pair once (u < v in dense indices).
    """

    __slots__ = (
        "vm_ids",
        "vm_index",
        "ptr",
        "peer",
        "rate",
        "row",
        "pair_u",
        "pair_v",
        "pair_rate",
    )

    def __init__(
        self,
        vm_ids: np.ndarray,
        vm_index: Dict[int, int],
        ptr: np.ndarray,
        peer: np.ndarray,
        rate: np.ndarray,
        row: np.ndarray,
        pair_u: np.ndarray,
        pair_v: np.ndarray,
        pair_rate: np.ndarray,
    ) -> None:
        self.vm_ids = vm_ids
        self.vm_index = vm_index
        self.ptr = ptr
        self.peer = peer
        self.rate = rate
        self.row = row
        self.pair_u = pair_u
        self.pair_v = pair_v
        self.pair_rate = pair_rate

    @classmethod
    def build(
        cls,
        traffic: TrafficMatrix,
        vm_ids: Sequence[int],
        strict: bool = False,
    ) -> "TrafficSnapshot":
        """Snapshot ``traffic`` over the given VM population.

        Pairs touching VMs outside ``vm_ids`` are skipped unless ``strict``
        is set, in which case they raise (the scheduler guarantees the
        traffic matrix only references placed VMs, so the engine builds in
        strict mode to catch drift).
        """
        ids = np.array(sorted(vm_ids), dtype=np.int64)
        index = {int(vm_id): i for i, vm_id in enumerate(ids)}
        us: List[int] = []
        vs: List[int] = []
        rates: List[float] = []
        for u, v, rate in traffic.pairs():
            iu = index.get(u)
            iv = index.get(v)
            if iu is None or iv is None:
                if strict:
                    missing = u if iu is None else v
                    raise ValueError(
                        f"traffic references VM {missing} outside the "
                        f"snapshot population"
                    )
                continue
            if iu > iv:
                iu, iv = iv, iu
            us.append(iu)
            vs.append(iv)
            rates.append(rate)
        pair_u = np.array(us, dtype=np.int64)
        pair_v = np.array(vs, dtype=np.int64)
        pair_rate = np.array(rates, dtype=float)

        n = len(ids)
        # Directed edge list (each pair twice) -> CSR sorted by (owner, peer).
        row = np.concatenate([pair_u, pair_v])
        col = np.concatenate([pair_v, pair_u])
        val = np.concatenate([pair_rate, pair_rate])
        order = np.lexsort((col, row))
        row, col, val = row[order], col[order], val[order]
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(row, minlength=n), out=ptr[1:])
        return cls(
            vm_ids=ids,
            vm_index=index,
            ptr=ptr,
            peer=col,
            rate=val,
            row=row,
            pair_u=pair_u,
            pair_v=pair_v,
            pair_rate=pair_rate,
        )

    @property
    def n_vms(self) -> int:
        """Size of the dense VM index."""
        return len(self.vm_ids)

    @property
    def n_pairs(self) -> int:
        """Number of communicating (unordered) pairs captured."""
        return len(self.pair_rate)

    def peers_slice(self, dense_vm: int) -> Tuple[np.ndarray, np.ndarray]:
        """(peer dense indices, rates) of one VM, ascending by peer id."""
        lo, hi = self.ptr[dense_vm], self.ptr[dense_vm + 1]
        return self.peer[lo:hi], self.rate[lo:hi]


def assignment_cost(
    assignment: np.ndarray,
    snapshot: TrafficSnapshot,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
    path_weight: np.ndarray,
) -> float:
    """Eq. (2) cost of a dense host-assignment vector, fully vectorized.

    Shared by the GA baseline (thousands of candidate evaluations) and the
    engine's full recomputation path.
    """
    hu = assignment[snapshot.pair_u]
    hv = assignment[snapshot.pair_v]
    levels = pair_levels(hu, hv, rack_of, pod_of)
    return float(np.dot(snapshot.pair_rate, path_weight[levels]))


class FastCostEngine:
    """Incremental, vectorized cost engine bound to one allocation.

    The engine snapshots the traffic matrix and mirrors the allocation's
    VM → host mapping and per-host capacity usage into flat arrays.  All
    mutations must flow through :meth:`apply_migration` (the scheduler and
    :class:`repro.core.migration.MigrationEngine` do this) or be followed
    by :meth:`rebuild`; the scheduler rebuilds at the start of every run
    and after churn/traffic updates, so external mutation between runs is
    safe.
    """

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        weights: Optional[LinkWeights] = None,
    ) -> None:
        topology: Topology = allocation.topology
        self._weights = weights or LinkWeights.paper()
        if self._weights.max_level < topology.max_level:
            raise ValueError(
                f"weights cover {self._weights.max_level} levels but topology "
                f"has {topology.max_level}"
            )
        self._topology = topology
        self._allocation = allocation
        self._traffic = traffic
        self._path_weight = path_weight_table(self._weights, topology.max_level)
        self._rack_of = topology.host_rack_ids()
        self._pod_of = topology.host_pod_ids()
        self._slot_cap, self._ram_cap, self._cpu_cap = (
            allocation.cluster.capacity_arrays()
        )
        self.rebuild()

    # -- binding -----------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The topology levels are computed against."""
        return self._topology

    @property
    def weights(self) -> LinkWeights:
        """The link weights in effect."""
        return self._weights

    @property
    def allocation(self) -> Allocation:
        """The bound allocation."""
        return self._allocation

    @property
    def traffic(self) -> TrafficMatrix:
        """The bound traffic matrix (snapshotted at the last rebuild)."""
        return self._traffic

    @property
    def snapshot(self) -> TrafficSnapshot:
        """The current traffic snapshot (rebuilt on demand, not live)."""
        return self._snap

    def is_bound_to(self, allocation: Allocation, traffic: TrafficMatrix) -> bool:
        """Whether this engine's caches describe the given pair of objects."""
        return allocation is self._allocation and traffic is self._traffic

    def _check_bound(
        self, allocation: Optional[Allocation], traffic: Optional[TrafficMatrix]
    ) -> None:
        if allocation is not None and allocation is not self._allocation:
            raise ValueError(
                "FastCostEngine is bound to a different allocation; "
                "build a new engine or use the naive CostModel"
            )
        if traffic is not None and traffic is not self._traffic:
            raise ValueError(
                "FastCostEngine is bound to a different traffic matrix; "
                "call update_traffic() first"
            )

    def update_traffic(self, traffic: TrafficMatrix) -> None:
        """Bind a new traffic matrix and rebuild the caches."""
        self._traffic = traffic
        self.rebuild()

    def rebuild(self) -> None:
        """Resnapshot traffic and resync every cache from the allocation."""
        allocation = self._allocation
        self._snap = TrafficSnapshot.build(
            self._traffic, list(allocation.vm_ids()), strict=True
        )
        snap = self._snap
        n = snap.n_vms
        self._host_of = np.fromiter(
            (allocation.server_of(int(vm)) for vm in snap.vm_ids),
            dtype=np.int64,
            count=n,
        )
        n_hosts = len(self._slot_cap)
        self._slot_used = np.bincount(self._host_of, minlength=n_hosts)
        ram = np.fromiter(
            (allocation.vm(int(vm)).ram_mb for vm in snap.vm_ids),
            dtype=np.int64,
            count=n,
        )
        cpu = np.fromiter(
            (allocation.vm(int(vm)).cpu for vm in snap.vm_ids),
            dtype=float,
            count=n,
        )
        self._vm_ram = ram
        self._vm_cpu = cpu
        self._ram_used = np.bincount(self._host_of, weights=ram, minlength=n_hosts)
        self._ram_used = self._ram_used.astype(np.int64)
        self._cpu_used = np.bincount(self._host_of, weights=cpu, minlength=n_hosts)
        # Per-VM Eq. (1) costs over the directed edge list, then Eq. (2).
        levels = pair_levels(
            self._host_of[snap.row],
            self._host_of[snap.peer],
            self._rack_of,
            self._pod_of,
        )
        edge_cost = snap.rate * self._path_weight[levels]
        self._vm_cost = np.bincount(snap.row, weights=edge_cost, minlength=n)
        self._total = assignment_cost(
            self._host_of, snap, self._rack_of, self._pod_of, self._path_weight
        )

    # -- CostModel-compatible queries --------------------------------------

    def total_cost(
        self,
        allocation: Optional[Allocation] = None,
        traffic: Optional[TrafficMatrix] = None,
    ) -> float:
        """C_A, Eq. (2) — maintained incrementally across migrations."""
        self._check_bound(allocation, traffic)
        return self._total

    def recompute_total_cost(self) -> float:
        """Eq. (2) from scratch over the arrays (drift diagnostics)."""
        return assignment_cost(
            self._host_of,
            self._snap,
            self._rack_of,
            self._pod_of,
            self._path_weight,
        )

    def vm_cost(
        self,
        allocation: Optional[Allocation],
        traffic: Optional[TrafficMatrix],
        vm_u: int,
    ) -> float:
        """C_A(u), Eq. (1) — read from the incremental per-VM cache."""
        self._check_bound(allocation, traffic)
        return float(self._vm_cost[self._dense(vm_u)])

    def highest_level(
        self,
        allocation: Optional[Allocation],
        traffic: Optional[TrafficMatrix],
        vm_u: int,
    ) -> int:
        """l_A(u): max communication level to any peer; 0 without peers."""
        self._check_bound(allocation, traffic)
        peers, _ = self._snap.peers_slice(self._dense(vm_u))
        if peers.size == 0:
            return 0
        host_u = self._host_of[self._dense(vm_u)]
        levels = pair_levels(
            np.full(peers.shape, host_u, dtype=np.int64),
            self._host_of[peers],
            self._rack_of,
            self._pod_of,
        )
        return int(levels.max())

    def migration_delta(
        self,
        allocation: Optional[Allocation],
        traffic: Optional[TrafficMatrix],
        vm_u: int,
        target_host: int,
    ) -> float:
        """ΔC_A(u → x), Lemma 3; positive values are reductions."""
        self._check_bound(allocation, traffic)
        deltas = self.migration_deltas(
            vm_u, np.array([target_host], dtype=np.int64)
        )
        return float(deltas[0])

    # -- batch / incremental API -------------------------------------------

    def peer_hosts_and_rates(self, vm_u: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(peer VM ids, peer host indices, rates) for one VM."""
        peers, rates = self._snap.peers_slice(self._dense(vm_u))
        return self._snap.vm_ids[peers], self._host_of[peers], rates

    def degree(self, vm_u: int) -> int:
        """Number of communication peers of ``vm_u`` in the snapshot."""
        dense = self._dense(vm_u)
        return int(self._snap.ptr[dense + 1] - self._snap.ptr[dense])

    def migration_deltas(self, vm_u: int, hosts: np.ndarray) -> np.ndarray:
        """Lemma 3 deltas of moving ``vm_u`` to every host in ``hosts``.

        One vectorized pass over a (n_hosts, n_peers) level matrix; the
        entry for the VM's current host is exactly 0.0.
        """
        dense = self._dense(vm_u)
        hosts = np.asarray(hosts, dtype=np.int64)
        peers, rates = self._snap.peers_slice(dense)
        if peers.size == 0:
            return np.zeros(hosts.shape, dtype=float)
        source = int(self._host_of[dense])
        peer_hosts = self._host_of[peers]
        before = pair_levels(
            np.full(peers.shape, source, dtype=np.int64),
            peer_hosts,
            self._rack_of,
            self._pod_of,
        )
        # after[i, j]: level between candidate i and peer j.
        cand_rack = self._rack_of[hosts][:, None]
        cand_pod = self._pod_of[hosts][:, None]
        after = np.full((len(hosts), len(peers)), 3, dtype=np.int64)
        after[cand_pod == self._pod_of[peer_hosts][None, :]] = 2
        after[cand_rack == self._rack_of[peer_hosts][None, :]] = 1
        after[hosts[:, None] == peer_hosts[None, :]] = 0
        weighted = rates * (
            self._path_weight[before][None, :] - self._path_weight[after]
        )
        return weighted.sum(axis=1)

    def candidate_hosts(
        self, vm_u: int, max_candidates: Optional[int] = None
    ) -> np.ndarray:
        """Candidate targets in the naive probing order (§V-B5), as an array.

        Matches :meth:`repro.core.migration.MigrationEngine.candidate_hosts`
        exactly: peers ranked by (level desc, rate desc, VM id asc), each
        contributing its own server then the rest of its rack.
        """
        dense = self._dense(vm_u)
        peers, rates = self._snap.peers_slice(dense)
        if peers.size == 0:
            return np.empty(0, dtype=np.int64)
        source = int(self._host_of[dense])
        peer_hosts = self._host_of[peers]
        levels = pair_levels(
            np.full(peers.shape, source, dtype=np.int64),
            peer_hosts,
            self._rack_of,
            self._pod_of,
        )
        # peers are stored ascending by VM id, so a stable sort on
        # (-level, -rate) reproduces the naive (level, rate, id) ranking.
        order = np.lexsort((-rates, -levels))
        topo = self._topology
        seen = bytearray(len(self._slot_cap))
        seen[source] = 1
        candidates: List[int] = []
        for peer_host in peer_hosts[order]:
            peer_host = int(peer_host)
            if not seen[peer_host]:
                seen[peer_host] = 1
                candidates.append(peer_host)
            for host in topo.hosts_in_rack(int(self._rack_of[peer_host])):
                if not seen[host]:
                    seen[host] = 1
                    candidates.append(host)
            if max_candidates and len(candidates) >= max_candidates:
                return np.array(candidates[:max_candidates], dtype=np.int64)
        return np.array(candidates, dtype=np.int64)

    def can_host_many(self, hosts: np.ndarray, vm) -> np.ndarray:
        """Vectorized slot/RAM/CPU feasibility of ``vm`` on each host.

        Written as ``cap - used >= need`` — the exact float expression of
        ``Allocation.free_*``/``can_host`` — so the mirror cannot disagree
        with the allocation at a capacity boundary.
        """
        hosts = np.asarray(hosts, dtype=np.int64)
        return (
            (self._slot_cap[hosts] - self._slot_used[hosts] >= 1)
            & (self._ram_cap[hosts] - self._ram_used[hosts] >= vm.ram_mb)
            & (self._cpu_cap[hosts] - self._cpu_used[hosts] >= vm.cpu)
        )

    def host_of(self, vm_u: int) -> int:
        """Mirror of ``allocation.server_of`` from the engine's arrays."""
        return int(self._host_of[self._dense(vm_u)])

    def apply_migration(self, vm_u: int, target_host: int) -> float:
        """Update every cache for ``vm_u`` moving to ``target_host``.

        O(peers of u): the per-VM cost cache of u and of each of its peers,
        the network-wide total and the capacity mirrors are all adjusted
        from the Lemma 3 terms.  Returns the applied delta (positive =
        reduction).  The bound allocation must be migrated separately
        (callers do ``allocation.migrate(...)`` first).
        """
        dense = self._dense(vm_u)
        source = int(self._host_of[dense])
        target = int(target_host)
        if source == target:
            return 0.0
        peers, rates = self._snap.peers_slice(dense)
        delta = 0.0
        if peers.size:
            peer_hosts = self._host_of[peers]
            before = pair_levels(
                np.full(peers.shape, source, dtype=np.int64),
                peer_hosts,
                self._rack_of,
                self._pod_of,
            )
            after = pair_levels(
                np.full(peers.shape, target, dtype=np.int64),
                peer_hosts,
                self._rack_of,
                self._pod_of,
            )
            contrib = rates * (
                self._path_weight[before] - self._path_weight[after]
            )
            delta = float(contrib.sum())
            self._vm_cost[peers] -= contrib
            self._vm_cost[dense] -= delta
            self._total -= delta
        self._host_of[dense] = target
        self._slot_used[source] -= 1
        self._slot_used[target] += 1
        self._ram_used[source] -= self._vm_ram[dense]
        self._ram_used[target] += self._vm_ram[dense]
        self._cpu_used[source] -= self._vm_cpu[dense]
        self._cpu_used[target] += self._vm_cpu[dense]
        return delta

    # -- internals ----------------------------------------------------------

    def _dense(self, vm_u: int) -> int:
        try:
            return self._snap.vm_index[vm_u]
        except KeyError:
            raise KeyError(
                f"VM {vm_u} is not in the engine's snapshot; call rebuild()"
            ) from None

    def __repr__(self) -> str:
        return (
            f"FastCostEngine(vms={self._snap.n_vms}, "
            f"pairs={self._snap.n_pairs}, hosts={len(self._slot_cap)})"
        )


def engine_from_cost_model(
    cost_model: CostModel, allocation: Allocation, traffic: TrafficMatrix
) -> FastCostEngine:
    """Build an engine sharing a naive model's topology and weights."""
    if cost_model.topology is not allocation.topology:
        raise ValueError(
            "cost model and allocation disagree on the topology instance"
        )
    return FastCostEngine(allocation, traffic, weights=cost_model.weights)
