"""Array-backed fast cost engine for paper-scale runs.

The naive :class:`repro.core.cost.CostModel` walks python dicts per VM pair
and is the readable reference implementation of Eq. (1)/(2) and Lemma 3.
At the paper's published scale (2560 hosts, ~35k VMs, ~50k communicating
pairs) the per-pair python loops dominate the run, so this module provides
the same quantities computed over flat numpy arrays:

* :class:`TrafficSnapshot` freezes a :class:`~repro.traffic.matrix.TrafficMatrix`
  into CSR-style arrays — one (peer index, rate) slice per VM plus
  undirected pair arrays — over a dense VM index.
* :func:`pair_levels` computes communication levels for whole pair arrays
  from the topology's cached per-host rack/pod id vectors
  (:meth:`repro.topology.base.Topology.host_rack_ids`).
* :class:`FastCostEngine` binds a snapshot to one allocation and maintains
  incremental caches — per-VM cost (Eq. 1), network-wide cost (Eq. 2) and
  per-host capacity usage — updated in O(peers of the moving VM) per
  migration, exactly as Lemma 3 promises.

The engine exposes the same query signatures as ``CostModel`` for the
methods shared with it (``total_cost``, ``vm_cost``, ``highest_level``,
``migration_delta``), so scheduler policies and tests can use either
implementation interchangeably; the differential test suite asserts the
two agree to within 1e-9 on randomized scenarios.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel, LinkWeights
from repro.topology.base import Topology
from repro.traffic.matrix import TrafficMatrix


def pair_levels(
    hosts_u: np.ndarray,
    hosts_v: np.ndarray,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
) -> np.ndarray:
    """Element-wise communication levels between two host arrays.

    Exploits the containment hierarchy (same host ⊆ same rack ⊆ same
    pod): ``level = 3 − pod_eq − rack_eq − host_eq`` — three compares and
    two adds, no masked writes.
    """
    level = (pod_of[hosts_u] == pod_of[hosts_v]).astype(np.int64)
    level += rack_of[hosts_u] == rack_of[hosts_v]
    level += hosts_u == hosts_v
    np.subtract(3, level, out=level)
    return level


def path_weight_table(weights: LinkWeights, max_level: int) -> np.ndarray:
    """``2 * Σ_{i<=l} c_i`` per level as a lookup array (level 0 included)."""
    return np.array(
        [weights.path_weight(level) for level in range(max_level + 1)]
    )


class TrafficSnapshot:
    """An array view of a traffic matrix over a dense VM index.

    Snapshots mutate only through the owning engine's delta APIs
    (`FastCostEngine.apply_traffic_delta`/`add_vms`/`remove_vms`); every
    other consumer treats them as frozen.

    ``vm_ids`` fixes the index space (ascending VM id order); the CSR
    triplet (``ptr``, ``peer``, ``rate``) stores each VM's peers — peers
    appear in ascending VM-id order within a slice, matching the sort
    order the naive candidate ranking uses for ties.  ``pair_u/pair_v/
    pair_rate`` hold every unordered pair once (u < v in dense indices).
    """

    __slots__ = (
        "vm_ids",
        "vm_index",
        "ptr",
        "peer",
        "rate",
        "row",
        "pair_u",
        "pair_v",
        "pair_rate",
    )

    def __init__(
        self,
        vm_ids: np.ndarray,
        vm_index: Dict[int, int],
        ptr: np.ndarray,
        peer: np.ndarray,
        rate: np.ndarray,
        row: np.ndarray,
        pair_u: np.ndarray,
        pair_v: np.ndarray,
        pair_rate: np.ndarray,
    ) -> None:
        self.vm_ids = vm_ids
        self.vm_index = vm_index
        self.ptr = ptr
        self.peer = peer
        self.rate = rate
        self.row = row
        self.pair_u = pair_u
        self.pair_v = pair_v
        self.pair_rate = pair_rate

    @classmethod
    def build(
        cls,
        traffic: TrafficMatrix,
        vm_ids: Sequence[int],
        strict: bool = False,
        compact: bool = False,
    ) -> "TrafficSnapshot":
        """Snapshot ``traffic`` over the given VM population.

        Pairs touching VMs outside ``vm_ids`` are skipped unless ``strict``
        is set, in which case they raise (the scheduler guarantees the
        traffic matrix only references placed VMs, so the engine builds in
        strict mode to catch drift).

        ``compact`` stores the CSR/pair index arrays as int32 and the rate
        arrays as float32 — half the footprint, sized for 1M-VM
        populations (the hyperscale sharding path builds its domain
        sub-snapshots this way).  Scoring still runs in float64 (numpy
        promotes), but last-ulp sums can differ from the default build, so
        the 1e-9 differential pins keep ``compact=False``.
        """
        ids = np.array(sorted(vm_ids), dtype=np.int64)
        index = {int(vm_id): i for i, vm_id in enumerate(ids)}
        us, vs, rates = traffic.pair_arrays()
        if len(ids) == 0:
            if strict and len(us):
                raise ValueError(
                    f"traffic references VM {us[0]} outside the "
                    f"snapshot population"
                )
            pair_u = pair_v = np.empty(0, dtype=np.int64)
            pair_rate = np.empty(0)
        else:
            # Dense indices by binary search over the (sorted, unique) id
            # vector; ids preserve order, so u < v carries over to iu < iv.
            iu = np.searchsorted(ids, us).clip(max=len(ids) - 1)
            iv = np.searchsorted(ids, vs).clip(max=len(ids) - 1)
            known = (ids[iu] == us) & (ids[iv] == vs)
            if strict and not known.all():
                bad = np.nonzero(~known)[0][0]
                missing = us[bad] if ids[iu[bad]] != us[bad] else vs[bad]
                raise ValueError(
                    f"traffic references VM {missing} outside the "
                    f"snapshot population"
                )
            pair_u = iu[known]
            pair_v = iv[known]
            pair_rate = rates[known]

        n = len(ids)
        index_dtype = np.int32 if compact else np.int64
        rate_dtype = np.float32 if compact else np.float64
        pair_u = pair_u.astype(index_dtype, copy=False)
        pair_v = pair_v.astype(index_dtype, copy=False)
        pair_rate = pair_rate.astype(rate_dtype, copy=False)
        # Directed edge list (each pair twice) -> CSR sorted by (owner, peer).
        # Preallocated at exactly 2·|pairs| capacity and filled in halves —
        # no concatenate temporaries, so peak memory stays proportional to
        # the final arrays even at 1M-VM scale.
        m = len(pair_rate)
        row = np.empty(2 * m, dtype=index_dtype)
        col = np.empty(2 * m, dtype=index_dtype)
        val = np.empty(2 * m, dtype=rate_dtype)
        row[:m], row[m:] = pair_u, pair_v
        col[:m], col[m:] = pair_v, pair_u
        val[:m], val[m:] = pair_rate, pair_rate
        order = np.lexsort((col, row))
        row, col, val = row[order], col[order], val[order]
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(row, minlength=n), out=ptr[1:])
        return cls(
            vm_ids=ids,
            vm_index=index,
            ptr=ptr,
            peer=col,
            rate=val,
            row=row,
            pair_u=pair_u,
            pair_v=pair_v,
            pair_rate=pair_rate,
        )

    @property
    def n_vms(self) -> int:
        """Size of the dense VM index."""
        return len(self.vm_ids)

    @property
    def n_pairs(self) -> int:
        """Number of communicating (unordered) pairs captured."""
        return len(self.pair_rate)

    @property
    def index_dtype(self) -> np.dtype:
        """Dtype of the CSR/pair index arrays (int32 under ``compact``)."""
        return self.peer.dtype

    @property
    def rate_dtype(self) -> np.dtype:
        """Dtype of the rate arrays (float32 under ``compact``)."""
        return self.rate.dtype

    def arrays_nbytes(self) -> int:
        """Total bytes of every array the snapshot holds.

        The memory-audit budget the hyperscale suite asserts: a compact
        1M-VM snapshot must stay inside a fixed byte envelope, so a
        float64/int64 copy sneaking back into a delta path fails loudly.
        """
        return sum(
            getattr(self, name).nbytes
            for name in self.__slots__
            if name != "vm_index"
        )

    def peers_slice(self, dense_vm: int) -> Tuple[np.ndarray, np.ndarray]:
        """(peer dense indices, rates) of one VM, ascending by peer id."""
        lo, hi = self.ptr[dense_vm], self.ptr[dense_vm + 1]
        return self.peer[lo:hi], self.rate[lo:hi]


def assignment_cost(
    assignment: np.ndarray,
    snapshot: TrafficSnapshot,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
    path_weight: np.ndarray,
) -> float:
    """Eq. (2) cost of a dense host-assignment vector, fully vectorized.

    Shared by the GA baseline (thousands of candidate evaluations) and the
    engine's full recomputation path.
    """
    hu = assignment[snapshot.pair_u]
    hv = assignment[snapshot.pair_v]
    levels = pair_levels(hu, hv, rack_of, pod_of)
    return float(np.dot(snapshot.pair_rate, path_weight[levels]))


# -- population-matrix helpers (the batched GA engine) -----------------------
#
# The GA baseline evaluates, breeds and repairs a whole population of
# host-assignment vectors per generation.  These helpers operate on the
# population as one ``(pop, n_vms)`` integer matrix so a full generation is
# numpy end-to-end: no per-individual python loop anywhere on the hot path.

#: Row-chunk budget (elements of a (rows, n_pairs) temp) for population
#: scoring/repair; bounds peak memory at paper scale (~128 MB per temp).
_POPULATION_CHUNK_ELEMS = 16_000_000


def _row_chunks(n_rows: int, row_width: int) -> Tuple[range, int]:
    """(start offsets, chunk size) splitting rows so chunk × width is bounded."""
    rows = max(1, _POPULATION_CHUNK_ELEMS // max(1, row_width))
    return range(0, n_rows, rows), rows


def population_cost(
    assignments: np.ndarray,
    snapshot: TrafficSnapshot,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
    path_weight: np.ndarray,
) -> np.ndarray:
    """Eq. (2) cost of every row of a ``(pop, n_vms)`` assignment matrix.

    Row ``i`` equals ``assignment_cost(assignments[i], ...)`` to within
    float-summation reordering (the differential suite pins 1e-9 relative).
    Evaluation is chunked over rows so the (rows, n_pairs) level temporaries
    stay bounded regardless of population size.
    """
    assignments = np.asarray(assignments)
    if assignments.ndim != 2:
        raise ValueError(
            f"assignments must be a (pop, n_vms) matrix, got shape "
            f"{assignments.shape}"
        )
    pop = assignments.shape[0]
    costs = np.empty(pop, dtype=float)
    if snapshot.n_pairs == 0:
        costs[:] = 0.0
        return costs
    # Narrow mirrors of the host/rack/pod vectors cut the gather bandwidth
    # of the hot loop.  Levels exploit the containment hierarchy (same host
    # ⊆ same rack ⊆ same pod): level = 3 − pod_eq − rack_eq − host_eq, so
    # the weight matrix is one gather from a reversed path-weight table
    # over cheap int8 sums instead of three boolean masked writes.
    narrow = (
        np.int16
        if len(rack_of) < 2**15 - 1 and int(pod_of.max(initial=0)) < 2**15 - 1
        else np.int32
    )
    rack_n = rack_of.astype(narrow)
    pod_n = pod_of.astype(narrow)
    weight_rev = path_weight[3::-1].copy()  # index by (3 - level)
    starts, rows = _row_chunks(pop, snapshot.n_pairs)
    for start in starts:
        block = assignments[start : start + rows]
        if narrow is np.int16 and block.dtype != np.int16:
            block = block.astype(np.int16)
        hu = block[:, snapshot.pair_u]
        hv = block[:, snapshot.pair_v]
        eq_sum = (pod_n[hu] == pod_n[hv]).view(np.int8)
        eq_sum = eq_sum + (rack_n[hu] == rack_n[hv]).view(np.int8)
        eq_sum += (hu == hv).view(np.int8)
        costs[start : start + rows] = weight_rev[eq_sum] @ snapshot.pair_rate
    return costs


def population_counts(assignments: np.ndarray, n_hosts: int) -> np.ndarray:
    """Per-row host occupancy: ``counts[i, h]`` VMs of row ``i`` on ``h``."""
    assignments = np.asarray(assignments)
    pop, n_vms = assignments.shape
    counts = np.empty((pop, n_hosts), dtype=np.int64)
    starts, rows = _row_chunks(pop, n_vms)
    for start in starts:
        block = assignments[start : start + rows].astype(np.int64, copy=False)
        n = block.shape[0]
        flat = block + (np.arange(n, dtype=np.int64) * n_hosts)[:, None]
        counts[start : start + n] = np.bincount(
            flat.ravel(), minlength=n * n_hosts
        ).reshape(n, n_hosts)
    return counts


def population_feasible(assignments: np.ndarray, slots: np.ndarray) -> np.ndarray:
    """Per-row slot-capacity feasibility of a population matrix."""
    counts = population_counts(assignments, len(slots))
    return np.all(counts <= slots[None, :], axis=1)


def tournament_select(
    costs: np.ndarray, contenders: np.ndarray, worst: bool = False
) -> np.ndarray:
    """Winner index of each tournament row (lowest cost; ties → first).

    ``contenders`` is a ``(n, k)`` matrix of population indices; ``worst``
    flips the objective (the reverse tournaments replacement uses to pick
    losers).  Pure — callers draw the contender matrix from their RNG.
    """
    contenders = np.asarray(contenders)
    entry_costs = costs[contenders]
    pick = entry_costs.argmax(axis=1) if worst else entry_costs.argmin(axis=1)
    return contenders[np.arange(len(contenders)), pick]


def apply_swap_mutations(
    assignments: np.ndarray,
    rows: np.ndarray,
    swap_pairs: np.ndarray,
    n_swaps: np.ndarray,
) -> None:
    """Apply per-row VM swap mutations (§VI-A) to the matrix in place.

    ``swap_pairs`` is ``(len(rows), max_swaps, 2)`` VM indices and
    ``n_swaps`` how many leading swap slots each row uses.  Swapping the
    host assignments of two VMs permutes a row, so per-host occupancy —
    and therefore capacity feasibility — is invariant: mutated rows never
    need a repair pass.  The loop is over swap *slots* (a small constant),
    never over individuals.
    """
    rows = np.asarray(rows)
    for slot in range(swap_pairs.shape[1]):
        active = n_swaps > slot
        if not np.any(active):
            break
        r = rows[active]
        i = swap_pairs[active, slot, 0]
        j = swap_pairs[active, slot, 1]
        vi = assignments[r, i].copy()
        assignments[r, i] = assignments[r, j]
        assignments[r, j] = vi


def _run_ranks(keys: np.ndarray) -> np.ndarray:
    """0-based index of every entry within its run of equal ``keys``.

    ``keys`` must be run-grouped (equal values adjacent, e.g. sorted).
    Implemented as a forward max-accumulate of run-start positions —
    sequential passes only, no random gathers, which is what makes victim
    ranking cheap at millions of entries.
    """
    n = len(keys)
    idx = np.arange(n, dtype=np.int32)
    run_start = np.zeros(n, dtype=np.int32)
    if n > 1:
        np.multiply(keys[1:] != keys[:-1], idx[1:], out=run_start[1:])
        np.maximum.accumulate(run_start, out=run_start)
    return idx - run_start


def _group_starts(group_of: np.ndarray) -> np.ndarray:
    """First-host offsets of the contiguous groups in ``group_of``.

    Group ids must be consecutive integers starting at 0, each covering a
    contiguous host range (true of the rack and pod vectors of both paper
    topologies) — the repair stages index per-group aggregates by the raw
    id, so gapped id spaces would silently read the wrong group.
    """
    diffs = np.diff(group_of)
    if (
        len(group_of) == 0
        or group_of[0] != 0
        or np.any((diffs != 0) & (diffs != 1))
    ):
        raise ValueError(
            "population_repair requires contiguous host groups "
            "(consecutive rack/pod ids from 0 over the host index)"
        )
    return np.concatenate([[0], np.where(diffs > 0)[0] + 1])


def population_repair(
    assignments: np.ndarray,
    slots: np.ndarray,
    rack_of: np.ndarray,
    pod_of: np.ndarray,
) -> int:
    """Move VMs off over-capacity hosts, preferring rack- then pod-local
    free slots — the batched form of the GA's capacity-repair pass.

    Victims (the highest-indexed surplus VMs of every overfull host) are
    extracted once per row block, then placed in three vectorized stages of
    shrinking locality — same rack as the overfull host, same pod,
    anywhere — mirroring the per-individual repair's preference order.
    Within a stage, evictees fill their group's free slots in ascending
    host order.  Operates on the whole ``(pop, n_vms)`` matrix in place and
    returns the number of VMs moved.  Total slots must cover ``n_vms``
    (guaranteed whenever a feasible assignment exists), or the final stage
    raises.
    """
    assignments_full = np.asarray(assignments)
    n_hosts = len(slots)
    slots = np.asarray(slots, dtype=np.int64)
    group_maps = (
        np.asarray(rack_of, dtype=np.int64),
        np.asarray(pod_of, dtype=np.int64),
        np.zeros(n_hosts, dtype=np.int64),
    )
    group_starts = [_group_starts(g) for g in group_maps]
    moved_total = 0
    starts, chunk = _row_chunks(len(assignments_full), assignments_full.shape[1])
    for start in starts:
        moved_total += _repair_block(
            assignments_full[start : start + chunk],
            slots,
            group_maps,
            group_starts,
        )
    return moved_total


def _repair_block(
    block: np.ndarray,
    slots: np.ndarray,
    group_maps: Sequence[np.ndarray],
    group_starts: Sequence[np.ndarray],
) -> int:
    """Repair one row block: extract victims once, place in locality stages."""
    n_rows, _ = block.shape
    n_hosts = len(slots)
    counts = population_counts(block, n_hosts)
    over_host = counts > slots[None, :]
    if not np.any(over_host):
        return 0
    free = slots[None, :] - np.minimum(counts, slots[None, :])

    # Victims: on each overfull host, the highest-indexed VMs beyond the
    # slot limit.  Every occupant of an overfull host is encoded into one
    # sortable integer (row, host, vm); a single radix sort then groups
    # entries by (row, host) in ascending VM order, so in-group rank ranks
    # by VM index.
    on_over = over_host[np.arange(n_rows)[:, None], block]
    flat = np.flatnonzero(on_over)
    n_vms = block.shape[1]
    entry_rows = flat // n_vms
    entry_hosts = block.reshape(-1)[flat].astype(np.int64)
    key = (entry_rows * n_hosts + entry_hosts) * n_vms + (
        flat - entry_rows * n_vms
    )
    key.sort(kind="stable")
    group_key = key // n_vms
    rank = _run_ranks(group_key)
    # Thresholds per entry without decoding every entry's host: the host is
    # recoverable from the group key alone.
    victim = rank >= slots[group_key % n_hosts]
    victim_group = group_key[victim]
    vv = key[victim] - victim_group * n_vms
    vr, vh = np.divmod(victim_group, n_hosts)

    pending = np.ones(len(vr), dtype=bool)
    moved = 0
    for stage, (group_of, gstarts) in enumerate(zip(group_maps, group_starts)):
        is_final = stage == len(group_maps) - 1
        pr, ph, pv = vr[pending], vh[pending], vv[pending]
        if pr.size == 0:
            break

        # Rank pending victims within their (row, preference-group).  The
        # victim arrays are sorted by (row, host, vm) and group ids are
        # nondecreasing in the host index, so any pending subset is already
        # sorted by (row, group).
        pg = group_of[ph]
        vrank = _run_ranks(pr * n_hosts + pg)

        # Per-(row, group) free capacity; group ids are consecutive from 0.
        group_free = np.add.reduceat(free, gstarts, axis=1)
        satisfied = vrank < group_free[pr, pg]
        if is_final and not np.all(satisfied):
            raise ValueError(
                "repair impossible: total slots do not cover the population"
            )
        if not np.any(satisfied):
            continue

        # Targets: evictee with in-group rank k lands on the first host of
        # its group whose cumulative free capacity exceeds k.  One global
        # searchsorted over the per-row cumulative-free array made globally
        # monotone by per-row offsets.
        cum_free = np.cumsum(free, axis=1)
        stride = int(cum_free[:, -1].max()) + 1
        offsets = np.arange(n_rows, dtype=np.int64) * stride
        monotone = (cum_free + offsets[:, None]).ravel()
        sr = pr[satisfied]
        gstart_host = gstarts[pg[satisfied]]
        base = np.where(gstart_host > 0, cum_free[sr, gstart_host - 1], 0)
        targets_flat = np.searchsorted(
            monotone, offsets[sr] + base + vrank[satisfied] + 1, side="left"
        )
        target_hosts = targets_flat - sr * n_hosts
        block[sr, pv[satisfied]] = target_hosts.astype(block.dtype, copy=False)
        filled = np.bincount(
            sr * n_hosts + target_hosts, minlength=n_rows * n_hosts
        ).reshape(n_rows, n_hosts)
        free -= filled
        moved += int(satisfied.sum())
        pending_idx = np.nonzero(pending)[0]
        pending[pending_idx[satisfied]] = False
    return moved


#: Element budget for the (candidate x peer) expansion of one batched
#: delta pass; bounds peak memory of `FastCostEngine.candidate_batch`.
_CANDIDATE_CHUNK_ELEMS = 8_000_000


class TouchedSet(NamedTuple):
    """Compact dependency footprint of one engine state mutation.

    Returned by the engine's mutating batch ops and consumed by the
    persistent round cache (:mod:`repro.core.roundcache`):

    ``hosts``
        Hosts whose free slots / RAM / CPU / egress changed — candidate
        *feasibility* on these hosts must be re-probed, but scored Lemma 3
        rows stay valid (capacity never enters a delta).
    ``owners``
        Dense VM indices whose scored candidate rows went stale: the VMs
        that moved (source + probing order change), every communication
        peer of a mover (their Lemma 3 terms reference the mover's
        placement), and both endpoints of every λ change.
    ``structural``
        The dense VM index itself was remapped (arrivals/departures);
        owner-keyed caches must flush.
    """

    hosts: np.ndarray
    owners: np.ndarray
    structural: bool = False

    @classmethod
    def empty(cls, structural: bool = False) -> "TouchedSet":
        empty = np.empty(0, dtype=np.int64)
        return cls(hosts=empty, owners=empty.copy(), structural=structural)


def owner_host_rate_table(
    owners: np.ndarray, hosts: np.ndarray, rates: np.ndarray, n_hosts: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sparse per-(owner, host) rate sums as a sorted-key lookup table.

    The host-level aggregate of the Lemma 3 level-hierarchy decomposition:
    (owner, peer host) incidences are few (Σ degree), so a sort + binary
    search beats a dense (owners × hosts) scatter map by orders of
    magnitude in memory.  Query with :func:`owner_host_rate_lookup`.
    """
    key = owners * n_hosts + hosts
    order = np.argsort(key, kind="stable")
    key_sorted = key[order]
    first = np.ones(len(key_sorted), dtype=bool)
    first[1:] = key_sorted[1:] != key_sorted[:-1]
    return key_sorted[first], np.add.reduceat(
        rates[order], np.flatnonzero(first)
    )


def owner_host_rate_lookup(
    keys: np.ndarray,
    sums: np.ndarray,
    owners: np.ndarray,
    hosts: np.ndarray,
    n_hosts: int,
) -> np.ndarray:
    """Rates of (owner, host) queries against an ``owner_host_rate_table``.

    Missing combinations answer 0.0 (the owner has no peer on that host).
    """
    query = owners * n_hosts + hosts
    slot = np.searchsorted(keys, query)
    slot[slot >= len(keys)] = 0
    return np.where(keys[slot] == query, sums[slot], 0.0)


class CandidateBatch:
    """Flat-array snapshot of one batched §V-B5 candidate evaluation.

    Rows ("pairs") are (owner, candidate host) combinations, grouped by
    owner position — ``ptr[i]:ptr[i+1]`` is the candidate slice of the
    ``i``-th requested VM — and ordered within a group by the naive probing
    rank (peers by level desc / rate desc / id asc, each contributing its
    own server then the rest of its rack, first occurrence wins).  ``delta``
    holds each move's Lemma 3 gain and ``onto_rate`` the owner's traffic
    onto the candidate host (what the §V-C probe subtracts twice), both
    computed against the engine state the batch was built from.

    A batch is *not* live: it goes stale for an owner as soon as one of
    the owner's peers migrates (deltas and the candidate set itself depend
    on peer placement).  Capacity/bandwidth feasibility is deliberately
    NOT part of the batch — it changes with every applied wave — and is
    recomputed from the engine's incremental mirrors via
    :meth:`FastCostEngine.candidate_feasible`.
    """

    __slots__ = (
        "vms",
        "source",
        "degree",
        "total_rate",
        "ptr",
        "_owner",
        "host",
        "delta",
        "onto_rate",
    )

    def __init__(
        self,
        vms: np.ndarray,
        source: np.ndarray,
        degree: np.ndarray,
        total_rate: np.ndarray,
        ptr: np.ndarray,
        owner: Optional[np.ndarray],
        host: np.ndarray,
        delta: np.ndarray,
        onto_rate: np.ndarray,
    ) -> None:
        self.vms = vms
        self.source = source
        self.degree = degree
        self.total_rate = total_rate
        self.ptr = ptr
        self._owner = owner
        self.host = host
        self.delta = delta
        self.onto_rate = onto_rate

    @property
    def owner(self) -> np.ndarray:
        """Owner position of every pair row (materialized on demand)."""
        if self._owner is None:
            self._owner = np.repeat(
                np.arange(self.n_owners, dtype=np.int64),
                self.ptr[1:] - self.ptr[:-1],
            )
        return self._owner

    @property
    def n_owners(self) -> int:
        """Number of VMs the batch was built for."""
        return len(self.vms)

    @property
    def n_pairs(self) -> int:
        """Number of (owner, candidate host) rows."""
        return len(self.host)

    def select(
        self, positions: np.ndarray, with_onto: bool = True
    ) -> "CandidateBatch":
        """Sub-batch restricted to the given owner positions (reindexed).

        Row data is gathered, not recomputed — the round engine uses this
        to carry non-stale owners' candidates across waves.  Pass
        ``with_onto=False`` to skip the §V-C landing-rate column (callers
        running without a bandwidth threshold never read it).
        """
        positions = np.asarray(positions, dtype=np.int64)
        counts = self.ptr[positions + 1] - self.ptr[positions]
        new_ptr = np.zeros(len(positions) + 1, dtype=np.int64)
        np.cumsum(counts, out=new_ptr[1:])
        rows = np.repeat(
            self.ptr[positions] - new_ptr[:-1], counts
        ) + np.arange(int(counts.sum()))
        return CandidateBatch(
            vms=self.vms[positions],
            source=self.source[positions],
            degree=self.degree[positions],
            total_rate=self.total_rate[positions],
            ptr=new_ptr,
            owner=None,
            host=self.host[rows],
            delta=self.delta[rows],
            onto_rate=self.onto_rate[rows]
            if with_onto
            else np.empty(0),
        )

class FastCostEngine:
    """Incremental, vectorized cost engine bound to one allocation.

    The engine snapshots the traffic matrix and mirrors the allocation's
    VM → host mapping and per-host capacity usage into flat arrays.  All
    mutations must flow through the engine's update path —
    :meth:`apply_migration`/:meth:`apply_moves` for placement changes (the
    scheduler and :class:`repro.core.migration.MigrationEngine` do this),
    :meth:`apply_traffic_delta` for λ re-estimates and
    :meth:`add_vms`/:meth:`remove_vms` for tenant churn — or be followed
    by :meth:`rebuild`.  The engine tracks the bound objects' version
    counters (:attr:`in_sync`), so the scheduler only pays a full rebuild
    when some writer actually bypassed that path; multi-epoch dynamic
    runs whose transitions go through the delta APIs never cold-rebuild.
    """

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        weights: Optional[LinkWeights] = None,
        compact: bool = False,
    ) -> None:
        topology: Topology = allocation.topology
        #: Compact snapshot dtypes (int32 indices / float32 rates) — the
        #: hyperscale memory mode; defaults off so the 1e-9 differential
        #: pins against the naive model stay bit-stable.
        self._compact = bool(compact)
        self._weights = weights or LinkWeights.paper()
        if self._weights.max_level < topology.max_level:
            raise ValueError(
                f"weights cover {self._weights.max_level} levels but topology "
                f"has {topology.max_level}"
            )
        self._topology = topology
        self._allocation = allocation
        self._traffic = traffic
        self._path_weight = path_weight_table(self._weights, topology.max_level)
        self._rack_of = topology.host_rack_ids()
        self._pod_of = topology.host_pod_ids()
        # Both paper topologies attach a contiguous host range to each rack
        # (the `Topology.hosts_in_rack` contract), which is what lets the
        # batched candidate generation enumerate rack mates arithmetically.
        self._hosts_per_rack = topology.n_hosts // topology.n_racks
        self._slot_cap, self._ram_cap, self._cpu_cap, self._nic_cap = (
            allocation.cluster.capacity_arrays()
        )
        # Persistent per-owner round-score cache (lazy; see round_cache()).
        self._round_cache = None
        self.rebuild()

    # -- binding -----------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The topology levels are computed against."""
        return self._topology

    @property
    def weights(self) -> LinkWeights:
        """The link weights in effect."""
        return self._weights

    @property
    def allocation(self) -> Allocation:
        """The bound allocation."""
        return self._allocation

    @property
    def traffic(self) -> TrafficMatrix:
        """The bound traffic matrix (snapshotted at the last rebuild)."""
        return self._traffic

    @property
    def snapshot(self) -> TrafficSnapshot:
        """The current traffic snapshot (rebuilt on demand, not live)."""
        return self._snap

    def is_bound_to(self, allocation: Allocation, traffic: TrafficMatrix) -> bool:
        """Whether this engine's caches describe the given pair of objects."""
        return allocation is self._allocation and traffic is self._traffic

    def _check_bound(
        self, allocation: Optional[Allocation], traffic: Optional[TrafficMatrix]
    ) -> None:
        if allocation is not None and allocation is not self._allocation:
            raise ValueError(
                "FastCostEngine is bound to a different allocation; "
                "build a new engine or use the naive CostModel"
            )
        if traffic is not None and traffic is not self._traffic:
            raise ValueError(
                "FastCostEngine is bound to a different traffic matrix; "
                "call update_traffic() first"
            )

    def update_traffic(self, traffic: TrafficMatrix) -> None:
        """Bind a new traffic matrix and rebuild the caches."""
        self._traffic = traffic
        self.rebuild()

    def rebuild(self) -> None:
        """Resnapshot traffic and resync every cache from the allocation.

        This is the pinned reference path for epoch transitions: the
        delta APIs (:meth:`apply_traffic_delta`, :meth:`add_vms`,
        :meth:`remove_vms`) must leave the engine in exactly the state a
        full rebuild would produce (within float-summation reordering),
        which the delta differential suite asserts.
        """
        self._snap = TrafficSnapshot.build(
            self._traffic,
            list(self._allocation.vm_ids()),
            strict=True,
            compact=self._compact,
        )
        self._sync_allocation_mirrors()
        self._index_pairs()
        self._recompute_cost_caches()
        self._mark_synced()
        if self._round_cache is not None:
            self._round_cache.flush()

    # -- persistent round-score cache ----------------------------------------

    #: Sentinel distinguishing "no cap requested" from "keep the current
    #: cache whatever its cap" in :meth:`round_cache`.
    _CACHE_CAP_UNSET = object()

    def round_cache(self, max_candidates=_CACHE_CAP_UNSET):
        """The engine's persistent per-owner round-score cache.

        Created on first use for the given candidate cap and kept alive
        across rounds, runs and epochs; every mutation that flows through
        the engine's update path invalidates exactly the owners whose
        dependency footprint it touched (see
        :class:`repro.core.roundcache.RoundScoreCache`).  Requesting a
        different ``max_candidates`` replaces the cache (candidate sets
        depend on the cap); omit the argument to read the current cache
        without risking that replacement (introspection, stats).
        """
        from repro.core.roundcache import RoundScoreCache

        if max_candidates is FastCostEngine._CACHE_CAP_UNSET:
            if self._round_cache is None:
                self._round_cache = RoundScoreCache(self, None)
            return self._round_cache
        if (
            self._round_cache is None
            or self._round_cache.max_candidates != max_candidates
        ):
            self._round_cache = RoundScoreCache(self, max_candidates)
        return self._round_cache

    def _invalidate_owners(self, dense_owners: np.ndarray) -> None:
        if self._round_cache is not None:
            self._round_cache.invalidate_owners(dense_owners)

    def _flush_round_cache(self) -> None:
        if self._round_cache is not None:
            self._round_cache.flush()

    def invalidate_round_decisions(self) -> None:
        """Drop the round cache's cross-round decision carry, if any.

        Call after out-of-band configuration changes that alter decision
        semantics without touching scored deltas (e.g. a §V-C bandwidth
        threshold flip): the cached scored rows stay valid, but any
        carried per-owner decision was made under the old rules and must
        be re-derived.
        """
        if self._round_cache is not None:
            self._round_cache.invalidate_decisions()

    def _movers_footprint(self, movers: np.ndarray) -> np.ndarray:
        """Dense owners whose scored rows a batch of moves makes stale:
        the movers themselves plus every communication peer of a mover."""
        snap = self._snap
        counts = (snap.ptr[movers + 1] - snap.ptr[movers]).astype(np.int64)
        ptr = np.zeros(len(movers) + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        flat = np.repeat(snap.ptr[movers] - ptr[:-1], counts) + np.arange(
            int(ptr[-1])
        )
        candidates = np.concatenate((movers, snap.peer[flat]))
        # Sorted-unique either way; the dense bitmap only pays off when
        # the footprint is a sizable fraction of the snapshot.
        if len(candidates) * 8 < snap.n_vms:
            return np.unique(candidates)
        hit = np.zeros(snap.n_vms, dtype=bool)
        hit[candidates] = True
        return np.nonzero(hit)[0]

    def _sync_allocation_mirrors(self) -> None:
        """Re-extract the VM → host map and capacity usage mirrors."""
        snap = self._snap
        n = snap.n_vms
        self._host_of, ram, cpu = self._allocation.mapping_arrays(
            snap.vm_ids.tolist()
        )
        n_hosts = len(self._slot_cap)
        self._slot_used = np.bincount(self._host_of, minlength=n_hosts)
        self._vm_ram = ram
        self._vm_cpu = cpu
        # With a uniform VM population (every paper scenario), per-pair
        # capacity probes collapse to one per-host mask per wave.
        self._uniform_vm = bool(
            n > 0
            and (ram == ram[0]).all()
            and (cpu == cpu[0]).all()
        )
        self._ram_used = np.bincount(self._host_of, weights=ram, minlength=n_hosts)
        self._ram_used = self._ram_used.astype(np.int64)
        self._cpu_used = np.bincount(self._host_of, weights=cpu, minlength=n_hosts)

    def _index_pairs(self) -> None:
        """(Re)build the sorted-key lookup indexes over the pair arrays.

        ``_pair_key_sorted``/``_pair_sorted_order`` answer "where is pair
        (u, v)?" by binary search, and ``_csr_key`` does the same for the
        two directed CSR entries of a pair — what lets a traffic delta
        patch rates in place instead of re-snapshotting.
        """
        snap = self._snap
        n = snap.n_vms
        # Keys are packed as u·n + v: force int64 so compact (int32)
        # snapshots cannot overflow at large populations.
        key = snap.pair_u.astype(np.int64) * n + snap.pair_v
        self._pair_sorted_order = np.argsort(key, kind="stable")
        self._pair_key_sorted = key[self._pair_sorted_order]
        # CSR entries are sorted by (row, peer), so this key is ascending.
        self._csr_key = snap.row.astype(np.int64) * n + snap.peer

    def _recompute_cost_caches(self) -> None:
        """Per-VM Eq. (1) costs, the Eq. (2) total and §V-C egress, from
        the current snapshot + placement arrays in one vectorized pass."""
        snap = self._snap
        n = snap.n_vms
        n_hosts = len(self._slot_cap)
        levels = pair_levels(
            self._host_of[snap.row],
            self._host_of[snap.peer],
            self._rack_of,
            self._pod_of,
        )
        edge_cost = snap.rate * self._path_weight[levels]
        self._vm_cost = np.bincount(snap.row, weights=edge_cost, minlength=n)
        self._total = assignment_cost(
            self._host_of, snap, self._rack_of, self._pod_of, self._path_weight
        )
        # Per-host NIC egress (§V-C): every directed edge whose endpoints sit
        # on different hosts contributes its rate to the owner's host.
        crossing = levels > 0
        self._egress = np.bincount(
            self._host_of[snap.row][crossing],
            weights=snap.rate[crossing],
            minlength=n_hosts,
        )

    # -- incremental epoch transitions (state deltas) ------------------------

    def _mark_synced(self) -> None:
        """Adopt the bound objects' current versions (full-resync paths only).

        Only :meth:`rebuild` may call this: it re-reads ground truth, so
        whatever mutations happened are now reflected.  Incremental ops
        instead advance the recorded versions by exactly the one bump
        their paired mutation causes (:meth:`_advance_sync`) — a foreign
        out-of-band edit then leaves the counters mismatched and the next
        run pays the rebuild instead of silently trusting stale caches.
        """
        self._alloc_version = self._allocation.version
        self._traffic_version = self._traffic.version

    def _advance_sync(self, allocation: bool = False, traffic: bool = False) -> None:
        """Credit one paired version bump to the engine's sync ledger."""
        if allocation:
            self._alloc_version += 1
        if traffic:
            self._traffic_version += 1

    @property
    def in_sync(self) -> bool:
        """Whether the caches still describe the bound objects' live state.

        Compares the version counters recorded at the last rebuild or
        incremental update against the bound allocation and traffic
        matrix.  ``False`` means some writer bypassed the engine's update
        path (direct ``allocation.migrate``, out-of-band ``set_rate``);
        the scheduler then falls back to a full :meth:`rebuild`.
        """
        return (
            self._alloc_version == self._allocation.version
            and self._traffic_version == self._traffic.version
        )

    def apply_traffic_delta(self, changed_pairs) -> int:
        """Patch the snapshot and every cost cache for one batch of λ
        changes — the epoch-transition alternative to :meth:`rebuild`.

        ``changed_pairs`` is an iterable of ``(vm_u, vm_v, new_rate)``
        triples with *absolute* new rates (0 removes the pair), or a
        ``(us, vs, rates)`` tuple of flat arrays; a pair listed twice
        takes its last value.  The bound :class:`TrafficMatrix` must
        receive the same delta (callers go through
        ``SCOREScheduler.apply_traffic_delta``, which patches both); the
        engine records the matrix's post-delta version so :attr:`in_sync`
        holds afterwards.

        Rate-only deltas (every changed pair already snapshotted, none
        removed) are patched in place in O(changed) with incremental
        Eq. 1/2 and egress adjustments; structural deltas (new or
        vanished pairs) rebuild the CSR from the merged pair arrays —
        still numpy end-to-end, skipping the python-dict walk of a full
        rebuild.  VM ids outside the snapshot population raise
        ``KeyError`` (add the VMs first via :meth:`add_vms`).  Returns
        the number of pair changes applied.
        """
        us, vs, rates = self._parse_delta(changed_pairs)
        if us.size == 0:
            return 0
        snap = self._snap
        ids = snap.vm_ids
        if len(ids) == 0:
            raise KeyError("the engine's snapshot holds no VMs")
        iu = np.searchsorted(ids, us).clip(max=len(ids) - 1)
        iv = np.searchsorted(ids, vs).clip(max=len(ids) - 1)
        known = (ids[iu] == us) & (ids[iv] == vs)
        if not known.all():
            bad = np.nonzero(~known)[0][0]
            missing = us[bad] if ids[iu[bad]] != us[bad] else vs[bad]
            raise KeyError(
                f"VM {missing} is not in the engine's snapshot; "
                f"call add_vms() (or rebuild()) first"
            )
        lo = np.minimum(iu, iv)
        hi = np.maximum(iu, iv)
        n = snap.n_vms
        key = lo * n + hi
        # Dedup keeping the last occurrence per pair.
        order = np.argsort(key, kind="stable")
        last = np.ones(len(order), dtype=bool)
        key_sorted = key[order]
        last[:-1] = key_sorted[1:] != key_sorted[:-1]
        sel = order[last]
        lo, hi, rates, key = lo[sel], hi[sel], rates[sel], key_sorted[last]
        n_applied = len(key)

        table = self._pair_key_sorted
        if len(table):
            pos = np.searchsorted(table, key).clip(max=len(table) - 1)
            found = table[pos] == key
        else:
            pos = np.zeros(len(key), dtype=np.int64)
            found = np.zeros(len(key), dtype=bool)
        additions = ~found & (rates > 0)
        removals = found & (rates == 0)
        if not np.any(additions) and not np.any(removals):
            live = found  # ~found & rate==0 rows are no-ops
            if np.any(live):
                self._patch_rates(
                    self._pair_sorted_order[pos[live]],
                    lo[live],
                    hi[live],
                    rates[live],
                )
        else:
            updates = found & (rates > 0)
            pair_rate = snap.pair_rate.copy()
            pair_rate[self._pair_sorted_order[pos[updates]]] = rates[updates]
            pair_u, pair_v = snap.pair_u, snap.pair_v
            if np.any(removals):
                keep = np.ones(len(pair_rate), dtype=bool)
                keep[self._pair_sorted_order[pos[removals]]] = False
                pair_u = pair_u[keep]
                pair_v = pair_v[keep]
                pair_rate = pair_rate[keep]
            if np.any(additions):
                pair_u = np.concatenate([pair_u, lo[additions]])
                pair_v = np.concatenate([pair_v, hi[additions]])
                pair_rate = np.concatenate([pair_rate, rates[additions]])
            self._set_pairs(pair_u, pair_v, pair_rate)
        # Only the endpoints' scored rows reference the changed rates (an
        # owner's Lemma 3 terms involve its own incident edges alone);
        # other owners' CSR slices keep their content even when a
        # structural delta rebuilds the arrays.
        self._invalidate_owners(np.unique(np.concatenate([lo, hi])))
        self._advance_sync(traffic=True)
        return n_applied

    @staticmethod
    def _parse_delta(changed_pairs):
        """Normalize a traffic delta to (us, vs, rates) int64/float arrays."""
        if (
            isinstance(changed_pairs, tuple)
            and len(changed_pairs) == 3
            and isinstance(changed_pairs[0], np.ndarray)
        ):
            us = np.asarray(changed_pairs[0], dtype=np.int64)
            vs = np.asarray(changed_pairs[1], dtype=np.int64)
            rates = np.asarray(changed_pairs[2], dtype=float)
            if not (len(us) == len(vs) == len(rates)):
                raise ValueError("delta arrays must have equal length")
        else:
            triples = np.asarray(list(changed_pairs), dtype=float)
            if triples.size == 0:
                triples = triples.reshape(0, 3)
            if triples.ndim != 2 or triples.shape[1] != 3:
                raise ValueError(
                    "changed_pairs must be (vm_u, vm_v, rate) triples"
                )
            us = triples[:, 0].astype(np.int64)
            vs = triples[:, 1].astype(np.int64)
            rates = triples[:, 2]
        if np.any(us == vs):
            raise ValueError("self-traffic is not modelled")
        if np.any(rates < 0) or np.any(np.isnan(rates)):
            raise ValueError("rates must be >= 0")
        return us, vs, rates

    def _patch_rates(
        self,
        pair_idx: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        new_rates: np.ndarray,
    ) -> None:
        """In-place rate update for pairs already in the snapshot.

        The placement is untouched, so every changed pair's level — and
        therefore its path weight — is fixed; the caches shift by
        ``(new − old) · w[level]`` terms only.
        """
        snap = self._snap
        n = snap.n_vms
        delta = new_rates - snap.pair_rate[pair_idx]
        snap.pair_rate[pair_idx] = new_rates
        # Both directed CSR entries of each pair.
        snap.rate[np.searchsorted(self._csr_key, lo * n + hi)] = new_rates
        snap.rate[np.searchsorted(self._csr_key, hi * n + lo)] = new_rates
        host_lo = self._host_of[lo]
        host_hi = self._host_of[hi]
        levels = pair_levels(host_lo, host_hi, self._rack_of, self._pod_of)
        contrib = delta * self._path_weight[levels]
        self._vm_cost += np.bincount(
            np.concatenate([lo, hi]),
            weights=np.concatenate([contrib, contrib]),
            minlength=n,
        )
        self._total += float(contrib.sum())
        crossing = levels > 0
        if np.any(crossing):
            shift = delta[crossing]
            self._egress += np.bincount(
                np.concatenate([host_lo[crossing], host_hi[crossing]]),
                weights=np.concatenate([shift, shift]),
                minlength=len(self._egress),
            )

    def _set_pairs(
        self, pair_u: np.ndarray, pair_v: np.ndarray, pair_rate: np.ndarray
    ) -> None:
        """Install new undirected pair arrays (dense indices, u < v) over
        the same VM population and rebuild the CSR, indexes and caches."""
        snap = self._snap
        n = snap.n_vms
        # Preserve the snapshot's (possibly compact) dtypes: a structural
        # delta must not silently promote a compact snapshot to int64/
        # float64 arrays.
        pair_u = np.asarray(pair_u).astype(snap.index_dtype, copy=False)
        pair_v = np.asarray(pair_v).astype(snap.index_dtype, copy=False)
        pair_rate = np.asarray(pair_rate).astype(snap.rate_dtype, copy=False)
        row = np.concatenate([pair_u, pair_v])
        col = np.concatenate([pair_v, pair_u])
        val = np.concatenate([pair_rate, pair_rate])
        order = np.lexsort((col, row))
        snap.row = row[order]
        snap.peer = col[order]
        snap.rate = val[order]
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(snap.row, minlength=n), out=ptr[1:])
        snap.ptr = ptr
        snap.pair_u, snap.pair_v, snap.pair_rate = pair_u, pair_v, pair_rate
        self._index_pairs()
        self._recompute_cost_caches()

    def add_vms(self, vms: Sequence) -> TouchedSet:
        """Mirror one batch of VM arrivals already applied to the allocation.

        Call :meth:`Allocation.add_vms` first (the allocation enforces
        capacity); hosts are read back from it.  The dense VM index, CSR
        arrays and capacity mirrors are patched in place — new VMs join
        with no traffic, so Eq. 1/2 and egress caches are unchanged
        (route subsequent rate changes through :meth:`apply_traffic_delta`).
        """
        vms = list(vms)
        if not vms:
            return TouchedSet.empty()
        snap = self._snap
        add_ids = np.array([vm.vm_id for vm in vms], dtype=np.int64)
        order = np.argsort(add_ids, kind="stable")
        add_ids = add_ids[order]
        if np.any(add_ids[1:] == add_ids[:-1]):
            raise ValueError("duplicate VM IDs in the arrival batch")
        hosts = np.array(
            [self._allocation.server_of(int(v)) for v in add_ids],
            dtype=np.int64,
        )
        add_ram = np.array([vms[i].ram_mb for i in order], dtype=np.int64)
        add_cpu = np.array([vms[i].cpu for i in order], dtype=float)
        pos = np.searchsorted(snap.vm_ids, add_ids)
        if len(snap.vm_ids):
            clipped = pos.clip(max=len(snap.vm_ids) - 1)
            if np.any(snap.vm_ids[clipped] == add_ids):
                dup = add_ids[snap.vm_ids[clipped] == add_ids][0]
                raise ValueError(f"VM {dup} is already in the snapshot")
        old_n = snap.n_vms
        # Every old dense index shifts right by the number of arrivals
        # inserted at or before it; the shift is monotone, so the CSR stays
        # sorted by (row, peer) after remapping — no re-sort needed.
        old_to_new = np.arange(old_n, dtype=np.int64) + np.searchsorted(
            pos, np.arange(old_n), side="right"
        )
        snap.vm_ids = np.insert(snap.vm_ids, pos, add_ids)
        snap.vm_index = {int(v): i for i, v in enumerate(snap.vm_ids)}
        idx = snap.index_dtype
        snap.peer = old_to_new[snap.peer].astype(idx, copy=False)
        snap.row = old_to_new[snap.row].astype(idx, copy=False)
        snap.pair_u = old_to_new[snap.pair_u].astype(idx, copy=False)
        snap.pair_v = old_to_new[snap.pair_v].astype(idx, copy=False)
        new_n = old_n + len(add_ids)
        ptr = np.zeros(new_n + 1, dtype=np.int64)
        np.cumsum(np.bincount(snap.row, minlength=new_n), out=ptr[1:])
        snap.ptr = ptr
        self._host_of = np.insert(self._host_of, pos, hosts)
        self._vm_ram = np.insert(self._vm_ram, pos, add_ram)
        self._vm_cpu = np.insert(self._vm_cpu, pos, add_cpu)
        self._vm_cost = np.insert(self._vm_cost, pos, 0.0)
        n_hosts = len(self._slot_cap)
        self._slot_used += np.bincount(hosts, minlength=n_hosts)
        self._ram_used += np.bincount(
            hosts, weights=add_ram, minlength=n_hosts
        ).astype(np.int64)
        self._cpu_used += np.bincount(hosts, weights=add_cpu, minlength=n_hosts)
        self._uniform_vm = bool(
            (self._vm_ram == self._vm_ram[0]).all()
            and (self._vm_cpu == self._vm_cpu[0]).all()
        )
        self._index_pairs()
        self._advance_sync(allocation=True)
        # Arrivals remap the dense VM index; owner-keyed caches flush.
        self._flush_round_cache()
        return TouchedSet.empty(structural=True)

    def remove_vms(self, vm_ids: Sequence[int]) -> TouchedSet:
        """Mirror one batch of VM departures already applied to the allocation.

        Drops the VMs from the dense index, removes every pair touching
        them (the matrix-side zeroing is the caller's job —
        ``SCOREScheduler.retire_vms`` does both) and patches the capacity
        mirrors; the cost caches are recomputed in one vectorized pass.
        """
        ids = np.unique(np.asarray(list(vm_ids), dtype=np.int64))
        if ids.size == 0:
            return TouchedSet.empty()
        snap = self._snap
        dense = self.dense_indices(ids.tolist())  # KeyError on unknowns
        old_n = snap.n_vms
        keep_mask = np.ones(old_n, dtype=bool)
        keep_mask[dense] = False
        hosts = self._host_of[dense]
        n_hosts = len(self._slot_cap)
        self._slot_used -= np.bincount(hosts, minlength=n_hosts)
        self._ram_used -= np.bincount(
            hosts, weights=self._vm_ram[dense], minlength=n_hosts
        ).astype(np.int64)
        self._cpu_used -= np.bincount(
            hosts, weights=self._vm_cpu[dense], minlength=n_hosts
        )
        old_to_new = np.cumsum(keep_mask) - 1  # valid at kept indices only
        pair_keep = keep_mask[snap.pair_u] & keep_mask[snap.pair_v]
        pair_u = old_to_new[snap.pair_u[pair_keep]]
        pair_v = old_to_new[snap.pair_v[pair_keep]]
        pair_rate = snap.pair_rate[pair_keep]
        snap.vm_ids = snap.vm_ids[keep_mask]
        snap.vm_index = {int(v): i for i, v in enumerate(snap.vm_ids)}
        self._host_of = self._host_of[keep_mask]
        self._vm_ram = self._vm_ram[keep_mask]
        self._vm_cpu = self._vm_cpu[keep_mask]
        n = snap.n_vms
        self._uniform_vm = bool(
            n > 0
            and (self._vm_ram == self._vm_ram[0]).all()
            and (self._vm_cpu == self._vm_cpu[0]).all()
        )
        self._set_pairs(pair_u, pair_v, pair_rate)
        self._advance_sync(allocation=True)
        # Departures remap the dense VM index; owner-keyed caches flush.
        self._flush_round_cache()
        return TouchedSet.empty(structural=True)

    # -- CostModel-compatible queries --------------------------------------

    def total_cost(
        self,
        allocation: Optional[Allocation] = None,
        traffic: Optional[TrafficMatrix] = None,
    ) -> float:
        """C_A, Eq. (2) — maintained incrementally across migrations."""
        self._check_bound(allocation, traffic)
        return self._total

    def recompute_total_cost(self) -> float:
        """Eq. (2) from scratch over the arrays (drift diagnostics)."""
        return assignment_cost(
            self._host_of,
            self._snap,
            self._rack_of,
            self._pod_of,
            self._path_weight,
        )

    def vm_cost(
        self,
        allocation: Optional[Allocation],
        traffic: Optional[TrafficMatrix],
        vm_u: int,
    ) -> float:
        """C_A(u), Eq. (1) — read from the incremental per-VM cache."""
        self._check_bound(allocation, traffic)
        return float(self._vm_cost[self._dense(vm_u)])

    def highest_level(
        self,
        allocation: Optional[Allocation],
        traffic: Optional[TrafficMatrix],
        vm_u: int,
    ) -> int:
        """l_A(u): max communication level to any peer; 0 without peers."""
        self._check_bound(allocation, traffic)
        peers, _ = self._snap.peers_slice(self._dense(vm_u))
        if peers.size == 0:
            return 0
        host_u = self._host_of[self._dense(vm_u)]
        levels = pair_levels(
            np.full(peers.shape, host_u, dtype=np.int64),
            self._host_of[peers],
            self._rack_of,
            self._pod_of,
        )
        return int(levels.max())

    def migration_delta(
        self,
        allocation: Optional[Allocation],
        traffic: Optional[TrafficMatrix],
        vm_u: int,
        target_host: int,
    ) -> float:
        """ΔC_A(u → x), Lemma 3; positive values are reductions."""
        self._check_bound(allocation, traffic)
        deltas = self.migration_deltas(
            vm_u, np.array([target_host], dtype=np.int64)
        )
        return float(deltas[0])

    # -- batch / incremental API -------------------------------------------

    def peer_hosts_and_rates(self, vm_u: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(peer VM ids, peer host indices, rates) for one VM."""
        peers, rates = self._snap.peers_slice(self._dense(vm_u))
        return self._snap.vm_ids[peers], self._host_of[peers], rates

    def degree(self, vm_u: int) -> int:
        """Number of communication peers of ``vm_u`` in the snapshot."""
        dense = self._dense(vm_u)
        return int(self._snap.ptr[dense + 1] - self._snap.ptr[dense])

    def migration_deltas(self, vm_u: int, hosts: np.ndarray) -> np.ndarray:
        """Lemma 3 deltas of moving ``vm_u`` to every host in ``hosts``.

        One vectorized pass over a (n_hosts, n_peers) level matrix; the
        entry for the VM's current host is exactly 0.0.
        """
        dense = self._dense(vm_u)
        hosts = np.asarray(hosts, dtype=np.int64)
        peers, rates = self._snap.peers_slice(dense)
        if peers.size == 0:
            return np.zeros(hosts.shape, dtype=float)
        source = int(self._host_of[dense])
        peer_hosts = self._host_of[peers]
        before = pair_levels(
            np.full(peers.shape, source, dtype=np.int64),
            peer_hosts,
            self._rack_of,
            self._pod_of,
        )
        # after[i, j]: level between candidate i and peer j.
        cand_rack = self._rack_of[hosts][:, None]
        cand_pod = self._pod_of[hosts][:, None]
        after = np.full((len(hosts), len(peers)), 3, dtype=np.int64)
        after[cand_pod == self._pod_of[peer_hosts][None, :]] = 2
        after[cand_rack == self._rack_of[peer_hosts][None, :]] = 1
        after[hosts[:, None] == peer_hosts[None, :]] = 0
        weighted = rates * (
            self._path_weight[before][None, :] - self._path_weight[after]
        )
        return weighted.sum(axis=1)

    def candidate_hosts(
        self, vm_u: int, max_candidates: Optional[int] = None
    ) -> np.ndarray:
        """Candidate targets in the naive probing order (§V-B5), as an array.

        Matches :meth:`repro.core.migration.MigrationEngine.candidate_hosts`
        exactly: peers ranked by (level desc, rate desc, VM id asc), each
        contributing its own server then the rest of its rack.
        """
        dense = self._dense(vm_u)
        peers, rates = self._snap.peers_slice(dense)
        if peers.size == 0:
            return np.empty(0, dtype=np.int64)
        source = int(self._host_of[dense])
        peer_hosts = self._host_of[peers]
        levels = pair_levels(
            np.full(peers.shape, source, dtype=np.int64),
            peer_hosts,
            self._rack_of,
            self._pod_of,
        )
        # peers are stored ascending by VM id, so a stable sort on
        # (-level, -rate) reproduces the naive (level, rate, id) ranking.
        order = np.lexsort((-rates, -levels))
        topo = self._topology
        seen = bytearray(len(self._slot_cap))
        seen[source] = 1
        candidates: List[int] = []
        for peer_host in peer_hosts[order]:
            peer_host = int(peer_host)
            if not seen[peer_host]:
                seen[peer_host] = 1
                candidates.append(peer_host)
            for host in topo.hosts_in_rack(int(self._rack_of[peer_host])):
                if not seen[host]:
                    seen[host] = 1
                    candidates.append(host)
            if max_candidates and len(candidates) >= max_candidates:
                return np.array(candidates[:max_candidates], dtype=np.int64)
        return np.array(candidates, dtype=np.int64)

    def can_host_many(self, hosts: np.ndarray, vm) -> np.ndarray:
        """Vectorized slot/RAM/CPU feasibility of ``vm`` on each host.

        Written as ``cap - used >= need`` — the exact float expression of
        ``Allocation.free_*``/``can_host`` — so the mirror cannot disagree
        with the allocation at a capacity boundary.
        """
        hosts = np.asarray(hosts, dtype=np.int64)
        return (
            (self._slot_cap[hosts] - self._slot_used[hosts] >= 1)
            & (self._ram_cap[hosts] - self._ram_used[hosts] >= vm.ram_mb)
            & (self._cpu_cap[hosts] - self._cpu_used[hosts] >= vm.cpu)
        )

    def host_of(self, vm_u: int) -> int:
        """Mirror of ``allocation.server_of`` from the engine's arrays."""
        return int(self._host_of[self._dense(vm_u)])

    def host_egress(self, host: int) -> float:
        """Aggregate NIC-crossing rate of ``host`` (bytes/second).

        Maintained incrementally across migrations; agrees with the naive
        :meth:`repro.core.migration.MigrationEngine.host_egress_rate` to
        within float-summation reordering.
        """
        return float(self._egress[host])

    def bandwidth_feasible_many(
        self, vm_u: int, hosts: np.ndarray, threshold: float
    ) -> np.ndarray:
        """Vectorized §V-C check over candidate targets.

        For each candidate, the post-migration NIC load is the host's
        current egress plus u's flows that would start crossing it, minus
        u's flows to VMs already there (which drop off the NIC); feasible
        when that stays within ``threshold`` of the NIC line rate.
        """
        hosts = np.asarray(hosts, dtype=np.int64)
        budget = threshold * self._nic_cap[hosts]
        peers, rates = self._snap.peers_slice(self._dense(vm_u))
        if peers.size == 0:
            return self._egress[hosts] <= budget
        peer_hosts = self._host_of[peers]
        onto_target = np.bincount(
            peer_hosts, weights=rates, minlength=len(self._egress)
        )[hosts]
        load_after = self._egress[hosts] + (rates.sum() - onto_target) - onto_target
        return load_after <= budget

    # -- wave-batched round API ---------------------------------------------

    def dense_indices(self, vm_ids: Sequence[int]) -> np.ndarray:
        """Dense snapshot indices of the given VM ids (KeyError on misses).

        Bulk queries run as one binary search over the sorted id vector;
        small ones walk the dict index.
        """
        if len(vm_ids) < 64:
            index = self._snap.vm_index
            return np.fromiter(
                (index[int(v)] for v in vm_ids),
                dtype=np.int64,
                count=len(vm_ids),
            )
        ids = np.asarray(vm_ids, dtype=np.int64)
        table = self._snap.vm_ids
        if len(table) == 0:
            raise KeyError("the engine's snapshot holds no VMs")
        pos = np.searchsorted(table, ids).clip(max=len(table) - 1)
        bad = table[pos] != ids
        if np.any(bad):
            missing = int(ids[np.nonzero(bad)[0][0]])
            raise KeyError(
                f"VM {missing} is not in the engine's snapshot; call rebuild()"
            )
        return pos

    def highest_levels(self) -> np.ndarray:
        """Per-dense-VM highest communication level, one vectorized pass.

        Equals :meth:`highest_level` for every VM (0 for peerless VMs);
        what the batched HLF end-of-round refresh feeds into
        :meth:`repro.core.token.Token.set_levels`.
        """
        snap = self._snap
        out = np.zeros(snap.n_vms, dtype=np.int64)
        if snap.row.size == 0:
            return out
        levels = pair_levels(
            self._host_of[snap.row],
            self._host_of[snap.peer],
            self._rack_of,
            self._pod_of,
        )
        starts = snap.ptr[:-1]
        nonempty = snap.ptr[1:] > starts
        if np.any(nonempty):
            out[nonempty] = np.maximum.reduceat(levels, starts[nonempty])
        return out

    def wave_level_updates(
        self, dense_vms: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Algorithm 1's token updates for one wave of settled holds.

        Returns ``(own_levels, peer_dense, raise_levels)``: each given
        VM's measured highest communication level (what the holder writes
        into its own token entry), plus — deduplicated to the max per
        peer — the level each of its peers would be raised to
        (``l_v ← l(u, v)`` only when larger).  One vectorized pass over
        the settled VMs' incident edges; the HLF policy feeds the result
        into :meth:`repro.core.token.Token.raise_levels`.
        """
        snap = self._snap
        vms = np.asarray(dense_vms, dtype=np.int64)
        deg = (snap.ptr[vms + 1] - snap.ptr[vms]).astype(np.int64)
        own = np.zeros(len(vms), dtype=np.int64)
        total = int(deg.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return own, empty, empty.copy()
        cum = np.zeros(len(vms) + 1, dtype=np.int64)
        np.cumsum(deg, out=cum[1:])
        owner = np.repeat(np.arange(len(vms), dtype=np.int64), deg)
        edge = np.repeat(snap.ptr[vms] - cum[:-1], deg) + np.arange(total)
        peers = snap.peer[edge]
        levels = pair_levels(
            self._host_of[vms][owner],
            self._host_of[peers],
            self._rack_of,
            self._pod_of,
        )
        nonempty = deg > 0
        own[nonempty] = np.maximum.reduceat(levels, cum[:-1][nonempty])
        raise_to = np.zeros(snap.n_vms, dtype=np.int64)
        np.maximum.at(raise_to, peers, levels)
        touched = np.unique(peers)
        return own, touched, raise_to[touched]

    def candidate_batch(
        self,
        dense_vms: np.ndarray,
        max_candidates: Optional[int] = None,
    ) -> CandidateBatch:
        """Batched §V-B5 candidate generation + Lemma 3 scoring.

        For every VM in ``dense_vms`` (dense snapshot indices), enumerates
        the candidate targets in the exact naive probing order of
        :meth:`candidate_hosts` and scores every (VM, candidate) move in
        one chunked vectorized pass.  The expansion is
        ``Σ_u candidates(u) × degree(u)`` rows, chunked to stay bounded.
        """
        snap = self._snap
        vms = np.asarray(dense_vms, dtype=np.int64)
        n = len(vms)
        n_hosts = len(self._slot_cap)
        deg = (snap.ptr[vms + 1] - snap.ptr[vms]).astype(np.int64)
        source = self._host_of[vms]
        empty = CandidateBatch(
            vms=vms,
            source=source,
            degree=deg,
            total_rate=np.zeros(n),
            ptr=np.zeros(n + 1, dtype=np.int64),
            owner=np.empty(0, dtype=np.int64),
            host=np.empty(0, dtype=np.int64),
            delta=np.empty(0),
            onto_rate=np.empty(0),
        )
        total_e = int(deg.sum())
        if total_e == 0:
            return empty

        # Directed edges of the requested VMs, grouped by owner position.
        cum = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=cum[1:])
        owner_e = np.repeat(np.arange(n, dtype=np.int64), deg)
        edge_idx = np.repeat(snap.ptr[vms] - cum[:-1], deg) + np.arange(total_e)
        peer_host = self._host_of[snap.peer[edge_idx]]
        rate = snap.rate[edge_idx]
        before = pair_levels(
            source[owner_e], peer_host, self._rack_of, self._pod_of
        )
        # §V-B5 peer ranking: level desc, rate desc, VM id asc (CSR slices
        # are ascending by peer id, and lexsort is stable).  (owner, level)
        # pack into one integer key, halving the lexsort passes.
        order = np.lexsort((-rate, owner_e * 4 + (3 - before)))
        owner_e = owner_e[order]
        peer_host = peer_host[order]
        rate = rate[order]
        before = before[order]
        total_rate = np.bincount(owner_e, weights=rate, minlength=n)
        # Eq. 1 restricted to this VM's peers, at the current placement —
        # the Lemma 3 delta of a move is this minus the post-move sum.
        local_cost = np.bincount(
            owner_e, weights=rate * self._path_weight[before], minlength=n
        )

        # Candidate *blocks*: each ranked peer contributes its own server
        # then its whole (contiguous) rack, so §V-B5's per-host dedup
        # collapses to rack granularity — a later peer in an already-
        # probed rack adds nothing (its server already sits inside the
        # earlier block).  One block per (owner, earliest-ranked peer
        # rack) is enumerated and rows are written directly in probing
        # order: dedup sorts run over the ~|E| edges, never over the
        # ~|E|·rack row grid.
        per = self._hosts_per_rack
        rack_e = self._rack_of[peer_host]
        n_racks = int(self._rack_of.max()) + 1
        n_pods = int(self._pod_of.max()) + 1
        key = owner_e * np.int64(n_racks) + rack_e
        korder = np.argsort(key, kind="stable")
        ks = key[korder]
        kfirst = np.ones(len(ks), dtype=bool)
        kfirst[1:] = ks[1:] != ks[:-1]
        lead_key = korder[kfirst]  # leader edge per block, key order
        bperm = np.argsort(lead_key)  # key order -> probing order
        leaders = lead_key[bperm]
        m = len(leaders)
        inv_b = np.empty(m, dtype=np.int64)
        inv_b[bperm] = np.arange(m, dtype=np.int64)
        block_key_of_edge = np.empty(total_e, dtype=np.int64)
        block_key_of_edge[korder] = np.cumsum(kfirst) - 1
        block_of_edge = inv_b[block_key_of_edge]

        b_owner = owner_e[leaders]
        b_phost = peer_host[leaders]
        b_rack_base = rack_e[leaders] * per
        b_src = source[b_owner]
        src_in_rack = (b_src >= b_rack_base) & (b_src < b_rack_base + per)
        has_front = b_phost != b_src
        # Block layout: the peer's server first, then its rack ascending —
        # minus the peer's own column (listed up front) and the owner's
        # source host.
        grid = np.empty((m, per + 1), dtype=np.int64)
        grid[:, 0] = b_phost
        grid[:, 1:] = b_rack_base[:, None] + np.arange(per, dtype=np.int64)
        keep = np.ones((m, per + 1), dtype=bool)
        keep[:, 0] = has_front
        rows_m = np.arange(m)
        keep[rows_m, b_phost - b_rack_base + 1] = False
        sir = np.nonzero(src_in_rack & has_front)[0]
        keep[sir, b_src[sir] - b_rack_base[sir] + 1] = False
        block_len = keep.sum(axis=1).astype(np.int64)
        rows_flat = np.nonzero(keep.ravel())[0]
        host_c = grid.ravel()[rows_flat].astype(np.int32)
        block_of_row = rows_flat // (per + 1)
        owner_c = b_owner[block_of_row]

        # Untrimmed segment offsets (the onto-rate fix-ups below need each
        # block's row position inside its owner's segment).
        counts = np.bincount(owner_c, minlength=n)
        ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        block_start = np.cumsum(block_len) - block_len
        block_pos_in_seg = block_start - ptr[b_owner]
        if max_candidates:
            position = np.arange(len(owner_c)) - ptr[owner_c]
            trim = position < max_candidates
            owner_c = owner_c[trim]
            host_c = host_c[trim]
            block_of_row = block_of_row[trim]
            counts = np.bincount(owner_c, minlength=n)
            ptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=ptr[1:])
        if len(owner_c) == 0:
            return empty

        # Lemma 3 deltas without expanding candidates × peers: the post-
        # move sum decomposes over the level hierarchy,
        #   Σ_p λ_p·w[l(x, p)] = w3·R_total + (w2−w3)·R_pod(pod_x)
        #                      + (w1−w2)·R_rack(rack_x) + (w0−w1)·R_host(x),
        # where R_* are the owner's peer-rate aggregates per pod/rack/host.
        # Every host of a block shares its pod and rack, so the first
        # three terms are computed once per *block* (chunked dense scatter
        # maps bound memory) and broadcast to rows; the R_host term is
        # zero except on peer-hosting servers, patched per (owner, peer
        # host) below with the identical left-to-right float chain.
        n_pairs = len(owner_c)
        pw = self._path_weight
        w3 = pw[3] if len(pw) > 3 else pw[-1]
        w2d, w1d, w0d = pw[2] - w3, pw[1] - pw[2], pw[0] - pw[1]
        peer_pod = self._pod_of[peer_host]
        base = np.empty(m)
        chunk = max(1, _CANDIDATE_CHUNK_ELEMS // max(1, n_racks))
        for o_lo in range(0, n, chunk):
            o_hi = min(n, o_lo + chunk)
            width = o_hi - o_lo
            e_lo, e_hi = cum[o_lo], cum[o_hi]
            local_owner = owner_e[e_lo:e_hi] - o_lo
            e_rate = rate[e_lo:e_hi]
            r_rack = np.bincount(
                local_owner * n_racks + rack_e[e_lo:e_hi],
                weights=e_rate,
                minlength=width * n_racks,
            )
            r_pod = np.bincount(
                local_owner * n_pods + peer_pod[e_lo:e_hi],
                weights=e_rate,
                minlength=width * n_pods,
            )
            b_lo, b_hi = np.searchsorted(b_owner, [o_lo, o_hi])
            bo = b_owner[b_lo:b_hi]
            lo_local = bo - o_lo
            b_rack = rack_e[leaders[b_lo:b_hi]]
            b_pod = self._pod_of[b_rack_base[b_lo:b_hi]]
            base[b_lo:b_hi] = (
                w3 * total_rate[bo]
                + w2d * r_pod[lo_local * n_pods + b_pod]
                + w1d * r_rack[lo_local * n_racks + b_rack]
            )
        delta = local_cost[owner_c] - base[block_of_row]
        onto = np.zeros(n_pairs)

        # (owner, peer host) fix-ups: locate each peer-hosting row inside
        # its block arithmetically, sum co-hosted peers' rates with the
        # same sorted-key reduction as before, and rewrite those rows with
        # the full four-term chain so values stay bit-compatible with the
        # row-expanded formula.
        hkey = owner_e * np.int64(n_hosts) + peer_host
        horder = np.argsort(hkey, kind="stable")
        hk = hkey[horder]
        hfirst = np.ones(len(hk), dtype=bool)
        hfirst[1:] = hk[1:] != hk[:-1]
        hsums = np.add.reduceat(rate[horder], np.flatnonzero(hfirst))
        rep = horder[hfirst]  # earliest-rank edge per (owner, host)
        rb = block_of_edge[rep]
        ph = peer_host[rep]
        base_rack = b_rack_base[rb]
        bph = b_phost[rb]
        bsrc = b_src[rb]
        hf = has_front[rb]
        is_front = ph == bph
        pos = (
            hf.astype(np.int64)
            + (ph - base_rack)
            - (bph < ph)
            - (src_in_rack[rb] & (bsrc < ph) & (bsrc != bph))
        )
        pos[is_front] = 0
        valid = ph != bsrc  # rows on the owner's source host don't exist
        row_pos = block_pos_in_seg[rb] + pos
        if max_candidates:
            valid &= row_pos < max_candidates
        target_rows = ptr[owner_e[rep]] + row_pos
        target_rows = target_rows[valid]
        onto_v = hsums[valid]
        onto[target_rows] = onto_v
        delta[target_rows] = local_cost[owner_e[rep][valid]] - (
            base[rb[valid]] + w0d * onto_v
        )
        return CandidateBatch(
            vms=vms,
            source=source,
            degree=deg,
            total_rate=total_rate,
            ptr=ptr,
            owner=owner_c,
            host=host_c,
            delta=delta,
            onto_rate=onto,
        )

    def candidate_feasible(
        self,
        batch: CandidateBatch,
        bandwidth_threshold: Optional[float] = None,
    ) -> np.ndarray:
        """Capacity (§V-B5) + bandwidth (§V-C) mask over a batch's pairs.

        Evaluated against the engine's *current* incremental mirrors, so
        the same batch can be re-masked wave after wave; uses the exact
        float expressions of ``Allocation.can_host`` and
        :meth:`bandwidth_feasible_many`.
        """
        hosts = batch.host
        if self._uniform_vm:
            host_ok = (
                (self._slot_cap - self._slot_used >= 1)
                & (self._ram_cap - self._ram_used >= self._vm_ram[0])
                & (self._cpu_cap - self._cpu_used >= self._vm_cpu[0])
            )
            ok = host_ok[hosts]
        else:
            dense = batch.vms[batch.owner]
            ok = (
                (self._slot_cap[hosts] - self._slot_used[hosts] >= 1)
                & (self._ram_cap[hosts] - self._ram_used[hosts] >= self._vm_ram[dense])
                & (self._cpu_cap[hosts] - self._cpu_used[hosts] >= self._vm_cpu[dense])
            )
        if bandwidth_threshold is not None:
            budget = bandwidth_threshold * self._nic_cap[hosts]
            load_after = self._egress[hosts] + (
                batch.total_rate[batch.owner] - batch.onto_rate
            ) - batch.onto_rate
            ok &= load_after <= budget
        return ok

    def uniform_host_ok(
        self, hosts: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        """Per-host capacity feasibility when every VM is identical.

        With a uniform VM population, slot/RAM/CPU feasibility of *any*
        move collapses to one boolean per host; the cached round loop
        maintains this vector incrementally (only a wave's source/target
        hosts can flip) instead of re-masking every candidate row per
        wave.  Returns ``None`` when the population is not uniform (or
        empty) — callers must then fall back to per-row probing.  Pass
        ``hosts`` to evaluate a subset only.
        """
        if not self._uniform_vm:
            return None
        if hosts is None:
            slot_cap, ram_cap = self._slot_cap, self._ram_cap
            cpu_cap = self._cpu_cap
            slot_used, ram_used, cpu_used = (
                self._slot_used,
                self._ram_used,
                self._cpu_used,
            )
        else:
            hosts = np.asarray(hosts, dtype=np.int64)
            slot_cap, ram_cap = self._slot_cap[hosts], self._ram_cap[hosts]
            cpu_cap = self._cpu_cap[hosts]
            slot_used, ram_used, cpu_used = (
                self._slot_used[hosts],
                self._ram_used[hosts],
                self._cpu_used[hosts],
            )
        return (
            (slot_cap - slot_used >= 1)
            & (ram_cap - ram_used >= self._vm_ram[0])
            & (cpu_cap - cpu_used >= self._vm_cpu[0])
        )

    def candidate_feasible_rows(
        self,
        batch: CandidateBatch,
        rows: np.ndarray,
        row_owner: np.ndarray,
        bandwidth_threshold: Optional[float] = None,
    ) -> np.ndarray:
        """:meth:`candidate_feasible` restricted to a row subset.

        ``row_owner`` holds each row's owner position in the batch (the
        callers' segment expansions carry it along).  Exactly the same
        float expressions as the full mask, so a partial re-probe agrees
        with a full one row for row.
        """
        hosts = batch.host[rows]
        if self._uniform_vm:
            ok = (
                (self._slot_cap[hosts] - self._slot_used[hosts] >= 1)
                & (self._ram_cap[hosts] - self._ram_used[hosts] >= self._vm_ram[0])
                & (self._cpu_cap[hosts] - self._cpu_used[hosts] >= self._vm_cpu[0])
            )
        else:
            dense = batch.vms[row_owner]
            ok = (
                (self._slot_cap[hosts] - self._slot_used[hosts] >= 1)
                & (self._ram_cap[hosts] - self._ram_used[hosts] >= self._vm_ram[dense])
                & (self._cpu_cap[hosts] - self._cpu_used[hosts] >= self._vm_cpu[dense])
            )
        if bandwidth_threshold is not None:
            budget = bandwidth_threshold * self._nic_cap[hosts]
            onto = batch.onto_rate[rows]
            load_after = (
                self._egress[hosts]
                + (batch.total_rate[row_owner] - onto)
                - onto
            )
            ok &= load_after <= budget
        return ok

    def set_host_capacity(
        self,
        host: int,
        max_vms: Optional[int] = None,
        nic_bps: Optional[float] = None,
        ram_mb: Optional[int] = None,
        cpu: Optional[float] = None,
    ) -> None:
        """Resize one host's capacity in place — no engine rebuild.

        Patches the cluster's servers and shared capacity arrays (the
        engine's ``_slot_cap``/``_nic_cap`` mirrors alias them, so every
        feasibility probe sees the new values immediately); parameters
        left ``None`` keep their current value.  Rejects a resize below
        the host's *current* usage — drain the host first
        (:meth:`SCOREScheduler.drain_hosts`).  Scored Lemma 3 rows never
        reference capacity, so the round cache stays valid; feasibility
        is re-probed from the patched mirrors at the next round.
        """
        host = int(host)
        current = self._allocation.cluster.server(host).capacity
        new_slots = current.max_vms if max_vms is None else int(max_vms)
        new_nic = current.nic_bps if nic_bps is None else float(nic_bps)
        new_ram = current.ram_mb if ram_mb is None else int(ram_mb)
        new_cpu = current.cpu if cpu is None else float(cpu)
        if new_slots < int(self._slot_used[host]):
            raise ValueError(
                f"host {host} runs {int(self._slot_used[host])} VMs; "
                f"cannot shrink to {new_slots} slots (drain it first)"
            )
        if new_ram < int(self._ram_used[host]) or new_cpu < float(
            self._cpu_used[host]
        ):
            raise ValueError(
                f"host {host} usage exceeds the requested RAM/CPU capacity "
                f"(drain it first)"
            )
        from repro.cluster.server import ServerCapacity

        self._allocation.cluster.set_host_capacity(
            host,
            ServerCapacity(
                max_vms=new_slots, ram_mb=new_ram, cpu=new_cpu, nic_bps=new_nic
            ),
        )

    def best_candidates(
        self,
        batch: CandidateBatch,
        feasible: np.ndarray,
        return_ties: bool = False,
    ):
        """Per-owner best feasible candidate, first-in-probing-order ties.

        Returns ``(choice, best_delta, any_feasible)``: ``choice[i]`` is a
        row index into the batch's pair arrays (or -1 when owner ``i`` has
        no feasible candidate), ``best_delta[i]`` the winning Lemma 3 delta
        (``-inf`` when none).  Mirrors the naive loop's tie-breaking: the
        first candidate in probing order achieving the maximum wins.

        With ``return_ties`` a fourth element is appended: the row indices
        of every feasible candidate whose delta exactly equals its owner's
        best (in row order) — the exact-tie alternatives the wave planner
        may retarget to.
        """
        n = batch.n_owners
        choice = np.full(n, -1, dtype=np.int64)
        best = np.full(n, -np.inf)
        any_feasible = np.zeros(n, dtype=bool)
        ties = np.empty(0, dtype=np.int64)
        if batch.n_pairs == 0 or not np.any(batch.ptr[1:] > batch.ptr[:-1]):
            return (
                (choice, best, any_feasible, ties)
                if return_ties
                else (choice, best, any_feasible)
            )
        masked = np.where(feasible, batch.delta, -np.inf)
        starts = batch.ptr[:-1]
        nonempty = batch.ptr[1:] > starts
        ne_starts = starts[nonempty]
        seg_max = np.maximum.reduceat(masked, ne_starts)
        seg_len = (batch.ptr[1:] - starts)[nonempty]
        # Exactly-best feasible rows; their first-per-owner row IS the
        # naive first-max choice, and an owner has a tie iff it has any
        # feasible candidate at all.
        hit = feasible & (masked == np.repeat(seg_max, seg_len))
        ties = np.nonzero(hit)[0]
        tie_owner = batch.owner[ties]
        first = np.ones(len(ties), dtype=bool)
        first[1:] = tie_owner[1:] != tie_owner[:-1]
        choice[tie_owner[first]] = ties[first]
        any_feasible[tie_owner[first]] = True
        best[nonempty] = seg_max
        if return_ties:
            return choice, best, any_feasible, ties
        return choice, best, any_feasible

    def exact_deltas(
        self, dense_vms: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Per-peer Lemma 3 deltas of the given moves (read-only).

        The candidate batch scores with the aggregated level-hierarchy
        formula, which can differ from the naive per-peer sum in the last
        ulp; Theorem 1's strict inequality is decided on THIS value (the
        same sum :meth:`apply_moves` applies), so a move whose true delta
        is exactly zero can never slip through on rounding noise.
        """
        snap = self._snap
        movers = np.asarray(dense_vms, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        deg = (snap.ptr[movers + 1] - snap.ptr[movers]).astype(np.int64)
        total_e = int(deg.sum())
        if total_e == 0:
            return np.zeros(len(movers))
        cum = np.zeros(len(movers) + 1, dtype=np.int64)
        np.cumsum(deg, out=cum[1:])
        owner = np.repeat(np.arange(len(movers), dtype=np.int64), deg)
        edge_idx = np.repeat(snap.ptr[movers] - cum[:-1], deg) + np.arange(
            total_e
        )
        peer_host = self._host_of[snap.peer[edge_idx]]
        sources = self._host_of[movers]
        before = pair_levels(
            sources[owner], peer_host, self._rack_of, self._pod_of
        )
        after = pair_levels(
            targets[owner], peer_host, self._rack_of, self._pod_of
        )
        contrib = snap.rate[edge_idx] * (
            self._path_weight[before] - self._path_weight[after]
        )
        return np.bincount(owner, weights=contrib, minlength=len(movers))

    def apply_moves(
        self, dense_vms: np.ndarray, targets: np.ndarray
    ) -> Tuple[np.ndarray, TouchedSet]:
        """Batched cache update for one interference-free wave of moves.

        Requires the wave contract of :func:`repro.core.migration.plan_wave`
        — pairwise-disjoint source/target hosts and no mover being another
        mover's communication peer — under which every move's Lemma 3
        terms are independent and the wave equals applying the moves one
        by one in any order.  Returns ``(deltas, touched)``: the per-move
        applied deltas plus the wave's :class:`TouchedSet` (hosts whose
        slots/egress changed, owners whose scored rows went stale); the
        engine's round cache is invalidated with the same set before
        returning.  The bound allocation must be updated separately
        (callers use ``Allocation.migrate_many``).
        """
        snap = self._snap
        movers = np.asarray(dense_vms, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        n_moves = len(movers)
        sources = self._host_of[movers].copy()
        deg = (snap.ptr[movers + 1] - snap.ptr[movers]).astype(np.int64)
        deltas = np.zeros(n_moves)
        total_e = int(deg.sum())
        if total_e:
            cum = np.zeros(n_moves + 1, dtype=np.int64)
            np.cumsum(deg, out=cum[1:])
            owner = np.repeat(np.arange(n_moves, dtype=np.int64), deg)
            edge_idx = np.repeat(snap.ptr[movers] - cum[:-1], deg) + np.arange(
                total_e
            )
            peers = snap.peer[edge_idx]
            rates = snap.rate[edge_idx]
            peer_host = self._host_of[peers]
            before = pair_levels(
                sources[owner], peer_host, self._rack_of, self._pod_of
            )
            after = pair_levels(
                targets[owner], peer_host, self._rack_of, self._pod_of
            )
            contrib = rates * (
                self._path_weight[before] - self._path_weight[after]
            )
            deltas = np.bincount(owner, weights=contrib, minlength=n_moves)
            # A non-moving VM may be the peer of several movers, so peer
            # cost updates accumulate (bincount), never overwrite.  A
            # small wave touches few peers; scatter into the unique set
            # instead of materialising an n_vms-length bincount (the two
            # are bit-identical: per-peer sums accumulate in the same
            # element order, applied as one subtraction either way).
            if total_e * 8 < snap.n_vms:
                uniq_peers, inverse = np.unique(peers, return_inverse=True)
                self._vm_cost[uniq_peers] -= np.bincount(
                    inverse, weights=contrib, minlength=len(uniq_peers)
                )
            else:
                self._vm_cost -= np.bincount(
                    peers, weights=contrib, minlength=snap.n_vms
                )
            self._vm_cost[movers] -= deltas
            self._total -= float(deltas.sum())
            # Egress (§V-C): disjoint sources/targets make the per-host
            # adjustments independent, so indexed writes are safe.
            colocated_src = np.bincount(
                owner, weights=rates * (before == 0), minlength=n_moves
            )
            colocated_tgt = np.bincount(
                owner, weights=rates * (after == 0), minlength=n_moves
            )
            move_rate = np.bincount(owner, weights=rates, minlength=n_moves)
            self._egress[sources] += colocated_src - (move_rate - colocated_src)
            self._egress[targets] += (move_rate - colocated_tgt) - colocated_tgt
        self._host_of[movers] = targets
        self._slot_used[sources] -= 1
        self._slot_used[targets] += 1
        self._ram_used[sources] -= self._vm_ram[movers]
        self._ram_used[targets] += self._vm_ram[movers]
        self._cpu_used[sources] -= self._vm_cpu[movers]
        self._cpu_used[targets] += self._vm_cpu[movers]
        touched = TouchedSet(
            hosts=np.unique(np.concatenate((sources, targets))),
            owners=self._movers_footprint(movers),
        )
        if n_moves:
            self._invalidate_owners(touched.owners)
            # Paired with the caller's single Allocation.migrate_many bump.
            self._advance_sync(allocation=True)
        return deltas, touched

    def apply_migration(self, vm_u: int, target_host: int) -> float:
        """Update every cache for ``vm_u`` moving to ``target_host``.

        O(peers of u): the per-VM cost cache of u and of each of its peers,
        the network-wide total and the capacity mirrors are all adjusted
        from the Lemma 3 terms.  Returns the applied delta (positive =
        reduction).  The bound allocation must be migrated separately
        (callers do ``allocation.migrate(...)`` first).
        """
        dense = self._dense(vm_u)
        source = int(self._host_of[dense])
        target = int(target_host)
        if source == target:
            return 0.0
        peers, rates = self._snap.peers_slice(dense)
        delta = 0.0
        if peers.size:
            peer_hosts = self._host_of[peers]
            before = pair_levels(
                np.full(peers.shape, source, dtype=np.int64),
                peer_hosts,
                self._rack_of,
                self._pod_of,
            )
            after = pair_levels(
                np.full(peers.shape, target, dtype=np.int64),
                peer_hosts,
                self._rack_of,
                self._pod_of,
            )
            contrib = rates * (
                self._path_weight[before] - self._path_weight[after]
            )
            delta = float(contrib.sum())
            self._vm_cost[peers] -= contrib
            self._vm_cost[dense] -= delta
            self._total -= delta
            # Egress (§V-C): u's flows leave the source NIC and land on the
            # target's; peers co-located with either endpoint flip between
            # intra-host and NIC-crossing on their own host.
            colocated_source = rates[before == 0].sum()
            colocated_target = rates[after == 0].sum()
            total_rate = rates.sum()
            self._egress[source] += colocated_source - (
                total_rate - colocated_source
            )
            self._egress[target] += (total_rate - colocated_target) - (
                colocated_target
            )
        self._host_of[dense] = target
        self._slot_used[source] -= 1
        self._slot_used[target] += 1
        self._ram_used[source] -= self._vm_ram[dense]
        self._ram_used[target] += self._vm_ram[dense]
        self._cpu_used[source] -= self._vm_cpu[dense]
        self._cpu_used[target] += self._vm_cpu[dense]
        self._invalidate_owners(
            self._movers_footprint(np.array([dense], dtype=np.int64))
        )
        # Paired with the caller's single Allocation.migrate bump.
        self._advance_sync(allocation=True)
        return delta

    # -- internals ----------------------------------------------------------

    def _dense(self, vm_u: int) -> int:
        try:
            return self._snap.vm_index[vm_u]
        except KeyError:
            raise KeyError(
                f"VM {vm_u} is not in the engine's snapshot; call rebuild()"
            ) from None

    def __repr__(self) -> str:
        return (
            f"FastCostEngine(vms={self._snap.n_vms}, "
            f"pairs={self._snap.n_pairs}, hosts={len(self._slot_cap)})"
        )


def engine_from_cost_model(
    cost_model: CostModel, allocation: Allocation, traffic: TrafficMatrix
) -> FastCostEngine:
    """Build an engine sharing a naive model's topology and weights."""
    if cost_model.topology is not allocation.topology:
        raise ValueError(
            "cost model and allocation disagree on the topology instance"
        )
    return FastCostEngine(allocation, traffic, weights=cost_model.weights)
