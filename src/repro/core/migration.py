"""Migration decision logic: Theorem 1 plus target search (§V-B5, §V-C).

When a VM holds the token, its hypervisor:

1. ranks the VM's communication peers from highest to lowest communication
   level (heaviest rate first within a level) — these peers' servers, and
   the other servers in their racks, are the candidate targets;
2. "probes" each candidate for capacity (free VM slot + RAM, §V-B5) and for
   the operator's link-load threshold (§V-C);
3. computes the Lemma 3 cost delta for each feasible candidate and migrates
   to the best one iff the delta exceeds the migration cost ``cm``
   (Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel
from repro.core.fastcost import FastCostEngine
from repro.traffic.matrix import TrafficMatrix
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class MigrationDecision:
    """Outcome of one token-hold decision.

    ``delta`` is the network-wide cost reduction of the chosen (or best
    rejected) move; ``migrated`` records whether the move was performed;
    ``reason`` explains why not, when it wasn't.
    """

    vm_id: int
    source_host: int
    target_host: Optional[int]
    delta: float
    migrated: bool
    reason: str

    @property
    def improved(self) -> bool:
        """Whether this decision reduced the network-wide cost."""
        return self.migrated and self.delta > 0


class MigrationEngine:
    """Evaluates and (optionally) executes S-CORE migrations."""

    def __init__(
        self,
        cost_model: CostModel,
        migration_cost: float = 0.0,
        bandwidth_threshold: Optional[float] = None,
        max_candidates: Optional[int] = None,
    ) -> None:
        """
        Parameters
        ----------
        cost_model:
            The communication-cost model (topology + link weights).
        migration_cost:
            The paper's ``cm``: a move happens only when the cost reduction
            strictly exceeds it.  The paper sets 0 for the GA comparison and
            sweeps other values.
        bandwidth_threshold:
            Optional fraction of a target server's NIC capacity that its
            post-migration egress load may not exceed (§V-C); ``None``
            disables the check.
        max_candidates:
            Optional cap on the number of candidate servers probed per
            decision (bounds per-token-hold work on dense VMs).
        """
        check_non_negative("migration_cost", migration_cost)
        if bandwidth_threshold is not None and not 0 < bandwidth_threshold <= 1:
            raise ValueError(
                f"bandwidth_threshold must be in (0, 1], got {bandwidth_threshold}"
            )
        if max_candidates is not None and max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
        self._cost_model = cost_model
        self._migration_cost = migration_cost
        self._bandwidth_threshold = bandwidth_threshold
        self._max_candidates = max_candidates
        self._fastcost: Optional[FastCostEngine] = None

    @property
    def cost_model(self) -> CostModel:
        """The cost model used for deltas."""
        return self._cost_model

    @property
    def migration_cost(self) -> float:
        """The migration (overhead) cost ``cm``."""
        return self._migration_cost

    @property
    def fastcost(self) -> Optional[FastCostEngine]:
        """The attached vectorized engine, if any."""
        return self._fastcost

    def attach_fastcost(self, engine: Optional[FastCostEngine]) -> None:
        """Attach (or detach, with ``None``) a vectorized cost engine.

        When the engine is bound to the (allocation, traffic) pair a call
        operates on, :meth:`evaluate` scores all feasible candidates in one
        vectorized pass and :meth:`decide_and_migrate` keeps the engine's
        incremental caches in sync; other calls fall back to the naive
        per-pair path.
        """
        if engine is not None and engine.topology is not self._cost_model.topology:
            raise ValueError(
                "fast engine and cost model disagree on the topology instance"
            )
        self._fastcost = engine

    # -- candidate generation ----------------------------------------------------

    def candidate_hosts(
        self, allocation: Allocation, traffic: TrafficMatrix, vm_u: int
    ) -> List[int]:
        """Candidate target servers for VM u, in probing order.

        Peers are ranked highest communication level first (heaviest traffic
        first within a level, §V-B5); each contributes its own server first,
        then the remaining servers of its rack (same level-1 benefit when
        the peer's server itself is full).
        """
        source = allocation.server_of(vm_u)
        topo = self._cost_model.topology
        peer_rates = traffic.peer_rates(vm_u)
        ranked = sorted(
            peer_rates.items(),
            key=lambda item: (
                -topo.level_between(source, allocation.server_of(item[0])),
                -item[1],
                item[0],
            ),
        )
        seen = {source}
        candidates: List[int] = []
        for peer, _rate in ranked:
            peer_host = allocation.server_of(peer)
            if peer_host not in seen:
                seen.add(peer_host)
                candidates.append(peer_host)
            for host in topo.hosts_in_rack(topo.rack_of(peer_host)):
                if host not in seen:
                    seen.add(host)
                    candidates.append(host)
            if self._max_candidates and len(candidates) >= self._max_candidates:
                return candidates[: self._max_candidates]
        return candidates

    # -- feasibility ----------------------------------------------------------------

    def host_egress_rate(
        self, allocation: Allocation, traffic: TrafficMatrix, host: int
    ) -> float:
        """Aggregate rate crossing ``host``'s NIC (bytes/second).

        Sums λ between each VM on the host and each of its peers placed
        elsewhere; intra-host traffic never touches the NIC.
        """
        total = 0.0
        for vm_id in allocation.vms_on(host):
            for peer, rate in traffic.peer_rates(vm_id).items():
                if allocation.server_of(peer) != host:
                    total += rate
        return total

    def bandwidth_feasible(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        vm_u: int,
        target_host: int,
    ) -> bool:
        """§V-C check: target NIC load after the move stays under threshold."""
        if self._bandwidth_threshold is None:
            return True
        capacity = allocation.cluster.server(target_host).capacity.nic_bps
        budget = self._bandwidth_threshold * capacity
        load = self.host_egress_rate(allocation, traffic, target_host)
        # After the move, u's flows to VMs already on the target become
        # intra-host (drop off the NIC); the rest are added to it.
        incoming = 0.0
        for peer, rate in traffic.peer_rates(vm_u).items():
            if allocation.server_of(peer) == target_host:
                load -= rate
            else:
                incoming += rate
        return load + incoming <= budget

    def feasible(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        vm_u: int,
        target_host: int,
    ) -> bool:
        """Capacity (§V-B5) plus bandwidth (§V-C) feasibility of a move."""
        vm = allocation.vm(vm_u)
        if not allocation.can_host(target_host, vm):
            return False
        return self.bandwidth_feasible(allocation, traffic, vm_u, target_host)

    # -- decision -----------------------------------------------------------------------

    def evaluate(
        self, allocation: Allocation, traffic: TrafficMatrix, vm_u: int
    ) -> MigrationDecision:
        """Pick the best feasible target for VM u (no mutation).

        Returns a decision with ``migrated=False``; ``target_host`` is the
        chosen target when the Theorem 1 condition is met, else ``None``.
        """
        fast = self._fastcost
        if fast is not None and fast.is_bound_to(allocation, traffic):
            decision = self._evaluate_fast(fast, allocation, traffic, vm_u)
            if decision is not None:
                return decision
        source = allocation.server_of(vm_u)
        if not traffic.peers_of(vm_u):
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=None,
                delta=0.0,
                migrated=False,
                reason="no_peers",
            )
        best_host: Optional[int] = None
        best_delta = 0.0
        saw_candidate = False
        for host in self.candidate_hosts(allocation, traffic, vm_u):
            if not self.feasible(allocation, traffic, vm_u, host):
                continue
            saw_candidate = True
            delta = self._cost_model.migration_delta(
                allocation, traffic, vm_u, host
            )
            if delta > best_delta:
                best_delta = delta
                best_host = host
        if best_host is not None and best_delta > self._migration_cost:
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=best_host,
                delta=best_delta,
                migrated=False,
                reason="beneficial",
            )
        reason = "no_gain" if saw_candidate else "no_feasible_target"
        return MigrationDecision(
            vm_id=vm_u,
            source_host=source,
            target_host=None,
            delta=best_delta,
            migrated=False,
            reason=reason,
        )

    def _evaluate_fast(
        self,
        fast: "FastCostEngine",
        allocation: Allocation,
        traffic: TrafficMatrix,
        vm_u: int,
    ) -> Optional[MigrationDecision]:
        """Vectorized evaluate: one batched Lemma 3 pass over candidates.

        Mirrors the naive loop decision-for-decision (same candidate order,
        same first-best tie-breaking).  Returns ``None`` to request the
        naive fallback when the chosen target fails the allocation's own
        capacity check (a float-accounting edge the mirrors cannot rule
        out).
        """
        source = fast.host_of(vm_u)
        if fast.degree(vm_u) == 0:
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=None,
                delta=0.0,
                migrated=False,
                reason="no_peers",
            )
        candidates = fast.candidate_hosts(vm_u, self._max_candidates)
        vm = allocation.vm(vm_u)
        mask = fast.can_host_many(candidates, vm)
        if self._bandwidth_threshold is not None:
            # §V-C from the engine's incremental per-host egress mirror —
            # one vectorized pass instead of a naive per-candidate walk.
            mask &= fast.bandwidth_feasible_many(
                vm_u, candidates, self._bandwidth_threshold
            )
        feasible = candidates[mask]
        if feasible.size == 0:
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=None,
                delta=0.0,
                migrated=False,
                reason="no_feasible_target",
            )
        deltas = fast.migration_deltas(vm_u, feasible)
        best_idx = int(np.argmax(deltas))
        best_delta = float(deltas[best_idx])
        if best_delta > 0 and best_delta > self._migration_cost:
            best_host = int(feasible[best_idx])
            if not allocation.can_host(best_host, vm):
                return None  # mirror drift; let the naive path decide
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=best_host,
                delta=best_delta,
                migrated=False,
                reason="beneficial",
            )
        return MigrationDecision(
            vm_id=vm_u,
            source_host=source,
            target_host=None,
            delta=max(0.0, best_delta),
            migrated=False,
            reason="no_gain",
        )

    def decide_and_migrate(
        self, allocation: Allocation, traffic: TrafficMatrix, vm_u: int
    ) -> MigrationDecision:
        """Evaluate VM u and perform the migration when Theorem 1 holds."""
        decision = self.evaluate(allocation, traffic, vm_u)
        if decision.target_host is None:
            return decision
        allocation.migrate(vm_u, decision.target_host)
        fast = self._fastcost
        if fast is not None and fast.is_bound_to(allocation, traffic):
            fast.apply_migration(vm_u, decision.target_host)
        return MigrationDecision(
            vm_id=decision.vm_id,
            source_host=decision.source_host,
            target_host=decision.target_host,
            delta=decision.delta,
            migrated=True,
            reason="migrated",
        )
