"""Migration decision logic: Theorem 1 plus target search (§V-B5, §V-C).

When a VM holds the token, its hypervisor:

1. ranks the VM's communication peers from highest to lowest communication
   level (heaviest rate first within a level) — these peers' servers, and
   the other servers in their racks, are the candidate targets;
2. "probes" each candidate for capacity (free VM slot + RAM, §V-B5) and for
   the operator's link-load threshold (§V-C);
3. computes the Lemma 3 cost delta for each feasible candidate and migrates
   to the best one iff the delta exceeds the migration cost ``cm``
   (Theorem 1).
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel
from repro.core.fastcost import CandidateBatch, FastCostEngine
from repro.traffic.matrix import TrafficMatrix
from repro.util.validation import check_non_negative


def plan_wave_reference(
    sources: Sequence[int],
    targets: Sequence[int],
    peers: Sequence[Sequence[int]],
    vms: Sequence[int],
) -> List[bool]:
    """Greedy interference-free wave selection, as a readable loop.

    Scans proposed migrations in order and accepts each one whose source
    host, target host and VM are untouched by every previously accepted
    move — where "touched" means sharing a source/target host with it or
    being one of its communication peers.  The vectorized
    :func:`plan_wave` must select exactly this set (pinned by the wave
    test suite).
    """
    used_hosts: set = set()
    blocked_vms: set = set()
    accepted: List[bool] = []
    for vm, src, tgt, vm_peers in zip(vms, sources, targets, peers):
        if vm in blocked_vms or src in used_hosts or tgt in used_hosts:
            accepted.append(False)
            continue
        accepted.append(True)
        used_hosts.add(src)
        used_hosts.add(tgt)
        blocked_vms.update(vm_peers)
    return accepted


def plan_wave(
    sources: np.ndarray,
    targets: np.ndarray,
    mover_vms: np.ndarray,
    peer_ptr: np.ndarray,
    peer_flat: np.ndarray,
    n_hosts: int,
    n_vms: int,
) -> np.ndarray:
    """Vectorized greedy wave selection over proposed migrations.

    Inputs are per-proposal arrays in visit order (``mover_vms`` holds
    *dense* VM indices; ``peer_ptr``/``peer_flat`` a CSR view of each
    mover's peers, also dense).  Returns the boolean acceptance mask of
    :func:`plan_wave_reference`: a maximal in-order subset in which no two
    accepted moves share a source host, a target host, or a communication
    peer relation.  The peer relation must be *symmetric* (undirected
    traffic, as in :class:`repro.traffic.matrix.TrafficMatrix`) — the
    round-based implementation checks it from the later mover's side and
    equals the reference only under that symmetry.

    Works in rounds: every proposal that is the *earliest* claimant of
    both its hosts among the still-eligible proposals is host-safe (any
    conflicting proposal has a larger index), so only the peer rule needs
    the short sequential sweep over that round's winners.
    """
    n = len(sources)
    accepted = np.zeros(n, dtype=bool)
    if n == 0:
        return accepted
    alive = np.ones(n, dtype=bool)
    host_used = np.zeros(n_hosts, dtype=bool)
    vm_blocked = np.zeros(n_vms, dtype=bool)
    index = np.arange(n)
    while True:
        eligible = (
            alive
            & ~host_used[sources]
            & ~host_used[targets]
            & ~vm_blocked[mover_vms]
        )
        rows = index[eligible]
        if rows.size == 0:
            break
        first_claim = np.full(n_hosts, n, dtype=np.int64)
        np.minimum.at(first_claim, sources[rows], rows)
        np.minimum.at(first_claim, targets[rows], rows)
        winners = rows[
            (first_claim[sources[rows]] == rows)
            & (first_claim[targets[rows]] == rows)
        ]
        progressed = False
        for i in winners:
            vm = mover_vms[i]
            if vm_blocked[vm]:
                continue
            accepted[i] = True
            alive[i] = False
            host_used[sources[i]] = True
            host_used[targets[i]] = True
            vm_blocked[peer_flat[peer_ptr[i] : peer_ptr[i + 1]]] = True
            progressed = True
        if not progressed:
            break
    return accepted


class MigrationDecision(NamedTuple):
    """Outcome of one token-hold decision.

    ``delta`` is the network-wide cost reduction of the chosen (or best
    rejected) move; ``migrated`` records whether the move was performed;
    ``reason`` explains why not, when it wasn't.  A ``NamedTuple`` rather
    than a dataclass: token rounds mint one decision per hold (tens of
    thousands per paper-scale iteration), and tuple construction is ~2.5×
    cheaper than a frozen dataclass while staying immutable and
    field-compatible.
    """

    vm_id: int
    source_host: int
    target_host: Optional[int]
    delta: float
    migrated: bool
    reason: str

    @property
    def improved(self) -> bool:
        """Whether this decision reduced the network-wide cost."""
        return self.migrated and self.delta > 0


class MigrationEngine:
    """Evaluates and (optionally) executes S-CORE migrations."""

    def __init__(
        self,
        cost_model: CostModel,
        migration_cost: float = 0.0,
        bandwidth_threshold: Optional[float] = None,
        max_candidates: Optional[int] = None,
    ) -> None:
        """
        Parameters
        ----------
        cost_model:
            The communication-cost model (topology + link weights).
        migration_cost:
            The paper's ``cm``: a move happens only when the cost reduction
            strictly exceeds it.  The paper sets 0 for the GA comparison and
            sweeps other values.
        bandwidth_threshold:
            Optional fraction of a target server's NIC capacity that its
            post-migration egress load may not exceed (§V-C); ``None``
            disables the check.
        max_candidates:
            Optional cap on the number of candidate servers probed per
            decision (bounds per-token-hold work on dense VMs).
        """
        check_non_negative("migration_cost", migration_cost)
        if bandwidth_threshold is not None and not 0 < bandwidth_threshold <= 1:
            raise ValueError(
                f"bandwidth_threshold must be in (0, 1], got {bandwidth_threshold}"
            )
        if max_candidates is not None and max_candidates < 1:
            raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
        self._cost_model = cost_model
        self._migration_cost = migration_cost
        self._bandwidth_threshold = bandwidth_threshold
        self._max_candidates = max_candidates
        self._fastcost: Optional[FastCostEngine] = None

    @property
    def cost_model(self) -> CostModel:
        """The cost model used for deltas."""
        return self._cost_model

    @property
    def migration_cost(self) -> float:
        """The migration (overhead) cost ``cm``."""
        return self._migration_cost

    @property
    def bandwidth_threshold(self) -> Optional[float]:
        """The §V-C link-load threshold in force (None = disabled)."""
        return self._bandwidth_threshold

    def set_bandwidth_threshold(self, threshold: Optional[float]) -> None:
        """Change the §V-C link-load budget mid-run (None disables it).

        Models migration-bandwidth contention events: a squeezed budget
        takes effect for every decision made after the call.  Callers
        holding a round-score cache must also drop its carried decisions
        (:meth:`repro.core.fastcost.FastCostEngine
        .invalidate_round_decisions`) — the scheduler-level setter does.
        """
        if threshold is not None and not 0 < threshold <= 1:
            raise ValueError(
                f"bandwidth_threshold must be in (0, 1], got {threshold}"
            )
        self._bandwidth_threshold = threshold

    @property
    def max_candidates(self) -> Optional[int]:
        """Cap on probed candidate servers per decision (None = unlimited)."""
        return self._max_candidates

    @property
    def fastcost(self) -> Optional[FastCostEngine]:
        """The attached vectorized engine, if any."""
        return self._fastcost

    def attach_fastcost(self, engine: Optional[FastCostEngine]) -> None:
        """Attach (or detach, with ``None``) a vectorized cost engine.

        When the engine is bound to the (allocation, traffic) pair a call
        operates on, :meth:`evaluate` scores all feasible candidates in one
        vectorized pass and :meth:`decide_and_migrate` keeps the engine's
        incremental caches in sync; other calls fall back to the naive
        per-pair path.
        """
        if engine is not None and engine.topology is not self._cost_model.topology:
            raise ValueError(
                "fast engine and cost model disagree on the topology instance"
            )
        self._fastcost = engine

    # -- candidate generation ----------------------------------------------------

    def candidate_hosts(
        self, allocation: Allocation, traffic: TrafficMatrix, vm_u: int
    ) -> List[int]:
        """Candidate target servers for VM u, in probing order.

        Peers are ranked highest communication level first (heaviest traffic
        first within a level, §V-B5); each contributes its own server first,
        then the remaining servers of its rack (same level-1 benefit when
        the peer's server itself is full).
        """
        source = allocation.server_of(vm_u)
        topo = self._cost_model.topology
        peer_rates = traffic.peer_rates(vm_u)
        ranked = sorted(
            peer_rates.items(),
            key=lambda item: (
                -topo.level_between(source, allocation.server_of(item[0])),
                -item[1],
                item[0],
            ),
        )
        seen = {source}
        candidates: List[int] = []
        for peer, _rate in ranked:
            peer_host = allocation.server_of(peer)
            if peer_host not in seen:
                seen.add(peer_host)
                candidates.append(peer_host)
            for host in topo.hosts_in_rack(topo.rack_of(peer_host)):
                if host not in seen:
                    seen.add(host)
                    candidates.append(host)
            if self._max_candidates and len(candidates) >= self._max_candidates:
                return candidates[: self._max_candidates]
        return candidates

    # -- feasibility ----------------------------------------------------------------

    def host_egress_rate(
        self, allocation: Allocation, traffic: TrafficMatrix, host: int
    ) -> float:
        """Aggregate rate crossing ``host``'s NIC (bytes/second).

        Sums λ between each VM on the host and each of its peers placed
        elsewhere; intra-host traffic never touches the NIC.
        """
        total = 0.0
        for vm_id in allocation.vms_on(host):
            for peer, rate in traffic.peer_rates(vm_id).items():
                if allocation.server_of(peer) != host:
                    total += rate
        return total

    def bandwidth_feasible(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        vm_u: int,
        target_host: int,
    ) -> bool:
        """§V-C check: target NIC load after the move stays under threshold."""
        if self._bandwidth_threshold is None:
            return True
        capacity = allocation.cluster.server(target_host).capacity.nic_bps
        budget = self._bandwidth_threshold * capacity
        load = self.host_egress_rate(allocation, traffic, target_host)
        # After the move, u's flows to VMs already on the target become
        # intra-host (drop off the NIC); the rest are added to it.
        incoming = 0.0
        for peer, rate in traffic.peer_rates(vm_u).items():
            if allocation.server_of(peer) == target_host:
                load -= rate
            else:
                incoming += rate
        return load + incoming <= budget

    def feasible(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        vm_u: int,
        target_host: int,
    ) -> bool:
        """Capacity (§V-B5) plus bandwidth (§V-C) feasibility of a move."""
        vm = allocation.vm(vm_u)
        if not allocation.can_host(target_host, vm):
            return False
        return self.bandwidth_feasible(allocation, traffic, vm_u, target_host)

    # -- decision -----------------------------------------------------------------------

    def evaluate(
        self, allocation: Allocation, traffic: TrafficMatrix, vm_u: int
    ) -> MigrationDecision:
        """Pick the best feasible target for VM u (no mutation).

        Returns a decision with ``migrated=False``; ``target_host`` is the
        chosen target when the Theorem 1 condition is met, else ``None``.
        """
        fast = self._fastcost
        if fast is not None and fast.is_bound_to(allocation, traffic):
            decision = self._evaluate_fast(fast, allocation, traffic, vm_u)
            if decision is not None:
                return decision
        source = allocation.server_of(vm_u)
        if not traffic.peers_of(vm_u):
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=None,
                delta=0.0,
                migrated=False,
                reason="no_peers",
            )
        best_host: Optional[int] = None
        best_delta = 0.0
        saw_candidate = False
        for host in self.candidate_hosts(allocation, traffic, vm_u):
            if not self.feasible(allocation, traffic, vm_u, host):
                continue
            saw_candidate = True
            delta = self._cost_model.migration_delta(
                allocation, traffic, vm_u, host
            )
            if delta > best_delta:
                best_delta = delta
                best_host = host
        if best_host is not None and best_delta > self._migration_cost:
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=best_host,
                delta=best_delta,
                migrated=False,
                reason="beneficial",
            )
        reason = "no_gain" if saw_candidate else "no_feasible_target"
        return MigrationDecision(
            vm_id=vm_u,
            source_host=source,
            target_host=None,
            delta=best_delta,
            migrated=False,
            reason=reason,
        )

    def _evaluate_fast(
        self,
        fast: "FastCostEngine",
        allocation: Allocation,
        traffic: TrafficMatrix,
        vm_u: int,
    ) -> Optional[MigrationDecision]:
        """Vectorized evaluate: one batched Lemma 3 pass over candidates.

        Mirrors the naive loop decision-for-decision (same candidate order,
        same first-best tie-breaking).  Returns ``None`` to request the
        naive fallback when the chosen target fails the allocation's own
        capacity check (a float-accounting edge the mirrors cannot rule
        out).
        """
        source = fast.host_of(vm_u)
        if fast.degree(vm_u) == 0:
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=None,
                delta=0.0,
                migrated=False,
                reason="no_peers",
            )
        candidates = fast.candidate_hosts(vm_u, self._max_candidates)
        vm = allocation.vm(vm_u)
        mask = fast.can_host_many(candidates, vm)
        if self._bandwidth_threshold is not None:
            # §V-C from the engine's incremental per-host egress mirror —
            # one vectorized pass instead of a naive per-candidate walk.
            mask &= fast.bandwidth_feasible_many(
                vm_u, candidates, self._bandwidth_threshold
            )
        feasible = candidates[mask]
        if feasible.size == 0:
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=None,
                delta=0.0,
                migrated=False,
                reason="no_feasible_target",
            )
        deltas = fast.migration_deltas(vm_u, feasible)
        best_idx = int(np.argmax(deltas))
        best_delta = float(deltas[best_idx])
        if best_delta > 0 and best_delta > self._migration_cost:
            best_host = int(feasible[best_idx])
            if not allocation.can_host(best_host, vm):
                return None  # mirror drift; let the naive path decide
            return MigrationDecision(
                vm_id=vm_u,
                source_host=source,
                target_host=best_host,
                delta=best_delta,
                migrated=False,
                reason="beneficial",
            )
        return MigrationDecision(
            vm_id=vm_u,
            source_host=source,
            target_host=None,
            delta=max(0.0, best_delta),
            migrated=False,
            reason="no_gain",
        )

    # -- batch decisions (wave-batched token rounds) -----------------------------

    def decisions_from_batch(
        self,
        allocation: Allocation,
        batch: CandidateBatch,
        fast: FastCostEngine,
    ) -> List[MigrationDecision]:
        """Turn one scored :class:`CandidateBatch` into per-VM decisions.

        Applies the current feasibility mask, the first-max tie-breaking
        and the Theorem 1 threshold — decision-for-decision the same
        outcome as :meth:`evaluate` on each VM individually against the
        same state (the batch differential suite pins this).
        """
        feasible = fast.candidate_feasible(batch, self._bandwidth_threshold)
        choice, best_delta, _ = fast.best_candidates(batch, feasible)
        # Theorem 1's strict inequality is decided on the exact per-peer
        # delta of each tentative winner (the batch scores with the
        # aggregated level-hierarchy formula, which can differ in the last
        # ulp); the exact value is also what gets reported, mirroring the
        # scalar fast path's `migration_deltas`.
        tentative = (
            (choice >= 0) & (best_delta > 0) & (best_delta > self._migration_cost)
        )
        rows = np.nonzero(tentative)[0]
        exact = np.zeros(batch.n_owners)
        if rows.size:
            exact[rows] = fast.exact_deltas(
                batch.vms[rows], batch.host[choice[rows]]
            )
        decisions: List[MigrationDecision] = []
        for i in range(batch.n_owners):
            vm_id = int(fast.snapshot.vm_ids[batch.vms[i]])
            source = int(batch.source[i])
            if batch.degree[i] == 0:
                decisions.append(
                    MigrationDecision(vm_id, source, None, 0.0, False, "no_peers")
                )
                continue
            row = int(choice[i])
            if row < 0:
                decisions.append(
                    MigrationDecision(
                        vm_id, source, None, 0.0, False, "no_feasible_target"
                    )
                )
                continue
            if tentative[i]:
                delta = float(exact[i])
                if delta > 0 and delta > self._migration_cost:
                    target = int(batch.host[row])
                    if not allocation.can_host(target, allocation.vm(vm_id)):
                        # Mirror drift (same paranoia as the scalar fast
                        # path): defer to the naive per-VM evaluation.
                        decisions.append(
                            self.evaluate(allocation, fast.traffic, vm_id)
                        )
                        continue
                    decisions.append(
                        MigrationDecision(
                            vm_id, source, target, delta, False, "beneficial"
                        )
                    )
                    continue
            decisions.append(
                MigrationDecision(
                    vm_id,
                    source,
                    None,
                    max(0.0, float(exact[i]) if tentative[i] else float(best_delta[i])),
                    False,
                    "no_gain",
                )
            )
        return decisions

    def evaluate_many(
        self, allocation: Allocation, traffic: TrafficMatrix, vm_ids: Sequence[int]
    ) -> List[MigrationDecision]:
        """Batched :meth:`evaluate` over many VMs (no mutation).

        With a bound fast engine, candidate generation, Lemma 3 scoring
        and the §V-B5/§V-C feasibility probes run as one vectorized pass
        over all VM × candidate pairs; otherwise falls back to per-VM
        evaluation.  Decisions come back in input order.
        """
        fast = self._fastcost
        if fast is None or not fast.is_bound_to(allocation, traffic):
            return [self.evaluate(allocation, traffic, v) for v in vm_ids]
        batch = fast.candidate_batch(
            fast.dense_indices(vm_ids), self._max_candidates
        )
        return self.decisions_from_batch(allocation, batch, fast)

    def decide_many(
        self, allocation: Allocation, traffic: TrafficMatrix, vm_ids: Sequence[int]
    ) -> Tuple[List[MigrationDecision], List[int]]:
        """Evaluate a batch, apply one interference-free wave, defer the rest.

        Proposed migrations are partitioned by :func:`plan_wave`: accepted
        moves (pairwise disjoint in source host, target host and peer
        relation) are applied as one batched allocation + cache update;
        conflicting proposals are *deferred* — their VM ids come back in
        the second element, to be re-evaluated against the post-wave state
        (the wave-batched round loop does exactly that).  The first element
        holds final decisions for every settled VM, in input order.
        """
        decisions = self.evaluate_many(allocation, traffic, vm_ids)
        fast = self._fastcost
        use_fast = fast is not None and fast.is_bound_to(allocation, traffic)
        proposals = [
            (i, d) for i, d in enumerate(decisions) if d.target_host is not None
        ]
        if not proposals:
            return decisions, []
        if use_fast:
            dense = fast.dense_indices([d.vm_id for _, d in proposals])
            snap = fast.snapshot
            counts = (snap.ptr[dense + 1] - snap.ptr[dense]).astype(np.int64)
            peer_ptr = np.zeros(len(dense) + 1, dtype=np.int64)
            np.cumsum(counts, out=peer_ptr[1:])
            peer_flat = np.concatenate(
                [snap.peer[snap.ptr[v] : snap.ptr[v + 1]] for v in dense]
            ) if len(dense) else np.empty(0, dtype=np.int64)
            accepted = plan_wave(
                np.array([d.source_host for _, d in proposals], dtype=np.int64),
                np.array([d.target_host for _, d in proposals], dtype=np.int64),
                dense,
                peer_ptr,
                peer_flat,
                n_hosts=allocation.cluster.n_servers,
                n_vms=snap.n_vms,
            )
        else:
            accepted = plan_wave_reference(
                [d.source_host for _, d in proposals],
                [d.target_host for _, d in proposals],
                [sorted(traffic.peers_of(d.vm_id)) for _, d in proposals],
                [d.vm_id for _, d in proposals],
            )
        moves = [
            (d.vm_id, d.target_host)
            for (_, d), ok in zip(proposals, accepted)
            if ok
        ]
        allocation.migrate_many(moves)
        if use_fast and moves:
            # Proposal deltas are already the exact per-peer values
            # (evaluate_many gates Theorem 1 on them), so the wave applies
            # verbatim.
            fast.apply_moves(
                fast.dense_indices([vm for vm, _ in moves]),
                np.array([t for _, t in moves], dtype=np.int64),
            )
        settled: List[MigrationDecision] = []
        deferred: List[int] = []
        wave = dict(moves)
        for decision in decisions:
            if decision.target_host is None:
                settled.append(decision)
            elif decision.vm_id in wave:
                settled.append(
                    MigrationDecision(
                        vm_id=decision.vm_id,
                        source_host=decision.source_host,
                        target_host=decision.target_host,
                        delta=decision.delta,
                        migrated=True,
                        reason="migrated",
                    )
                )
            else:
                deferred.append(decision.vm_id)
        return settled, deferred

    def decide_and_migrate(
        self, allocation: Allocation, traffic: TrafficMatrix, vm_u: int
    ) -> MigrationDecision:
        """Evaluate VM u and perform the migration when Theorem 1 holds."""
        decision = self.evaluate(allocation, traffic, vm_u)
        if decision.target_host is None:
            return decision
        allocation.migrate(vm_u, decision.target_host)
        fast = self._fastcost
        if fast is not None and fast.is_bound_to(allocation, traffic):
            fast.apply_migration(vm_u, decision.target_host)
        return MigrationDecision(
            vm_id=decision.vm_id,
            source_host=decision.source_host,
            target_host=decision.target_host,
            delta=decision.delta,
            migrated=True,
            reason="migrated",
        )
