"""The distributed S-CORE control loop (paper §IV–§V).

The scheduler circulates the token: at each *hold*, the holding VM (its
dom0, in the Xen deployment) makes the unilateral Theorem 1 decision via
:class:`repro.core.migration.MigrationEngine`, the policy updates token
state, and the token moves on.  One *iteration* is ``|V|`` consecutive
holds — the unit in which the paper reports the ratio of migrated VMs
(Fig. 2).  Wall-clock time advances ``token_interval_s`` per hold, giving
the time axis of the cost-ratio plots (Fig. 3d–i).

The network-wide cost is tracked incrementally: by Lemma 3 each performed
migration changes the global cost by exactly the locally computed delta, so
the series costs O(1) per hold (an exactness property the test suite
verifies against full recomputation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocation import Allocation, CapacityError
from repro.cluster.placement import locality_probe_order
from repro.core.cost import CostModel
from repro.core.fastcost import FastCostEngine
from repro.core.migration import MigrationDecision, MigrationEngine
from repro.core.policies import TokenPolicy
from repro.core.rounds import BatchedRoundEngine
from repro.core.token import Token
from repro.traffic.matrix import TrafficMatrix
from repro.util.validation import check_positive


@dataclass(frozen=True)
class IterationStats:
    """Per-iteration summary (one token round over all VMs)."""

    index: int
    visits: int
    migrations: int
    cost_at_end: float
    #: Waves the batched round took (0 on the per-hold reference loop).
    waves: int = 0

    @property
    def migrated_ratio(self) -> float:
        """Fraction of token holds that resulted in a migration (Fig. 2)."""
        return self.migrations / self.visits if self.visits else 0.0


class DecisionLog:
    """Sequence of per-hold decisions, lazily materialized per block.

    The batched round engine records decisions as column arrays
    (:class:`repro.core.rounds.DecisionColumns`); the log keeps those
    blocks as-is and only builds
    :class:`~repro.core.migration.MigrationDecision` tuples when the
    decisions are actually read — report post-processing, never the hot
    loop.  Supports the list operations the reference loop and consumers
    use (``append``, ``extend``, iteration, ``len``, indexing).
    """

    def __init__(self) -> None:
        self._blocks: List = []

    def append(self, decision) -> None:
        if not self._blocks or not isinstance(self._blocks[-1], list):
            self._blocks.append([])
        self._blocks[-1].append(decision)

    def extend(self, decisions) -> None:
        if hasattr(decisions, "migrated_count"):
            self._blocks.append(decisions)
        else:
            for decision in decisions:
                self.append(decision)

    def __len__(self) -> int:
        return sum(len(block) for block in self._blocks)

    def __iter__(self):
        for block in self._blocks:
            yield from block

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("decision index out of range")
        for block in self._blocks:
            if index < len(block):
                return block[index]
            index -= len(block)
        raise IndexError("decision index out of range")

    def migrated_count(self) -> int:
        """Number of migrated holds, without materializing lazy blocks."""
        total = 0
        for block in self._blocks:
            if hasattr(block, "migrated_count"):
                total += block.migrated_count()
            else:
                total += sum(1 for d in block if d.migrated)
        return total


@dataclass
class SchedulerReport:
    """Full record of one S-CORE run."""

    initial_cost: float
    final_cost: float
    time_series: List[Tuple[float, float]] = field(default_factory=list)
    iterations: List[IterationStats] = field(default_factory=list)
    decisions: Sequence[MigrationDecision] = field(default_factory=DecisionLog)
    #: The holder the *next* round would start from — pass it back as
    #: ``run(first_holder=...)`` to continue a multi-round schedule
    #: across separate ``run`` calls exactly as one call would have.
    next_holder: Optional[int] = None
    #: Provenance label when this scheduler state descends from a
    #: restored snapshot (``None`` for a never-restored scheduler).
    recovered_from: Optional[str] = None
    #: Executor a sharded run actually used (``"shm ×8"``, ``"serial"``,
    #: ``"serial (fallback: ...)"``); ``None`` for non-sharded runs.
    shard_executor: Optional[str] = None

    @property
    def total_migrations(self) -> int:
        """Number of migrations performed over the whole run."""
        if hasattr(self.decisions, "migrated_count"):
            return self.decisions.migrated_count()
        return sum(1 for d in self.decisions if d.migrated)

    @property
    def cost_reduction(self) -> float:
        """Fractional reduction of the network-wide cost (0..1)."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost

    def cost_ratio_series(self, reference_cost: float) -> List[Tuple[float, float]]:
        """The paper's Fig. 3d–i series: cost(t) / reference (e.g. GA-optimal).

        Tolerates reports with no recorded points (e.g. a hand-built or
        not-yet-run report): the series is simply empty.
        """
        check_positive("reference_cost", reference_cost)
        if not self.time_series:
            return []
        return [(t, cost / reference_cost) for t, cost in self.time_series]

    def migrated_ratio_series(self) -> List[Tuple[int, float]]:
        """The paper's Fig. 2 series: migrated-VM ratio per iteration.

        Empty when the report holds no iterations (zero-iteration reports
        are legal values, not errors).
        """
        if not self.iterations:
            return []
        return [(it.index, it.migrated_ratio) for it in self.iterations]


class SCOREScheduler:
    """Runs the token-driven S-CORE algorithm over an allocation."""

    def __init__(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        policy: TokenPolicy,
        engine: MigrationEngine,
        token_interval_s: float = 1.0,
        use_fastcost: bool = True,
        use_batched_rounds: bool = True,
        use_round_cache: bool = True,
        use_sharding: bool = False,
        n_domains: Optional[int] = None,
        n_workers: int = 1,
        shard_policy_factory=None,
        shard_compact: bool = False,
        shard_transport: str = "shm",
    ) -> None:
        """
        ``use_fastcost`` (default on) builds a
        :class:`repro.core.fastcost.FastCostEngine` over the allocation and
        traffic, attaches it to the migration engine, and threads it through
        the token loop — batched candidate scoring, O(peers) incremental
        cost updates, and vectorized highest-level queries for the policy.
        Disable it to run every decision through the naive
        :class:`~repro.core.cost.CostModel` reference path.

        ``use_batched_rounds`` (default on) executes each token round as
        interference-free migration *waves* over the policy's round-order
        snapshot (:mod:`repro.core.rounds`) whenever the policy can freeze
        its visit order up front (RR exactly; HLF via a priority snapshot)
        and the fast engine is active; otherwise — and always with
        ``use_fastcost=False`` or an order-free policy — :meth:`run` falls
        back to the per-hold reference loop (:meth:`run_reference`).

        ``use_round_cache`` (default on) additionally runs batched rounds
        against the engine's persistent per-owner score cache
        (:mod:`repro.core.roundcache`): only the owners a wave / round /
        epoch actually touched are re-scored, with the exact same
        trajectory as the uncached wave loop (which ``False`` pins as the
        reference).

        ``use_sharding`` (default off) runs each schedule as
        community-partitioned parallel domains with a cross-domain
        reconciliation pass (:mod:`repro.shard`; requires the fast
        engine and a CanonicalTree topology).  ``n_domains`` caps the
        partition (default: one domain per pod, at most 16);
        ``n_workers`` > 1 fans domains out over forked worker processes.
        ``shard_policy_factory`` builds each domain's private policy
        instance; by default the scheduler's policy type is instantiated
        with no arguments.  ``shard_compact`` runs the *domain* engines
        on the compact (int32/float32) snapshot — the global engine that
        gates and applies every move stays float64, so the incremental
        global cost remains exact.  ``shard_transport`` picks the worker
        payload path (``"shm"`` zero-copy slabs, default, or ``"pipe"``
        pickled outcomes).

        A sharded scheduler keeps its domain fleet (and worker
        processes) alive across :meth:`run` calls; the churn / delta /
        capacity APIs forward their mutations to the live domains, and
        mutations the fleet cannot absorb trigger a transparent rebuild
        at the next run.  Call :meth:`close` to tear the fleet down
        deterministically.
        """
        check_positive("token_interval_s", token_interval_s)
        missing = traffic.vms_with_traffic - set(allocation.vm_ids())
        if missing:
            raise ValueError(
                f"traffic references VMs absent from the allocation: "
                f"{sorted(missing)[:5]}..."
            )
        self._allocation = allocation
        self._traffic = traffic
        self._policy = policy
        self._engine = engine
        self._interval = token_interval_s
        self._token = Token(allocation.vm_ids())
        self._clock = 0.0
        # Built lazily on the first run() — churn and traffic updates before
        # that point then cost nothing, and the run-start sync isn't paid
        # twice for a freshly constructed scheduler.
        self._use_fastcost = use_fastcost
        self._use_batched_rounds = use_batched_rounds
        self._use_round_cache = use_round_cache
        self._use_sharding = use_sharding
        self._n_domains = n_domains
        self._n_workers = n_workers
        self._shard_policy_factory = shard_policy_factory
        self._shard_compact = shard_compact
        self._shard_transport = shard_transport
        self._shard_coordinator = None
        self._shard_solve_hints: dict = {}
        if use_sharding and not use_fastcost:
            raise ValueError("use_sharding requires use_fastcost")
        self._fast: Optional[FastCostEngine] = None
        self._profile = None
        self._saved_capacity: dict = {}
        self._recovered_from: Optional[str] = None

    @property
    def allocation(self) -> Allocation:
        """The (mutating) allocation being optimized."""
        return self._allocation

    @property
    def token(self) -> Token:
        """The circulating token (live state)."""
        return self._token

    @property
    def traffic(self) -> TrafficMatrix:
        """The bound traffic matrix (live state)."""
        return self._traffic

    @property
    def clock(self) -> float:
        """Simulated wall-clock seconds elapsed (persists across runs)."""
        return self._clock

    @property
    def token_interval_s(self) -> float:
        """Simulated seconds one token hold takes."""
        return self._interval

    @property
    def cost_model(self) -> CostModel:
        """Shortcut to the engine's cost model."""
        return self._engine.cost_model

    @property
    def fastcost(self) -> Optional[FastCostEngine]:
        """The vectorized engine threaded through the loop (None if naive)."""
        return self._fast

    @property
    def profile(self):
        """Per-phase timings accumulated so far (None unless enabled)."""
        return self._profile

    @property
    def recovered_from(self) -> Optional[str]:
        """Recovery provenance (``"snapshot-00000003.snap@seq42"``) when
        this scheduler came through :meth:`restore`; None otherwise."""
        return self._recovered_from

    def enable_profiling(self):
        """Collect per-phase wall clock (score / re-mask / plan / apply)
        and round-cache hit rates on subsequent runs; returns the
        :class:`~repro.util.profiling.PhaseTimings` accumulator."""
        if self._profile is None:
            from repro.util.profiling import PhaseTimings

            self._profile = PhaseTimings()
        return self._profile

    def run(
        self,
        n_iterations: int = 5,
        stop_when_stable: bool = False,
        record_every_hold: bool = False,
        event_pump=None,
        first_holder: Optional[int] = None,
    ) -> SchedulerReport:
        """Circulate the token for ``n_iterations`` full rounds.

        Dispatches to the wave-batched round engine when it applies (fast
        engine active, batched rounds enabled, and the policy provides a
        round-order snapshot), else to the per-hold reference loop — the
        two agree whenever round decisions don't interact, and the wave
        differential suite pins their relationship when they do.

        Parameters
        ----------
        n_iterations:
            Number of token rounds (|V| holds each); the paper uses 5.
        stop_when_stable:
            Stop early after an iteration with zero migrations (the system
            has converged; Fig. 2 shows this typically happens by round 3).
        record_every_hold:
            Record a time-series point at every hold instead of only when
            the cost changes (larger but smoother series).
        event_pump:
            Optional ``pump(now_s) -> bool`` driving a continuous-time
            event queue (see :mod:`repro.sim.eventqueue`).  On the
            batched path it is called after every applied wave with the
            simulated time of the last settled hold, and at every round
            boundary; the reference loop pumps at iteration boundaries
            only.  A ``True`` return means events mutated engine state:
            the in-flight round finishes against the live state and the
            cost series re-anchors from the engine's exact total.
        first_holder:
            Start the first round's order from this VM instead of the
            token's lowest id.  Feeding a previous report's
            ``next_holder`` back here makes ``run(1)`` called k times
            reproduce ``run(k)`` hold for hold — the seam checkpointed
            runs resume through (:mod:`repro.persist`).
        """
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        cost_model = self._prepare_engines()
        if self._use_sharding:
            return self._run_sharded(
                cost_model, n_iterations, stop_when_stable, event_pump
            )
        if self._use_batched_rounds and self._fast is not None:
            order = self._policy.round_order(
                self._token,
                (
                    first_holder
                    if first_holder is not None
                    else self._token.lowest_id
                ),
                self._allocation,
                self._traffic,
                cost_model,
            )
            if order is not None:
                return self._run_batched(
                    cost_model,
                    order,
                    n_iterations,
                    stop_when_stable,
                    record_every_hold,
                    event_pump,
                )
        return self._run_reference_loop(
            cost_model, n_iterations, stop_when_stable, record_every_hold,
            event_pump, first_holder,
        )

    def quiesce(
        self, max_rounds: int = 25, first_holder: Optional[int] = None
    ) -> List[SchedulerReport]:
        """Run one round at a time until a round migrates nothing.

        The settle loop the service drain and the chaos differential
        share: with no further events arriving, S-CORE converges (every
        hold fails the Theorem 1 gate) and the first zero-migration
        round proves it.  Returns the per-round reports, the stable
        round last; raises ``RuntimeError`` if ``max_rounds`` rounds
        all still migrate — that is oscillation, not convergence.
        """
        reports: List[SchedulerReport] = []
        holder = first_holder
        for _ in range(max_rounds):
            report = self.run(n_iterations=1, first_holder=holder)
            reports.append(report)
            holder = report.next_holder
            if report.total_migrations == 0:
                return reports
        raise RuntimeError(
            f"scheduler failed to quiesce within {max_rounds} rounds "
            f"(last round still moved {reports[-1].total_migrations} VMs)"
        )

    def run_reference(
        self,
        n_iterations: int = 5,
        stop_when_stable: bool = False,
        record_every_hold: bool = False,
    ) -> SchedulerReport:
        """The per-hold token loop (pre-batching semantics), kept verbatim.

        One Theorem 1 decision per hold, policy ``on_hold``/``next_vm``
        after every decision — the oracle the wave-batched path is pinned
        against.  Honors ``use_fastcost`` exactly like :meth:`run` (the
        per-decision math still goes through the fast engine when active);
        only the round batching is bypassed.
        """
        if n_iterations < 1:
            raise ValueError(f"n_iterations must be >= 1, got {n_iterations}")
        cost_model = self._prepare_engines()
        return self._run_reference_loop(
            cost_model, n_iterations, stop_when_stable, record_every_hold
        )

    def _prepare_engines(self) -> CostModel:
        """Build/resync the fast engine; return the active cost model."""
        if self._use_fastcost:
            if self._fast is None:
                self._fast = FastCostEngine(
                    self._allocation,
                    self._traffic,
                    weights=self._engine.cost_model.weights,
                )
                self._engine.attach_fastcost(self._fast)
            elif self._fast.traffic is not self._traffic:
                self._fast.update_traffic(self._traffic)
            elif not self._fast.in_sync:
                # Some writer bypassed the engine's update path since the
                # last run (direct allocation moves, out-of-band set_rate):
                # pay one full resync.  Mutations routed through the
                # scheduler's churn/delta APIs keep the engine in sync, so
                # multi-epoch dynamic runs skip this entirely.  Whatever
                # desynced the engine also bypassed the shard fleet.
                self._fast.rebuild()
                self._close_shard_fleet()
        # Policies take whichever implementation is active — the fast engine
        # answers highest_level from its arrays with the CostModel signature.
        return self._fast or self._engine.cost_model

    def _run_reference_loop(
        self,
        cost_model: CostModel,
        n_iterations: int,
        stop_when_stable: bool,
        record_every_hold: bool,
        event_pump=None,
        first_holder: Optional[int] = None,
    ) -> SchedulerReport:
        cost = cost_model.total_cost(self._allocation, self._traffic)
        report = SchedulerReport(initial_cost=cost, final_cost=cost)
        report.recovered_from = self._recovered_from
        report.time_series.append((self._clock, cost))

        # A continuation holder that churned away between runs degrades
        # to the lowest id — the same fallback the boundary pump applies.
        holder = self._token.lowest_id
        if first_holder is not None and first_holder in self._token:
            holder = first_holder
        for iteration in range(1, n_iterations + 1):
            # Re-read each iteration: boundary events may have churned
            # the population (the per-hold loop has no mid-round seam —
            # event injection there is boundary-granular by design).
            n_vms = len(self._token)
            migrations = 0
            for _visit in range(n_vms):
                decision = self._engine.decide_and_migrate(
                    self._allocation, self._traffic, holder
                )
                report.decisions.append(decision)
                if decision.migrated:
                    migrations += 1
                    cost -= decision.delta
                self._policy.on_hold(
                    self._token,
                    holder,
                    self._allocation,
                    self._traffic,
                    cost_model,
                )
                self._clock += self._interval
                if decision.migrated or record_every_hold:
                    report.time_series.append((self._clock, cost))
                holder = self._policy.next_vm(
                    self._token,
                    holder,
                    self._allocation,
                    self._traffic,
                    cost_model,
                )
            report.iterations.append(
                IterationStats(
                    index=iteration,
                    visits=n_vms,
                    migrations=migrations,
                    cost_at_end=cost,
                )
            )
            report.time_series.append((self._clock, cost))
            if event_pump is not None and event_pump(self._clock):
                # Events changed cost out-of-band of the migration deltas
                # and may have retired the next holder.
                cost = float(
                    cost_model.total_cost(self._allocation, self._traffic)
                )
                if holder not in self._token:
                    holder = self._token.lowest_id
                report.time_series.append((self._clock, cost))
            if stop_when_stable and migrations == 0:
                break

        report.final_cost = cost
        report.next_holder = holder
        return report

    def _run_batched(
        self,
        cost_model: CostModel,
        first_order: List[int],
        n_iterations: int,
        stop_when_stable: bool,
        record_every_hold: bool,
        event_pump=None,
    ) -> SchedulerReport:
        """Wave-batched rounds over the policy's round-order snapshots.

        The report keeps the reference layout — one decision per hold in
        visit order, a time-series point per migrated hold (or per hold
        with ``record_every_hold``) and one per iteration end — with each
        wave's cost change attributed to the holds that moved.

        With an ``event_pump``, the pump runs after every applied wave at
        the simulated time of the wave's last settled hold (round start +
        ``token_interval_s`` × holds decided so far — a retired hold
        still consumes its tick) and again at each round boundary.  When
        a pump mutates state, per-hold points within that round remain
        migration-delta-relative (events shift them out-of-band), but
        every iteration-end cost re-anchors from the engine's exact
        incremental total, so ``final_cost`` is exact.
        """
        assert self._fast is not None
        wave_callback = None
        if self._policy.wave_refresh is not None:
            policy = self._policy

            def wave_callback(vm_ids: List[int]) -> None:
                policy.wave_refresh(
                    self._token, vm_ids, self._allocation, self._traffic,
                    cost_model,
                )

        rounds = BatchedRoundEngine(
            self._allocation, self._traffic, self._engine, self._fast,
            wave_callback=wave_callback,
            use_cache=self._use_round_cache,
            profile=self._profile,
        )
        cost = cost_model.total_cost(self._allocation, self._traffic)
        report = SchedulerReport(initial_cost=cost, final_cost=cost)
        report.recovered_from = self._recovered_from
        report.time_series.append((self._clock, cost))

        order = first_order
        holder: Optional[int] = None
        for iteration in range(1, n_iterations + 1):
            injector = None
            if event_pump is not None:
                def injector(settled, _start=self._clock):
                    return event_pump(_start + self._interval * settled)

            result = rounds.run_round(order, injector)
            report.decisions.extend(result.decisions)
            # Per-hold cost series, attributed at each migrated hold in
            # visit order (cumulative exact deltas).
            costs = cost - np.cumsum(result.hold_delta)
            clocks = self._clock + self._interval * np.arange(
                1, len(order) + 1
            )
            self._clock = float(clocks[-1])
            cost = float(costs[-1])
            if event_pump is not None:
                # Injected events shift cost out-of-band of the per-hold
                # deltas; re-anchor from the engine's exact total (O(1)).
                cost = float(
                    cost_model.total_cost(self._allocation, self._traffic)
                )
            if record_every_hold:
                report.time_series.extend(
                    zip(clocks.tolist(), costs.tolist())
                )
            else:
                hit = result.hold_migrated
                report.time_series.extend(
                    zip(clocks[hit].tolist(), costs[hit].tolist())
                )
            report.iterations.append(
                IterationStats(
                    index=iteration,
                    visits=len(order),
                    migrations=result.migrations,
                    cost_at_end=cost,
                    waves=result.waves,
                )
            )
            report.time_series.append((self._clock, cost))
            holder = self._policy.end_round(
                self._token, order, self._allocation, self._traffic, cost_model
            )
            if event_pump is not None and event_pump(self._clock):
                # Boundary events (arrivals join here; departures leave
                # before the next order snapshot).
                cost = float(
                    cost_model.total_cost(self._allocation, self._traffic)
                )
                report.time_series.append((self._clock, cost))
            if stop_when_stable and result.migrations == 0:
                break
            if iteration < n_iterations:
                order = self._policy.round_order(
                    self._token,
                    holder,
                    self._allocation,
                    self._traffic,
                    cost_model,
                )
        report.final_cost = cost
        report.next_holder = holder
        return report

    def _default_policy_factory(self):
        """Clone the scheduler's policy type for a domain (no-arg ctor)."""
        policy_type = type(self._policy)

        def factory():
            try:
                return policy_type()
            except TypeError as error:
                raise TypeError(
                    f"cannot build a per-domain {policy_type.__name__} "
                    "with no arguments; pass shard_policy_factory"
                ) from error

        return factory

    def _ensure_shard_fleet(self):
        """The live domain fleet, (re)built when absent or stale.

        The fleet — domains, worker processes, shared-memory slabs —
        persists across :meth:`run` calls; the delta-forwarding APIs
        keep it synchronized, and anything they could not absorb marked
        it stale.  A rebuild seeds the LPT worker packing with the
        measured per-domain solve times of the previous fleet.
        """
        from repro.shard import ShardedCoordinator

        assert self._fast is not None
        coordinator = self._shard_coordinator
        if coordinator is not None and (
            coordinator.stale or coordinator._traffic is not self._traffic
        ):
            self._close_shard_fleet()
            coordinator = None
        if coordinator is None:
            topology = self._allocation.topology
            n_pods = int(topology.host_pod_ids().max()) + 1
            n_domains = (
                self._n_domains
                if self._n_domains is not None
                else min(16, n_pods)
            )
            coordinator = ShardedCoordinator(
                self._allocation,
                self._traffic,
                self._engine,
                self._fast,
                self._shard_policy_factory or self._default_policy_factory(),
                n_domains=n_domains,
                n_workers=self._n_workers,
                compact_domains=self._shard_compact,
                use_round_cache=self._use_round_cache,
                transport=self._shard_transport,
                solve_hints=self._shard_solve_hints,
                profile=self._profile,
            )
            self._shard_coordinator = coordinator
        return coordinator

    def _close_shard_fleet(self) -> None:
        """Tear the live fleet down, keeping its solve times as hints."""
        coordinator = self._shard_coordinator
        if coordinator is not None:
            self._shard_solve_hints.update(coordinator.solve_hints)
            self._shard_coordinator = None
            coordinator.close()

    def close(self) -> None:
        """Release live resources (the sharded worker fleet and slabs).

        Idempotent; non-sharded schedulers have nothing to release.
        The object remains usable — a subsequent sharded run simply
        rebuilds the fleet.
        """
        self._close_shard_fleet()

    def _forward_shard(self, forward) -> None:
        """Forward one mutation to the live fleet (rebuild if refused)."""
        coordinator = self._shard_coordinator
        if coordinator is None:
            return
        if not forward(coordinator):
            self._close_shard_fleet()

    def __getstate__(self):
        # Snapshots pickle the whole scheduler graph; the live fleet
        # (worker processes, pipes, shared-memory slabs) never travels.
        # A restored scheduler rebuilds it lazily at its next run.
        state = self.__dict__.copy()
        state["_shard_coordinator"] = None
        return state

    def __setstate__(self, state):
        # Snapshots written before the persistent fleet existed restore
        # with the fleet fields defaulted.
        state.setdefault("_shard_coordinator", None)
        state.setdefault("_shard_solve_hints", {})
        state.setdefault("_shard_transport", "shm")
        self.__dict__.update(state)

    def _run_sharded(
        self,
        cost_model: CostModel,
        n_iterations: int,
        stop_when_stable: bool,
        event_pump=None,
    ) -> SchedulerReport:
        """Community-partitioned parallel domains + boundary reconcile.

        Each iteration fans one wave-batched round out to every domain
        (:mod:`repro.shard`), merges each domain's waves into the global
        allocation/fast engine as they arrive (exact incremental cost),
        and after the last iteration runs the Theorem-1 reconciliation
        passes over the cross-domain boundary VMs.  The report keeps
        iteration-granular time-series points (per-hold attribution is
        a single-engine notion); the reconcile passes append one extra
        :class:`IterationStats` entry when they ran.

        An ``event_pump`` is driven at *iteration boundaries* (domain
        rounds have no mid-round seam by construction): events route
        through the scheduler's mutation APIs, which forward them to
        the live fleet, and each boundary re-anchors the cost from the
        engine's exact total.  Pipelined look-ahead is disabled while a
        pump (or ``stop_when_stable``) could change what the next
        iteration is.
        """
        assert self._fast is not None
        # The global fast engine is authoritative for the whole sharded
        # run (merge and reconcile maintain it move by move), so anchor
        # the report on it too — the naive O(pairs × levels) recompute
        # costs seconds at hyperscale.
        cost = float(self._fast.total_cost())
        report = SchedulerReport(initial_cost=cost, final_cost=cost)
        report.recovered_from = self._recovered_from
        report.time_series.append((self._clock, cost))
        coordinator = None
        for iteration in range(1, n_iterations + 1):
            coordinator = self._ensure_shard_fleet()
            more_coming = (
                iteration < n_iterations
                and not stop_when_stable
                and event_pump is None
            )
            outcome = coordinator.run_iteration(iteration, more_coming)
            for block in outcome.decision_blocks:
                report.decisions.extend(block)
            self._clock += self._interval * outcome.visits
            cost = outcome.cost_at_end
            report.iterations.append(
                IterationStats(
                    index=iteration,
                    visits=outcome.visits,
                    migrations=outcome.migrations,
                    cost_at_end=cost,
                    waves=outcome.waves,
                )
            )
            report.time_series.append((self._clock, cost))
            if event_pump is not None and event_pump(self._clock):
                # Boundary events mutated engine state out-of-band (the
                # mutation APIs kept the fleet in step, or retired it);
                # re-anchor from the engine's exact incremental total.
                cost = float(self._fast.total_cost())
                report.time_series.append((self._clock, cost))
            if stop_when_stable and outcome.migrations == 0:
                break
        coordinator = self._ensure_shard_fleet()
        reconcile = coordinator.reconcile()
        if reconcile.passes:
            for block in reconcile.decision_blocks:
                report.decisions.extend(block)
            visits = reconcile.boundary_vms * reconcile.passes
            self._clock += self._interval * visits
            cost = float(self._fast.total_cost())
            report.iterations.append(
                IterationStats(
                    index=len(report.iterations) + 1,
                    visits=visits,
                    migrations=reconcile.migrations,
                    cost_at_end=cost,
                )
            )
            report.time_series.append((self._clock, cost))
        self._shard_solve_hints.update(coordinator.solve_hints)
        label = coordinator.executor_kind
        if coordinator.n_workers > 1:
            label = f"{label} ×{coordinator.n_workers}"
        if coordinator.executor_fallback:
            label = f"{label} (fallback: {coordinator.executor_fallback})"
        report.shard_executor = label
        report.final_cost = cost
        report.next_holder = self._token.lowest_id
        return report

    def save_snapshot(
        self,
        directory: str,
        *,
        include_engine: bool = True,
        meta: Optional[dict] = None,
        io=None,
    ) -> str:
        """Write one atomic, checksummed snapshot generation of the full
        warm state under ``directory``; returns the file path.

        The payload is the scheduler's whole object graph — allocation,
        traffic matrix, token levels/buckets, policy state, clock, saved
        drain capacity, and (by default) the warm
        :class:`~repro.core.fastcost.FastCostEngine` with its CSR
        snapshot, Lemma-3 caches and round-score cache, so
        :meth:`restore` resumes without re-paying the cold scoring
        boot.  ``include_engine=False`` strips the engine from the
        payload (a far smaller file); the restored scheduler then
        re-derives it lazily on its next :meth:`run`.

        ``meta`` lands verbatim in the snapshot's JSON header (the
        durable runner records its journal position there); ``io``
        overrides the :class:`~repro.persist.snapshot.StorageIO` write
        layer (fault injection, retry budget).
        """
        from repro.persist.snapshot import write_snapshot

        detached = None
        if not include_engine and self._fast is not None:
            detached = self._fast
            self._fast = None
            self._engine.attach_fastcost(None)
        try:
            header_meta = {
                "kind": "scheduler",
                "include_engine": bool(include_engine),
                "clock": self._clock,
                "n_vms": self._allocation.n_vms,
                **(meta or {}),
            }
            return write_snapshot(
                directory, {"scheduler": self}, header_meta, io=io
            )
        finally:
            if detached is not None:
                self._fast = detached
                self._engine.attach_fastcost(detached)

    @classmethod
    def restore(cls, source: str, *, generation: Optional[int] = None):
        """Load a scheduler from a snapshot; the warm twin of ``__init__``.

        ``source`` is a snapshot *directory* (the newest generation that
        verifies is loaded — corrupt files are skipped, the degradation
        ladder of :func:`repro.persist.snapshot.load_latest_good`) or
        one snapshot *file*; ``generation`` pins a specific generation
        inside a directory.  The restored scheduler carries a
        ``recovered_from`` provenance label on itself and every
        subsequent :class:`SchedulerReport`.

        Raises :class:`~repro.persist.snapshot.SnapshotCorruptError` for
        an unusable explicit file/generation and
        :class:`~repro.persist.snapshot.NoSnapshotError` when a
        directory holds no usable generation at all.
        """
        import os

        from repro.persist.snapshot import (
            load_latest_good,
            read_snapshot,
            snapshot_path,
        )

        if generation is not None:
            source = snapshot_path(source, generation)
        if os.path.isdir(source):
            loaded = load_latest_good(source)
            header, state, path = loaded.header, loaded.state, loaded.path
        else:
            header, state = read_snapshot(source)
            path = source
        scheduler = state["scheduler"]
        if not isinstance(scheduler, cls):
            raise TypeError(
                f"snapshot {path} holds {type(scheduler).__name__}, "
                f"not {cls.__name__}"
            )
        scheduler._recovered_from = (
            f"{os.path.basename(path)}"
            f"@seq{header.get('meta', {}).get('journal_seq', 0)}"
        )
        return scheduler

    def admit_vm(self, vm, host: int) -> None:
        """Bring a newly created VM online (joins the token circulation).

        Models tenant churn: the placement manager creates the VM, the
        scheduler places it and adds its (zero-level) token entry, and the
        next iterations optimize it like any other VM.
        """
        self.admit_vms([vm], [host])

    def admit_vms(self, vms: Sequence, hosts: Sequence[int]) -> None:
        """Bring one batch of arriving VMs online.

        The allocation validates the whole batch before placing anything
        (atomic on failure); the fast engine's dense index and capacity
        mirrors are patched in place, so no cold rebuild is paid at the
        next run.  Arrivals join with no traffic — route their flows
        through :meth:`apply_traffic_delta` afterwards.
        """
        vms = list(vms)
        hosts = [int(h) for h in hosts]
        self._allocation.add_vms(vms, hosts)
        for vm in vms:
            self._token.add_vm(vm.vm_id)
        if self._fast is not None:
            self._fast.add_vms(vms)
        self._forward_shard(lambda c: c.forward_admissions(vms, hosts))

    def retire_vm(self, vm_id: int) -> None:
        """Take a VM offline: remove it from the allocation, the token and
        the traffic matrix (its flows cease)."""
        self.retire_vms([vm_id])

    def retire_vms(self, vm_ids: Sequence[int]) -> None:
        """Take one batch of VMs offline (tenant departures).

        Their flows cease (the traffic matrix drops every pair touching
        them), they leave the allocation and the token, and the fast
        engine patches its dense index incrementally.  The token must
        keep at least one entry; unknown ids raise before any removal.
        """
        ids = [int(v) for v in vm_ids]
        if not ids:
            return
        gone = set(ids)
        if not set(self._token.vm_ids) - gone:
            raise ValueError("cannot retire every VM; the token needs a holder")
        missing = [v for v in ids if v not in self._allocation]
        if missing:
            raise KeyError(f"VM {missing[0]} is not placed")
        ceased = [
            (vm_id, peer, 0.0)
            for vm_id in ids
            for peer in self._traffic.peers_of(vm_id)
            if peer not in gone or peer > vm_id
        ]
        # Flows cease first (one paired traffic delta, while the engine
        # still knows the VMs), then the population shrinks.
        self.apply_traffic_delta(ceased)
        self._allocation.remove_vms(ids)
        for vm_id in ids:
            self._token.remove_vm(vm_id)
        if self._fast is not None:
            self._fast.remove_vms(ids)
        self._forward_shard(lambda c: c.forward_retirements(ids))

    def apply_traffic_delta(self, changed_pairs) -> int:
        """Patch λ for one batch of pairs — the incremental epoch transition.

        ``changed_pairs`` holds ``(vm_u, vm_v, new_rate)`` triples (or a
        ``(us, vs, rates)`` array tuple) with absolute new rates; 0
        removes a pair.  The bound traffic matrix and the fast engine's
        snapshot/caches are patched together, so the sliding-window
        re-estimation of §IV costs O(changed pairs) instead of the full
        O(pairs) rebuild `update_traffic` pays.  Returns the number of
        pair changes applied.
        """
        # The array form requires actual ndarrays (mirroring the engine's
        # parser) — a plain tuple of exactly three (u, v, rate) triples is
        # a triple list, not a transposed (us, vs, rates) bundle.
        if (
            isinstance(changed_pairs, tuple)
            and len(changed_pairs) == 3
            and isinstance(changed_pairs[0], np.ndarray)
        ):
            triples = list(zip(*changed_pairs))
            engine_delta = changed_pairs
        else:
            triples = list(changed_pairs)
            engine_delta = triples
        if self._fast is not None:
            # Engine-side validation runs first (unknown VMs, negative
            # rates) so a bad delta leaves the matrix untouched too.  The
            # engine credits itself the matrix's one version bump.
            applied = self._fast.apply_traffic_delta(engine_delta)
            if applied:
                self._traffic.apply_delta(triples)
                self._forward_shard(
                    lambda c: c.forward_traffic_delta(engine_delta)
                )
            return applied
        placed = set(self._allocation.vm_ids())
        endpoints = {int(u) for u, _, _ in triples} | {
            int(v) for _, v, _ in triples
        }
        missing = endpoints - placed
        if missing:
            raise KeyError(
                f"traffic delta references VMs absent from the allocation: "
                f"{sorted(missing)[:5]}"
            )
        return self._traffic.apply_delta(triples)

    def drain_hosts(
        self, hosts: Sequence[int], offline: bool = False
    ) -> List[Tuple[int, int]]:
        """Evacuate every VM from the given hosts (maintenance drain).

        Each VM moves to the first feasible host outside the drained set
        — preferring the same rack, then the same pod, then anywhere
        (ascending host order) — through the engine's incremental update
        path, so a drain is O(moved VMs), not a rebuild.  Returns the
        ``(vm_id, target_host)`` moves performed; raises
        :class:`~repro.cluster.allocation.CapacityError` when a VM fits
        nowhere (the drain stops at that VM).

        With ``offline=True`` the drained hosts are additionally taken
        out of service — their slot capacity drops to zero via the
        in-place capacity patch (:meth:`set_host_capacity`), so no later
        round migrates anything back onto them — until
        :meth:`restore_hosts` brings the saved capacity back.
        """
        drained = set(int(h) for h in hosts)
        # Drain moves bypass the domain round engines (and may cross
        # domain boundaries): retire the live fleet rather than chase it.
        self._close_shard_fleet()
        topology = self._allocation.topology
        moves: List[Tuple[int, int]] = []
        for host in sorted(drained):
            candidates = [
                h
                for h in locality_probe_order(topology, topology.rack_of(host))
                if h not in drained
            ]
            for vm_id in sorted(self._allocation.vms_on(host)):
                vm = self._allocation.vm(vm_id)
                target = next(
                    (h for h in candidates if self._allocation.can_host(h, vm)),
                    None,
                )
                if target is None:
                    raise CapacityError(
                        f"drain failed: no feasible host for VM {vm_id}"
                    )
                self._allocation.migrate(vm_id, target)
                if self._fast is not None:
                    self._fast.apply_migration(vm_id, target)
                moves.append((vm_id, target))
        if offline:
            for host in sorted(drained):
                capacity = self._allocation.cluster.server(host).capacity
                self._saved_capacity.setdefault(host, capacity)
                self.set_host_capacity(host, max_vms=0)
        return moves

    def restore_hosts(self, hosts: Sequence[int]) -> None:
        """Bring hosts drained with ``offline=True`` back into service.

        Restores each host's saved capacity through the in-place patch —
        the freed hosts become candidate targets again at the next round
        (feasibility is re-probed from the live mirrors; scored rows need
        no invalidation).  Hosts that were never taken offline are
        ignored.
        """
        for host in sorted(int(h) for h in hosts):
            capacity = self._saved_capacity.pop(host, None)
            if capacity is None:
                continue
            self.set_host_capacity(
                host,
                max_vms=capacity.max_vms,
                nic_bps=capacity.nic_bps,
                ram_mb=capacity.ram_mb,
                cpu=capacity.cpu,
            )

    def set_host_capacity(
        self,
        host: int,
        max_vms: Optional[int] = None,
        nic_bps: Optional[float] = None,
        ram_mb: Optional[int] = None,
        cpu: Optional[float] = None,
    ) -> None:
        """Resize one host in place (server upgrade, maintenance offline).

        Routed through :meth:`FastCostEngine.set_host_capacity` when the
        engine exists — the capacity/egress mirrors are patched without a
        rebuild — and straight through the cluster otherwise.  Values
        left ``None`` keep their current setting; shrinking below current
        usage raises (drain first).
        """
        if self._fast is not None:
            self._fast.set_host_capacity(
                host, max_vms=max_vms, nic_bps=nic_bps, ram_mb=ram_mb, cpu=cpu
            )
            self._forward_shard(
                lambda c: c.forward_capacity(
                    host,
                    dict(max_vms=max_vms, nic_bps=nic_bps, ram_mb=ram_mb,
                         cpu=cpu),
                )
            )
            return
        from repro.cluster.server import ServerCapacity

        cluster = self._allocation.cluster
        current = cluster.server(int(host)).capacity
        new = ServerCapacity(
            max_vms=current.max_vms if max_vms is None else int(max_vms),
            ram_mb=current.ram_mb if ram_mb is None else int(ram_mb),
            cpu=current.cpu if cpu is None else float(cpu),
            nic_bps=current.nic_bps if nic_bps is None else float(nic_bps),
        )
        in_use = len(self._allocation.vms_on(int(host)))
        if new.max_vms < in_use:
            raise ValueError(
                f"host {host} runs {in_use} VMs; cannot shrink to "
                f"{new.max_vms} slots (drain it first)"
            )
        cluster.set_host_capacity(int(host), new)

    def set_bandwidth_threshold(self, threshold: Optional[float]) -> None:
        """Change the §V-C migration-bandwidth budget mid-run.

        Models link contention events (a squeezed budget) and their
        lifting (``None`` or a looser fraction).  The new budget governs
        every decision made after the call; any round-cache decision
        carry is dropped (it was derived under the old budget), while the
        cached scored deltas — budget-independent — survive.
        """
        self._engine.set_bandwidth_threshold(threshold)
        if self._fast is not None:
            self._fast.invalidate_round_decisions()
        self._forward_shard(lambda c: c.forward_threshold(threshold))

    def update_traffic(self, traffic: TrafficMatrix) -> None:
        """Install a fresh traffic-matrix estimate (next measurement window).

        The token and allocation persist; only λ changes, modelling the
        periodic re-estimation of §IV.  This is the full-rebuild path —
        prefer :meth:`apply_traffic_delta` when the change set is known.
        """
        missing = traffic.vms_with_traffic - set(self._allocation.vm_ids())
        if missing:
            raise ValueError(
                f"traffic references VMs absent from the allocation: "
                f"{sorted(missing)[:5]}..."
            )
        self._traffic = traffic
        # The fleet's domain matrices were sliced from the old estimate.
        self._close_shard_fleet()
        if self._fast is not None:
            self._fast.update_traffic(traffic)
