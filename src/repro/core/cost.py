"""Communication-cost model (paper §II–§III).

Link weights ``c_i`` grow with the layer: utilization of cheap edge links is
preferable to expensive, oversubscribed core links.  Traffic between VMs at
communication level ``l`` traverses ``2l`` links — two at each layer
``1..l`` — so it costs ``2 * λ(u,v) * Σ_{i=1..l} c_i`` (Eq. 1's inner term).

* Per-VM cost, Eq. (1):  ``C_A(u) = 2 Σ_{v∈V_u} λ(u,v) Σ_{i≤l(u,v)} c_i``
* Network-wide cost, Eq. (2): the same summed once per unordered pair.
* Migration delta, Lemma 3: only the migrating VM's peers contribute, which
  is what makes the decision computable from VM-local state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.cluster.allocation import Allocation
from repro.topology.base import Topology
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class LinkWeights:
    """Per-level link weights ``c_1 < c_2 < ... < c_L`` (paper §II).

    ``weights[i]`` is ``c_{i+1}`` (0-indexed storage, 1-indexed semantics).
    The constructor enforces strictly increasing positive weights, matching
    the paper's premise that upper layers are more expensive.
    """

    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("at least one link weight is required")
        if any(w <= 0 for w in self.weights):
            raise ValueError(f"link weights must be positive, got {self.weights}")
        if any(b <= a for a, b in zip(self.weights, self.weights[1:])):
            raise ValueError(
                f"link weights must be strictly increasing, got {self.weights}"
            )

    @classmethod
    def paper(cls) -> "LinkWeights":
        """The paper's §VI weights: c1 = e^0, c2 = e^1, c3 = e^3."""
        return cls(weights=(math.e**0, math.e**1, math.e**3))

    @classmethod
    def exponential(cls, max_level: int = 3, base: float = math.e) -> "LinkWeights":
        """Geometric weights ``c_i = base^(i-1)``."""
        if max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {max_level}")
        if base <= 1.0:
            raise ValueError(f"base must be > 1 for increasing weights, got {base}")
        return cls(weights=tuple(base ** (i - 1) for i in range(1, max_level + 1)))

    @classmethod
    def linear(cls, max_level: int = 3, step: float = 1.0) -> "LinkWeights":
        """Arithmetic weights ``c_i = i * step`` (ablation alternative)."""
        if max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {max_level}")
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        return cls(weights=tuple(step * i for i in range(1, max_level + 1)))

    @property
    def max_level(self) -> int:
        """Highest level these weights cover."""
        return len(self.weights)

    def weight(self, level: int) -> float:
        """``c_level`` for a 1-based level."""
        if not 1 <= level <= len(self.weights):
            raise ValueError(
                f"level must be in [1, {len(self.weights)}], got {level}"
            )
        return self.weights[level - 1]

    def path_weight(self, level: int) -> float:
        """Cost per unit traffic at communication level ``level``.

        Equals ``2 * Σ_{i=1..level} c_i`` — the full round of links a flow
        at that level traverses.  Level 0 (co-located) costs nothing.
        """
        if level == 0:
            return 0.0
        if not 1 <= level <= len(self.weights):
            raise ValueError(
                f"level must be in [0, {len(self.weights)}], got {level}"
            )
        return 2.0 * sum(self.weights[:level])


class CostModel:
    """Evaluates communication costs for allocations over a topology.

    Precomputes the cumulative path weights so every per-pair evaluation is
    a table lookup, making Eq. (2) O(#communicating pairs).
    """

    def __init__(self, topology: Topology, weights: Optional[LinkWeights] = None) -> None:
        self._topology = topology
        self._weights = weights or LinkWeights.paper()
        if self._weights.max_level < topology.max_level:
            raise ValueError(
                f"weights cover {self._weights.max_level} levels but topology "
                f"has {topology.max_level}"
            )
        self._path_weight = tuple(
            self._weights.path_weight(level)
            for level in range(topology.max_level + 1)
        )

    @property
    def topology(self) -> Topology:
        """The topology levels are computed against."""
        return self._topology

    @property
    def weights(self) -> LinkWeights:
        """The link weights in effect."""
        return self._weights

    def pair_cost(self, rate: float, level: int) -> float:
        """Cost contribution of one pair at ``level`` with rate λ."""
        return rate * self._path_weight[level]

    # -- Eq. (1) and Eq. (2) -----------------------------------------------------

    def vm_cost(self, allocation: Allocation, traffic: TrafficMatrix, vm_u: int) -> float:
        """C_A(u), Eq. (1): cost attributed to VM u under the allocation."""
        host_u = allocation.server_of(vm_u)
        topo = self._topology
        total = 0.0
        for peer, rate in traffic.peer_rates(vm_u).items():
            level = topo.level_between(host_u, allocation.server_of(peer))
            total += rate * self._path_weight[level]
        return total

    def total_cost(self, allocation: Allocation, traffic: TrafficMatrix) -> float:
        """C_A, Eq. (2): network-wide communication cost."""
        topo = self._topology
        total = 0.0
        for u, v, rate in traffic.pairs():
            level = topo.level_between(
                allocation.server_of(u), allocation.server_of(v)
            )
            total += rate * self._path_weight[level]
        return total

    def highest_level(self, allocation: Allocation, traffic: TrafficMatrix, vm_u: int) -> int:
        """l_A(u) = max over peers of l(u, v) (paper §II); 0 if no peers."""
        host_u = allocation.server_of(vm_u)
        topo = self._topology
        level = 0
        for peer in traffic.peers_of(vm_u):
            peer_level = topo.level_between(host_u, allocation.server_of(peer))
            if peer_level > level:
                level = peer_level
                if level == topo.max_level:
                    break
        return level

    # -- Lemma 3 / Theorem 1 --------------------------------------------------------

    def migration_delta(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        vm_u: int,
        target_host: int,
    ) -> float:
        """ΔC_A(u → x), Lemma 3: network-wide cost change of migrating u.

        Positive values are *reductions*.  Only VM u's peers contribute;
        everything needed is local to u, which is the crux of S-CORE's
        scalability argument.
        """
        source_host = allocation.server_of(vm_u)
        if source_host == target_host:
            return 0.0
        topo = self._topology
        delta = 0.0
        for peer, rate in traffic.peer_rates(vm_u).items():
            peer_host = allocation.server_of(peer)
            before = topo.level_between(peer_host, source_host)
            after = topo.level_between(peer_host, target_host)
            delta += rate * (self._path_weight[before] - self._path_weight[after])
        return delta

    def should_migrate(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        vm_u: int,
        target_host: int,
        migration_cost: float = 0.0,
    ) -> bool:
        """Theorem 1: migrate iff the cost reduction exceeds ``migration_cost``."""
        if migration_cost < 0:
            raise ValueError(f"migration_cost must be >= 0, got {migration_cost}")
        return (
            self.migration_delta(allocation, traffic, vm_u, target_host)
            > migration_cost
        )

    # -- diagnostics ----------------------------------------------------------------

    def cost_by_level(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> Dict[int, float]:
        """Break the network-wide cost down by communication level."""
        topo = self._topology
        breakdown: Dict[int, float] = {
            level: 0.0 for level in range(topo.max_level + 1)
        }
        for u, v, rate in traffic.pairs():
            level = topo.level_between(
                allocation.server_of(u), allocation.server_of(v)
            )
            breakdown[level] += rate * self._path_weight[level]
        return breakdown

    def traffic_by_level(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> Dict[int, float]:
        """Aggregate rate per communication level (unweighted)."""
        topo = self._topology
        breakdown: Dict[int, float] = {
            level: 0.0 for level in range(topo.max_level + 1)
        }
        for u, v, rate in traffic.pairs():
            level = topo.level_between(
                allocation.server_of(u), allocation.server_of(v)
            )
            breakdown[level] += rate
        return breakdown
