"""S-CORE: the paper's primary contribution.

* :mod:`repro.core.cost` — link weights and the communication-cost function
  (Eq. 1–2) plus the migration delta (Lemmas 1–3).
* :mod:`repro.core.token` — the token wire format (§V-A: 32-bit VM ID +
  8-bit highest communication level per entry, ascending ID order).
* :mod:`repro.core.policies` — Round-Robin and Highest-Level-First token
  passing (§V-A, Algorithm 1), plus two extra policies from the companion
  technical report's design space.
* :mod:`repro.core.migration` — the Theorem 1 migration condition, target
  search with capacity/bandwidth probing (§V-B5, §V-C).
* :mod:`repro.core.scheduler` — the distributed control loop: token
  circulation, unilateral decisions, iteration accounting.
* :mod:`repro.core.fastcost` — the array-backed engine computing the same
  quantities over CSR numpy snapshots with incremental Lemma 3 caches,
  which is what makes paper-scale (2560-host) runs affordable; also the
  population-matrix helpers (``population_cost``, ``population_repair``,
  ``tournament_select``, ``apply_swap_mutations``) the GA baseline batches
  whole generations through.
"""

from repro.core.cost import CostModel, LinkWeights
from repro.core.fastcost import (
    FastCostEngine,
    TrafficSnapshot,
    apply_swap_mutations,
    assignment_cost,
    engine_from_cost_model,
    pair_levels,
    path_weight_table,
    population_cost,
    population_counts,
    population_feasible,
    population_repair,
    tournament_select,
)
from repro.core.token import Token, TokenEntry, MAX_LEVEL_VALUE
from repro.core.policies import (
    HighestLevelFirstPolicy,
    LeastRecentlyVisitedPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    TokenPolicy,
    policy_by_name,
)
from repro.core.migration import (
    MigrationDecision,
    MigrationEngine,
)
from repro.core.scheduler import IterationStats, SCOREScheduler, SchedulerReport

__all__ = [
    "CostModel",
    "LinkWeights",
    "FastCostEngine",
    "TrafficSnapshot",
    "apply_swap_mutations",
    "assignment_cost",
    "engine_from_cost_model",
    "pair_levels",
    "path_weight_table",
    "population_cost",
    "population_counts",
    "population_feasible",
    "population_repair",
    "tournament_select",
    "Token",
    "TokenEntry",
    "MAX_LEVEL_VALUE",
    "TokenPolicy",
    "RoundRobinPolicy",
    "HighestLevelFirstPolicy",
    "RandomPolicy",
    "LeastRecentlyVisitedPolicy",
    "policy_by_name",
    "MigrationDecision",
    "MigrationEngine",
    "SCOREScheduler",
    "IterationStats",
    "SchedulerReport",
]
