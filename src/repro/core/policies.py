"""Token-passing policies (paper §V-A).

The VM currently holding the token decides whether to migrate, then passes
the token on according to the policy in force.  The paper evaluates two
policies — Round-Robin and Highest-Level-First (Algorithm 1) — and refers
to a broader design space in its companion technical report [21]; two
additional members of that space (:class:`RandomPolicy` and
:class:`LeastRecentlyVisitedPolicy`) are provided for the ablation benches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional

from repro.cluster.allocation import Allocation
from repro.core.cost import CostModel
from repro.core.token import Token
from repro.traffic.matrix import TrafficMatrix
from repro.util.rng import SeedLike, make_rng


class TokenPolicy(ABC):
    """Strategy deciding which VM receives the token next."""

    #: Short name used in experiment configs and bench output.
    name: str = "abstract"

    def on_hold(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> None:
        """Update token state while ``vm_u`` holds it.

        Called *after* the migration decision, so level updates reflect the
        post-decision placement.  Default: no token state is maintained.
        """

    @abstractmethod
    def next_vm(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> int:
        """Return the VM the token should be passed to."""

    # -- round-order snapshot API (wave-batched rounds) ------------------------

    def round_order(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> Optional[List[int]]:
        """Snapshot of one full round's visit order starting at ``vm_u``.

        Policies whose order is known (or can be frozen) at round start
        return the |V|-entry visit list the wave-batched scheduler uses;
        ``None`` (the default) declares the order unknowable up front, and
        the scheduler falls back to the per-hold reference loop.
        """
        return None

    def end_round(
        self,
        token: Token,
        order: List[int],
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> int:
        """Close a batched round and return the next round's first holder.

        Called once per wave-batched round in place of the |V| per-hold
        ``on_hold`` calls; policies refresh whatever token state those
        calls would have maintained.  Default: no state, next holder is
        the cyclic successor of the last VM visited.
        """
        return token.successor(order[-1])

    #: Per-wave token refresh hook for wave-batched rounds.  Policies that
    #: maintain token state mid-round (HLF's Algorithm 1 estimates) override
    #: this with a method ``(token, vm_ids, allocation, traffic, cost_model)``
    #: invoked after every applied wave with the holds settled in it; ``None``
    #: (the default) skips the callback entirely.
    wave_refresh = None


class RoundRobinPolicy(TokenPolicy):
    """§V-A1: circulate the token in ascending VM-ID order, wrapping."""

    name = "round_robin"

    def next_vm(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> int:
        return token.successor(vm_u)

    def round_order(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> Optional[List[int]]:
        """RR's order is exactly the ascending cyclic rotation from u."""
        return token.rotation_from(vm_u)


class HighestLevelFirstPolicy(TokenPolicy):
    """§V-A2 / Algorithm 1: prioritize VMs communicating over high layers.

    While holding the token, VM u refreshes its own entry with its actual
    highest communication level and raises its peers' entries to at least
    ``l(u, v)`` (estimates only ever increase until the VM itself refreshes
    them).  The token then goes to the next *unchecked* VM — in cyclic ID
    order after u — whose recorded level equals the current level ``cl``,
    scanning ``cl`` downwards.  When every VM has been checked in the
    current round (Algorithm 1's "No unchecked VMs are left"), the round
    resets and the token restarts from the lowest-ID VM among those at the
    maximum recorded level (line 16).  The checked set is what prevents the
    token from ping-ponging between two high-level VMs that cannot migrate.
    """

    name = "highest_level_first"

    def __init__(self) -> None:
        self._checked: set = set()
        # Per-level sorted buckets of *unchecked* VM IDs, mirroring the
        # token's recorded levels minus the checked set.  Successor queries
        # are then one bisect per level — O(log n + levels) per hold —
        # instead of the naive O(|V|) cyclic ID scan (which survives in the
        # differential test as the reference oracle).
        self._unchecked: Dict[int, List[int]] = {}
        self._synced_token: Optional[Token] = None
        self._synced_version: Optional[int] = None

    def on_hold(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> None:
        self._sync(token)
        if vm_u not in self._checked:
            self._checked.add(vm_u)
            self._bucket_discard(token.level_of(vm_u), vm_u)
        token.set_level(vm_u, cost_model.highest_level(allocation, traffic, vm_u))
        host_u = allocation.server_of(vm_u)
        for peer in traffic.peers_of(vm_u):
            if peer in token:
                level = cost_model.topology.level_between(
                    host_u, allocation.server_of(peer)
                )
                old = token.level_of(peer)
                if token.raise_level(peer, level) and peer not in self._checked:
                    self._bucket_discard(old, peer)
                    self._bucket_add(level, peer)
        self._synced_version = token.version

    def next_vm(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> int:
        self._sync(token)
        # Scan current level downwards; within a level, cyclic ID order
        # starting just after u (the paper's z ← u ⊕ 1), skipping VMs
        # already checked this round.
        for level in range(token.level_of(vm_u), -1, -1):
            candidate = self._next_unchecked_at_level(vm_u, level)
            if candidate is not None:
                return candidate
        # Also consider unchecked VMs recorded *above* the holder's level
        # (stale overestimates still deserve their turn this round).
        for level in range(token.max_recorded_level(), token.level_of(vm_u), -1):
            candidate = self._next_unchecked_at_level(vm_u, level)
            if candidate is not None:
                return candidate
        # No unchecked VMs are left: new round.  Line 16 fallback — lowest
        # ID among the VMs recorded at the maximum level.
        self._checked.clear()
        self._rebuild(token)
        top = token.max_recorded_level()
        return min(token.vms_at_level(top))

    def round_order(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> Optional[List[int]]:
        """Priority snapshot of Algorithm 1's order for a batched round.

        The live algorithm re-consults the (mutating) level estimates at
        every hop; a batched round freezes them once: the current holder
        first, then every other VM by recorded level descending, cyclic ID
        order after the holder within a level.  This is the §V-A2 priority
        *as of round start* — the order Algorithm 1 would follow if no
        estimate changed mid-round; estimates are instead refreshed in one
        pass by :meth:`end_round`.
        """
        ids = [vm for vm in token.vm_ids if vm != vm_u]
        ids.sort(key=lambda v: (-token.level_of(v), v <= vm_u, v))
        order = [vm_u] if vm_u in token else []
        return order + ids

    def wave_refresh(
        self,
        token: Token,
        vm_ids: List[int],
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> None:
        """Algorithm 1's raise-only estimate updates, batched per wave.

        Applied after each wave of a batched round for the holds settled
        in it: every settled VM writes its *measured* highest level into
        its own token entry (Algorithm 1 line 4) and raises each peer's
        entry to at least ``l(u, v)`` (the raise-only rule) — so the
        token's estimates track the live per-hold policy wave by wave
        instead of only at round end.  The round's visit order is already
        frozen, so this changes mid-round token *state*, not the round's
        decisions; :meth:`end_round`'s bulk measured refresh still runs
        (it is at least as fresh as these estimates).
        """
        if not vm_ids:
            return
        present = [vm for vm in vm_ids if vm in token]
        if not present:
            return
        if hasattr(cost_model, "wave_level_updates"):
            fast = cost_model
            own, peer_dense, raise_to = fast.wave_level_updates(
                fast.dense_indices(present)
            )
            peer_ids = fast.snapshot.vm_ids[peer_dense]
            token.raise_levels(
                {
                    int(v): int(l)
                    for v, l in zip(peer_ids, raise_to)
                    if int(v) in token
                }
            )
            token.set_levels(
                {vm: int(l) for vm, l in zip(present, own)}
            )
            return
        raises: Dict[int, int] = {}
        for vm_u in present:
            host_u = allocation.server_of(vm_u)
            for peer in traffic.peers_of(vm_u):
                if peer in token:
                    level = cost_model.topology.level_between(
                        host_u, allocation.server_of(peer)
                    )
                    if level > raises.get(peer, -1):
                        raises[peer] = level
        token.raise_levels(raises)
        token.set_levels(
            {
                vm: cost_model.highest_level(allocation, traffic, vm)
                for vm in present
            }
        )

    def end_round(
        self,
        token: Token,
        order: List[int],
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> int:
        """Refresh every level estimate; restart at the top level's lowest ID.

        Every VM was visited this round, so instead of replaying |V|
        ``on_hold`` updates the policy records each VM's *measured*
        highest level (at the post-round placement) in one bulk write —
        at least as fresh as Algorithm 1's raise-only estimates — resets
        the checked set, and hands the token to the lowest-ID VM at the
        maximum recorded level (Algorithm 1 line 16).
        """
        if hasattr(cost_model, "highest_levels"):
            # Vectorized: one pass over the engine's pair arrays.
            levels = cost_model.highest_levels()
            vm_ids = cost_model.snapshot.vm_ids
            token.set_levels(
                {int(v): int(l) for v, l in zip(vm_ids, levels) if int(v) in token}
            )
        else:
            token.set_levels(
                {
                    vm: cost_model.highest_level(allocation, traffic, vm)
                    for vm in token.vm_ids
                }
            )
        self._checked.clear()
        self._rebuild(token)
        return min(token.vms_at_level(token.max_recorded_level()))

    def _next_unchecked_at_level(self, vm_u: int, level: int) -> Optional[int]:
        """First unchecked VM after u (cyclically) recorded at ``level``."""
        bucket = self._unchecked.get(level)
        if not bucket:
            return None
        start = bisect_right(bucket, vm_u)
        for index in range(start, start + len(bucket)):
            candidate = bucket[index % len(bucket)]
            if candidate != vm_u:
                return candidate
        return None

    # -- unchecked-bucket maintenance ------------------------------------------

    def _sync(self, token: Token) -> None:
        """Rebuild the unchecked buckets if the token mutated out-of-band.

        The policy tracks its own mutations via the token's version
        counter; any other writer (tests priming levels, churn handlers)
        invalidates the derived buckets and triggers one O(n) rebuild.
        """
        if (
            token is not self._synced_token
            or token.version != self._synced_version
        ):
            self._rebuild(token)

    def _rebuild(self, token: Token) -> None:
        self._unchecked = {}
        for level in token.levels_present():
            bucket = [
                vm_id
                for vm_id in token.vms_at_level(level)
                if vm_id not in self._checked
            ]
            if bucket:
                self._unchecked[level] = bucket
        self._synced_token = token
        self._synced_version = token.version

    def _bucket_add(self, level: int, vm_id: int) -> None:
        bucket = self._unchecked.get(level)
        if bucket is None:
            self._unchecked[level] = [vm_id]
        else:
            insort(bucket, vm_id)

    def _bucket_discard(self, level: int, vm_id: int) -> None:
        bucket = self._unchecked.get(level)
        if not bucket:
            return
        index = bisect_left(bucket, vm_id)
        if index < len(bucket) and bucket[index] == vm_id:
            if len(bucket) == 1:
                del self._unchecked[level]
            else:
                del bucket[index]


class RandomPolicy(TokenPolicy):
    """Pass the token to a uniformly random other VM (TR design space)."""

    name = "random"

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = make_rng(seed)

    def next_vm(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> int:
        ids = token.vm_ids
        if len(ids) == 1:
            return ids[0]
        while True:
            candidate = ids[int(self._rng.integers(0, len(ids)))]
            if candidate != vm_u:
                return candidate


class LeastRecentlyVisitedPolicy(TokenPolicy):
    """Pass the token to the VM that has waited longest (TR design space).

    Fairness-first alternative: guarantees bounded token starvation even
    when HLF would keep revisiting a hot clique.  Ties break by ascending
    VM ID, so behaviour is deterministic.
    """

    name = "least_recently_visited"

    def __init__(self) -> None:
        self._last_visit: Dict[int, int] = {}
        self._clock = 0

    def on_hold(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> None:
        self._clock += 1
        self._last_visit[vm_u] = self._clock

    def next_vm(
        self,
        token: Token,
        vm_u: int,
        allocation: Allocation,
        traffic: TrafficMatrix,
        cost_model: CostModel,
    ) -> int:
        best: Optional[int] = None
        best_key = None
        for vm_id in token.vm_ids:
            if vm_id == vm_u and len(token) > 1:
                continue
            key = (self._last_visit.get(vm_id, 0), vm_id)
            if best_key is None or key < best_key:
                best, best_key = vm_id, key
        assert best is not None
        return best


def policy_by_name(name: str, seed: SeedLike = None) -> TokenPolicy:
    """Instantiate a policy by its short name."""
    if name == RoundRobinPolicy.name or name == "rr":
        return RoundRobinPolicy()
    if name == HighestLevelFirstPolicy.name or name == "hlf":
        return HighestLevelFirstPolicy()
    if name == RandomPolicy.name:
        return RandomPolicy(seed)
    if name == LeastRecentlyVisitedPolicy.name or name == "lrv":
        return LeastRecentlyVisitedPolicy()
    raise ValueError(
        f"unknown token policy {name!r}; known: rr/round_robin, "
        f"hlf/highest_level_first, random, lrv/least_recently_visited"
    )
