"""S-CORE under drifting traffic: the stability/oscillation study (§VI-B).

The paper argues S-CORE does not oscillate because (a) rates are averaged
over a long window and (b) DC hotspots move slowly.  ``run_dynamic``
re-estimates the traffic matrix every epoch (via a
:class:`repro.traffic.temporal.HotspotDriftProcess`), lets S-CORE react,
and reports per-epoch migration counts plus an *oscillation index*: the
fraction of migrations that return a VM to a host it previously left —
exactly the ping-pong behaviour a stable algorithm must avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.migration import MigrationEngine
from repro.core.policies import TokenPolicy
from repro.core.scheduler import SCOREScheduler, SchedulerReport
from repro.sim.experiment import Environment
from repro.traffic.temporal import HotspotDriftProcess
from repro.util.validation import check_positive


@dataclass
class DynamicRunResult:
    """Outcome of a multi-epoch run over drifting traffic."""

    epoch_reports: List[SchedulerReport] = field(default_factory=list)
    migrations_per_epoch: List[int] = field(default_factory=list)
    returning_per_epoch: List[int] = field(default_factory=list)
    returning_migrations: int = 0
    total_migrations: int = 0

    @property
    def oscillation_index(self) -> float:
        """Fraction of migrations returning a VM to a previously-left host."""
        if self.total_migrations == 0:
            return 0.0
        return self.returning_migrations / self.total_migrations

    @property
    def settled(self) -> bool:
        """Whether the final epoch needed no migrations at all."""
        return bool(self.migrations_per_epoch) and self.migrations_per_epoch[-1] == 0


def count_returning_migrations(decisions, former_hosts: Dict[int, Set[int]]) -> int:
    """Count migrations that return a VM to a host it previously left.

    ``former_hosts`` (VM → hosts it has departed) carries across calls, so
    feeding one epoch's decisions at a time yields per-epoch returning
    counts against the full history.  Histories are strictly per-VM: the
    wave-batched scheduler applies a round's migrations as simultaneous
    ``Allocation.migrate_many`` batches, so another VM vacating a host in
    the same batch must never make a landing there count as a "return" —
    only the VM's *own* earlier departures do.  A VM moves at most once
    per round and the report lists rounds in order, so its decisions are
    chronological regardless of how waves interleaved within a round.
    """
    returning = 0
    for decision in decisions:
        if not decision.migrated:
            continue
        history = former_hosts.setdefault(decision.vm_id, set())
        if decision.target_host in history:
            returning += 1
        history.add(decision.source_host)
    return returning


def run_dynamic(
    environment: Environment,
    policy: TokenPolicy,
    engine: MigrationEngine,
    epochs: int = 5,
    iterations_per_epoch: int = 2,
    noise: float = 0.1,
    redirect_prob: float = 0.05,
    seed: int = 0,
) -> DynamicRunResult:
    """Run S-CORE across ``epochs`` traffic re-estimation windows.

    Epoch 0 uses the environment's base matrix; each later epoch advances
    a hotspot-drift process and feeds its change list through the
    scheduler's incremental delta path
    (:meth:`~repro.core.scheduler.SCOREScheduler.apply_traffic_delta`) —
    modelling the sliding-window re-estimation of §IV without ever
    rebuilding the engine state — then re-runs the token loop.  The
    environment's traffic matrix is advanced in place.

    For richer dynamics (diurnal swings, tenant churn, maintenance
    drains) use the declarative scenario layer:
    ``repro.scenarios.run_scenario``.
    """
    check_positive("epochs", epochs)
    check_positive("iterations_per_epoch", iterations_per_epoch)
    scheduler = SCOREScheduler(
        environment.allocation, environment.traffic, policy, engine
    )
    drift = HotspotDriftProcess(
        environment.traffic, noise=noise, redirect_prob=redirect_prob, seed=seed
    )
    result = DynamicRunResult()
    # Hosts each VM has ever left; revisiting one counts as oscillation.
    former_hosts: Dict[int, Set[int]] = {}
    for epoch in range(epochs):
        if epoch > 0:
            delta = drift.step_delta()
            if delta:
                scheduler.apply_traffic_delta(delta)
        report = scheduler.run(n_iterations=iterations_per_epoch)
        returning = count_returning_migrations(report.decisions, former_hosts)
        result.total_migrations += report.total_migrations
        result.returning_migrations += returning
        result.epoch_reports.append(report)
        result.migrations_per_epoch.append(report.total_migrations)
        result.returning_per_epoch.append(returning)
    return result
