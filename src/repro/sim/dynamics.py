"""S-CORE under drifting traffic: the stability/oscillation study (§VI-B).

The paper argues S-CORE does not oscillate because (a) rates are averaged
over a long window and (b) DC hotspots move slowly.  ``run_dynamic``
re-estimates the traffic matrix every epoch (via a
:class:`repro.traffic.temporal.HotspotDriftProcess`), lets S-CORE react,
and reports per-epoch migration counts plus an *oscillation index*: the
fraction of migrations that return a VM to a host it previously left —
exactly the ping-pong behaviour a stable algorithm must avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.migration import MigrationEngine
from repro.core.policies import TokenPolicy
from repro.core.scheduler import SCOREScheduler, SchedulerReport
from repro.sim.experiment import Environment
from repro.traffic.temporal import HotspotDriftProcess
from repro.util.validation import check_positive


@dataclass
class DynamicRunResult:
    """Outcome of a multi-epoch run over drifting traffic."""

    epoch_reports: List[SchedulerReport] = field(default_factory=list)
    migrations_per_epoch: List[int] = field(default_factory=list)
    returning_migrations: int = 0
    total_migrations: int = 0

    @property
    def oscillation_index(self) -> float:
        """Fraction of migrations returning a VM to a previously-left host."""
        if self.total_migrations == 0:
            return 0.0
        return self.returning_migrations / self.total_migrations

    @property
    def settled(self) -> bool:
        """Whether the final epoch needed no migrations at all."""
        return bool(self.migrations_per_epoch) and self.migrations_per_epoch[-1] == 0


def run_dynamic(
    environment: Environment,
    policy: TokenPolicy,
    engine: MigrationEngine,
    epochs: int = 5,
    iterations_per_epoch: int = 2,
    noise: float = 0.1,
    redirect_prob: float = 0.05,
    seed: int = 0,
) -> DynamicRunResult:
    """Run S-CORE across ``epochs`` traffic re-estimation windows.

    Epoch 0 uses the environment's base matrix; each later epoch draws the
    next matrix from a hotspot-drift process, models the sliding-window
    re-estimation of §IV, and re-runs the token loop.
    """
    check_positive("epochs", epochs)
    check_positive("iterations_per_epoch", iterations_per_epoch)
    scheduler = SCOREScheduler(
        environment.allocation, environment.traffic, policy, engine
    )
    drift = HotspotDriftProcess(
        environment.traffic, noise=noise, redirect_prob=redirect_prob, seed=seed
    )
    result = DynamicRunResult()
    # Hosts each VM has ever left; revisiting one counts as oscillation.
    former_hosts: Dict[int, Set[int]] = {}
    for epoch in range(epochs):
        if epoch > 0:
            scheduler.update_traffic(drift.step())
        report = scheduler.run(n_iterations=iterations_per_epoch)
        migrations = 0
        for decision in report.decisions:
            if not decision.migrated:
                continue
            migrations += 1
            result.total_migrations += 1
            history = former_hosts.setdefault(decision.vm_id, set())
            if decision.target_host in history:
                result.returning_migrations += 1
            history.add(decision.source_host)
        result.epoch_reports.append(report)
        result.migrations_per_epoch.append(migrations)
    return result
