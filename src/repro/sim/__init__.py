"""Simulation harness: link loads, metrics, experiments, dynamics.

:mod:`repro.sim.network`
    Routes every traffic-matrix pair over the topology (deterministic ECMP)
    and accounts per-link loads/utilizations — the data behind Fig. 4a.
:mod:`repro.sim.metrics`
    Utilization CDFs per layer, convergence detection, series resampling.
:mod:`repro.sim.experiment`
    Declarative experiment configs and the runner used by every benchmark:
    build topology + cluster + VMs + traffic, run S-CORE (and optionally the
    GA reference), return the series the paper plots.
:mod:`repro.sim.dynamics`
    S-CORE under a drifting traffic matrix (stability / oscillation study).
:mod:`repro.sim.eventqueue`
    Continuous-time event-queue runner: timestamped arrival/retirement/
    drift/failure events injected between waves of in-flight rounds.
"""

from repro.sim.network import LinkLoadCalculator
from repro.sim.metrics import (
    convergence_iteration,
    resample_series,
    utilization_cdf_by_level,
)
from repro.sim.experiment import (
    ExperimentConfig,
    ExperimentResult,
    build_environment,
    run_experiment,
)
from repro.sim.dynamics import DynamicRunResult, run_dynamic
from repro.sim.eventqueue import (
    AppliedEvent,
    Arrival,
    BandwidthCrunch,
    CapacityChange,
    Event,
    EventQueueRunner,
    Outage,
    Restore,
    Retirement,
    TrafficSurge,
)
from repro.sim.fairshare import (
    FairShareResult,
    FlowAllocation,
    MaxMinFairAllocator,
)
from repro.sim.energy import EnergyModel, energy_link_weights

__all__ = [
    "LinkLoadCalculator",
    "utilization_cdf_by_level",
    "convergence_iteration",
    "resample_series",
    "ExperimentConfig",
    "ExperimentResult",
    "build_environment",
    "run_experiment",
    "DynamicRunResult",
    "run_dynamic",
    "EventQueueRunner",
    "AppliedEvent",
    "Event",
    "Arrival",
    "Retirement",
    "TrafficSurge",
    "CapacityChange",
    "Outage",
    "Restore",
    "BandwidthCrunch",
    "MaxMinFairAllocator",
    "FairShareResult",
    "FlowAllocation",
    "EnergyModel",
    "energy_link_weights",
]
