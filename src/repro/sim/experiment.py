"""Declarative experiment configs and the runner behind every benchmark.

An :class:`ExperimentConfig` names everything the paper's §VI setup names:
topology family and scale, per-server VM slots, workload pattern, initial
placement, token policy, migration cost and iteration budget.
:func:`run_experiment` builds the environment, runs S-CORE, optionally runs
the GA reference from the *same initial allocation*, and packages the
series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.baselines.ga import GAConfig, GAResult, GeneticOptimizer
from repro.cluster.cluster import Cluster
from repro.cluster.manager import PlacementManager
from repro.cluster.placement import place_by_name
from repro.cluster.server import ServerCapacity
from repro.core.cost import CostModel, LinkWeights
from repro.core.migration import MigrationEngine
from repro.core.policies import policy_by_name
from repro.core.scheduler import SchedulerReport, SCOREScheduler
from repro.sim.network import LinkLoadCalculator
from repro.topology.fattree import FatTree
from repro.topology.tree import CanonicalTree
from repro.traffic.generator import DCTrafficGenerator, pattern_by_name
from repro.util.validation import check_positive


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one evaluation run.

    The defaults describe a laptop-scale canonical tree; the classmethods
    produce the configurations of the paper's figures.
    """

    # Topology.
    topology: str = "canonical"  # "canonical" | "fattree"
    n_racks: int = 16
    hosts_per_rack: int = 4
    tors_per_agg: int = 4
    n_cores: int = 2
    fattree_k: int = 4
    # Cluster.
    vms_per_host: int = 8
    vm_ram_mb: int = 512
    vm_cpu: float = 0.25
    fill_fraction: float = 0.85
    # Workload.
    pattern: str = "sparse"  # "sparse" | "medium" | "dense"
    placement: str = "random"
    # Algorithm.
    policy: str = "hlf"  # "rr" | "hlf" | "random" | "lrv"
    weights: str = "paper"  # "paper" | "exponential" | "linear"
    migration_cost: float = 0.0
    bandwidth_threshold: Optional[float] = None
    n_iterations: int = 5
    token_interval_s: float = 1.0
    seed: int = 42
    # Engine: vectorized fast-cost engine (default) vs naive CostModel loops.
    fastcost: bool = True
    # Wave-batched token rounds (default) vs the per-hold reference loop;
    # only takes effect with fastcost and an order-known policy (rr/hlf).
    batched_rounds: bool = True
    # Hyperscale sharding (repro.shard): community-partitioned parallel
    # domains + cross-domain reconciliation.  Default off; requires
    # fastcost and the canonical-tree topology.
    sharding: bool = False
    # Domain cap for the partition (None: one per pod, at most 16).
    shard_domains: Optional[int] = None
    # Forked worker processes fanning the domains out (1 = in-process).
    shard_workers: int = 1
    # Compact (int32/float32) domain engines; the global gate stays float64.
    shard_compact: bool = False
    # Worker outcome transport: zero-copy shared-memory slabs ("shm",
    # default) or pickled pipes ("pipe").  Only matters with workers > 1.
    shard_transport: str = "shm"

    def __post_init__(self) -> None:
        if self.topology not in ("canonical", "fattree"):
            raise ValueError(
                f"topology must be 'canonical' or 'fattree', got {self.topology!r}"
            )
        check_positive("vms_per_host", self.vms_per_host)
        if not 0 < self.fill_fraction <= 1:
            raise ValueError(
                f"fill_fraction must be in (0, 1], got {self.fill_fraction}"
            )
        if self.shard_transport not in ("shm", "pipe"):
            raise ValueError(
                f"shard_transport must be 'shm' or 'pipe', "
                f"got {self.shard_transport!r}"
            )

    def with_(self, **changes) -> "ExperimentConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **changes)

    @classmethod
    def paper_canonical(cls, pattern: str = "sparse", **overrides) -> "ExperimentConfig":
        """The paper's canonical tree: 2560 hosts, 128 ToRs, 16 VM slots."""
        base = cls(
            topology="canonical",
            n_racks=128,
            hosts_per_rack=20,
            tors_per_agg=8,
            n_cores=4,
            vms_per_host=16,
            pattern=pattern,
        )
        return base.with_(**overrides) if overrides else base

    @classmethod
    def paper_fattree(cls, pattern: str = "sparse", **overrides) -> "ExperimentConfig":
        """The paper's fat-tree: k = 16 (1024 hosts), 16 VM slots."""
        base = cls(
            topology="fattree", fattree_k=16, vms_per_host=16, pattern=pattern
        )
        return base.with_(**overrides) if overrides else base


@dataclass
class Environment:
    """A fully built experiment environment (pre-run state)."""

    config: ExperimentConfig
    cluster: Cluster
    manager: PlacementManager
    allocation: object  # repro.cluster.allocation.Allocation
    traffic: object  # repro.traffic.matrix.TrafficMatrix
    cost_model: CostModel

    @property
    def topology(self):
        """The network topology of this environment."""
        return self.cluster.topology


def _build_topology(config: ExperimentConfig):
    if config.topology == "canonical":
        return CanonicalTree(
            n_racks=config.n_racks,
            hosts_per_rack=config.hosts_per_rack,
            tors_per_agg=config.tors_per_agg,
            n_cores=config.n_cores,
        )
    return FatTree(k=config.fattree_k)


def _build_weights(config: ExperimentConfig) -> LinkWeights:
    if config.weights == "paper":
        return LinkWeights.paper()
    if config.weights == "exponential":
        return LinkWeights.exponential()
    if config.weights == "linear":
        return LinkWeights.linear()
    raise ValueError(f"unknown weights scheme {config.weights!r}")


def build_environment(config: ExperimentConfig) -> Environment:
    """Construct topology, cluster, VM population, placement and traffic."""
    topology = _build_topology(config)
    # RAM/CPU sized so the slot limit is the binding constraint, as in the
    # paper's simulations.
    capacity = ServerCapacity(
        max_vms=config.vms_per_host,
        ram_mb=config.vms_per_host * config.vm_ram_mb,
        cpu=max(1.0, config.vms_per_host * config.vm_cpu),
    )
    cluster = Cluster(topology, capacity)
    manager = PlacementManager(cluster)
    n_vms = int(cluster.total_vm_slots * config.fill_fraction)
    if n_vms < 2:
        raise ValueError(
            "environment too small: fewer than 2 VMs; raise fill_fraction"
        )
    vms = manager.create_vms(n_vms, ram_mb=config.vm_ram_mb, cpu=config.vm_cpu)
    allocation = place_by_name(config.placement, cluster, vms, seed=config.seed)
    generator = DCTrafficGenerator(
        [vm.vm_id for vm in vms],
        pattern_by_name(config.pattern),
        seed=config.seed,
    )
    traffic = generator.generate()
    cost_model = CostModel(topology, _build_weights(config))
    return Environment(
        config=config,
        cluster=cluster,
        manager=manager,
        allocation=allocation,
        traffic=traffic,
        cost_model=cost_model,
    )


def make_scheduler(
    environment: Environment, config: Optional[ExperimentConfig] = None
) -> SCOREScheduler:
    """Build the S-CORE scheduler stack an :class:`ExperimentConfig` names.

    The one place the (migration engine, policy, scheduler) wiring lives:
    :func:`run_experiment`, the scenario runner and the CLI all construct
    their control loop here instead of hand-assembling it.  ``config``
    defaults to the environment's own.
    """
    config = config or environment.config
    engine = MigrationEngine(
        environment.cost_model,
        migration_cost=config.migration_cost,
        bandwidth_threshold=config.bandwidth_threshold,
    )
    return SCOREScheduler(
        environment.allocation,
        environment.traffic,
        policy_by_name(config.policy, seed=config.seed),
        engine,
        token_interval_s=config.token_interval_s,
        use_fastcost=config.fastcost,
        use_batched_rounds=config.batched_rounds,
        use_sharding=config.sharding,
        n_domains=config.shard_domains,
        n_workers=config.shard_workers,
        shard_compact=config.shard_compact,
        shard_transport=config.shard_transport,
        shard_policy_factory=(
            (lambda: policy_by_name(config.policy, seed=config.seed))
            if config.sharding
            else None
        ),
    )


@dataclass
class ExperimentResult:
    """Everything a benchmark needs to print a paper figure."""

    config: ExperimentConfig
    report: SchedulerReport
    initial_cost: float
    final_cost: float
    ga_result: Optional[GAResult] = None
    utilization_before: Dict[int, List[float]] = field(default_factory=dict)
    utilization_after: Dict[int, List[float]] = field(default_factory=dict)

    @property
    def reference_cost(self) -> float:
        """Best known (approximately optimal) cost.

        The GA output is an *approximation* of the optimum; occasionally
        S-CORE's own final allocation beats it, in which case that tighter
        bound is used — the paper's "we assume results achieved by GA
        approximation are optimal" only makes sense with the best bound
        available.
        """
        if self.ga_result is not None:
            return min(self.ga_result.best_cost, self.final_cost)
        return self.final_cost

    def cost_ratio_series(self) -> List[Tuple[float, float]]:
        """Cost(t) / GA-optimal — the paper's Fig. 3d-i y-axis."""
        return self.report.cost_ratio_series(self.reference_cost)

    @property
    def reduction_vs_optimal(self) -> float:
        """Fraction of the *possible* (GA-optimal) reduction achieved.

        The paper's headline "up to 87% of the optimal" metric:
        (initial - final) / (initial - optimal).  When no reduction was
        achievable (reference >= initial) the run scores 1.0 if it held the
        line and 0.0 if it *regressed* (final > initial) — a regression is
        never "100% of optimal".
        """
        achieved = self.initial_cost - self.final_cost
        achievable = self.initial_cost - self.reference_cost
        if achievable <= 0:
            return 1.0 if achieved >= 0 else 0.0
        return achieved / achievable


def run_experiment(
    config: ExperimentConfig,
    compute_ga: bool = False,
    ga_config: Optional[GAConfig] = None,
    compute_utilization: bool = False,
    environment: Optional[Environment] = None,
) -> ExperimentResult:
    """Run S-CORE per ``config``; optionally GA reference and link stats.

    When ``environment`` is supplied it is used (and mutated) instead of
    building a fresh one — callers comparing policies on identical starts
    should pass copies.
    """
    env = environment or build_environment(config)
    calculator = LinkLoadCalculator(env.topology)
    utilization_before: Dict[int, List[float]] = {}
    if compute_utilization:
        utilization_before = calculator.utilizations_by_level(
            env.allocation, env.traffic
        )

    ga_result = None
    if compute_ga:
        ga = GeneticOptimizer(
            env.allocation,
            env.traffic,
            env.cost_model,
            ga_config or GAConfig(seed=config.seed),
        )
        ga_result = ga.run()

    scheduler = make_scheduler(env, config)
    try:
        report = scheduler.run(n_iterations=config.n_iterations)
    finally:
        scheduler.close()

    utilization_after: Dict[int, List[float]] = {}
    if compute_utilization:
        utilization_after = calculator.utilizations_by_level(
            env.allocation, env.traffic
        )

    return ExperimentResult(
        config=config,
        report=report,
        initial_cost=report.initial_cost,
        final_cost=report.final_cost,
        ga_result=ga_result,
        utilization_before=utilization_before,
        utilization_after=utilization_after,
    )
