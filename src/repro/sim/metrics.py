"""Metric helpers for the evaluation harness."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.scheduler import SchedulerReport
from repro.util.stats import Cdf, empirical_cdf


def utilization_cdf_by_level(
    utils_by_level: Dict[int, List[float]]
) -> Dict[int, Cdf]:
    """Empirical CDF of link utilization per layer (the Fig. 4a curves)."""
    return {
        level: empirical_cdf(values)
        for level, values in utils_by_level.items()
        if values
    }


def convergence_iteration(report: SchedulerReport, tolerance: float = 0.0) -> int:
    """First iteration index from which the migrated ratio stays <= tolerance.

    Fig. 2's claim is that this is typically 2-3.  Returns one past the last
    iteration when the run never settles within the recorded horizon.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    settled_from = len(report.iterations) + 1
    for stats in reversed(report.iterations):
        if stats.migrated_ratio <= tolerance:
            settled_from = stats.index
        else:
            break
    return settled_from


def resample_series(
    series: Sequence[Tuple[float, float]], times: Sequence[float]
) -> List[Tuple[float, float]]:
    """Step-interpolate a (time, value) series onto a fixed time grid.

    The scheduler's cost series is piecewise constant (cost changes only at
    migrations), so the resampled value at time t is the last value at or
    before t.  Times before the first sample take the first value.
    """
    if not series:
        raise ValueError("cannot resample an empty series")
    out: List[Tuple[float, float]] = []
    idx = 0
    current = series[0][1]
    for t in times:
        while idx < len(series) and series[idx][0] <= t:
            current = series[idx][1]
            idx += 1
        out.append((float(t), current))
    return out


def series_final_value(series: Sequence[Tuple[float, float]]) -> float:
    """Last value of a (time, value) series."""
    if not series:
        raise ValueError("empty series has no final value")
    return series[-1][1]
