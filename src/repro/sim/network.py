"""Per-link load accounting (the data behind Fig. 4a).

Every communicating VM pair's rate is routed over the topology's
shortest-path links, with deterministic ECMP hashing on the (u, v) pair so
repeated evaluations are stable.  Loads are in bytes/second; utilizations
are the fraction of link capacity consumed (rates are converted to bits).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.cluster.allocation import Allocation
from repro.core.fastcost import TrafficSnapshot, pair_levels
from repro.topology.base import Topology
from repro.topology.links import LinkId
from repro.traffic.matrix import TrafficMatrix


def _pair_flow_key(vm_u: int, vm_v: int) -> int:
    """Stable ECMP key for an unordered VM pair."""
    lo, hi = (vm_u, vm_v) if vm_u < vm_v else (vm_v, vm_u)
    return (lo * 2654435761 + hi) & 0xFFFFFFFF


class LinkLoadCalculator:
    """Routes a traffic matrix over a topology and accounts link loads.

    ``flowlets`` controls ECMP spreading granularity: 1 routes each VM
    pair's aggregate over a single hash-selected path (flow-level ECMP,
    the default); k > 1 splits it evenly over k hash-derived sub-flows
    (flowlet/packet-spray approximation), which matters on the fat-tree
    where upper-layer capacity comes from path multiplicity.
    """

    def __init__(self, topology: Topology, flowlets: int = 1) -> None:
        if flowlets < 1:
            raise ValueError(f"flowlets must be >= 1, got {flowlets}")
        self._topology = topology
        self._flowlets = flowlets

    @property
    def topology(self) -> Topology:
        """The topology flows are routed over."""
        return self._topology

    @property
    def flowlets(self) -> int:
        """Number of ECMP sub-flows each pair is split into."""
        return self._flowlets

    def loads(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> Dict[LinkId, float]:
        """Per-link carried load in bytes/second (links with zero load omitted).

        Paths are enumerated vectorized for whole pair/flowlet arrays
        (:meth:`repro.topology.base.Topology.batch_path_link_indices`) and
        accumulated with one ``bincount`` over dense link indices — this is
        what makes Fig. 4a reproducible at the paper's 2560-host scale.
        Routing is identical to :meth:`loads_reference` (the retained
        per-pair loop), which the differential suite pins.
        """
        topo = self._topology
        pairs = list(traffic.pairs())
        if not pairs:
            return {}
        k = self._flowlets
        hosts_u = np.fromiter(
            (allocation.server_of(u) for u, _, _ in pairs),
            dtype=np.int64,
            count=len(pairs),
        )
        hosts_v = np.fromiter(
            (allocation.server_of(v) for _, v, _ in pairs),
            dtype=np.int64,
            count=len(pairs),
        )
        rates = np.fromiter(
            (rate for _, _, rate in pairs), dtype=float, count=len(pairs)
        )
        us = np.fromiter((u for u, _, _ in pairs), dtype=np.uint64, count=len(pairs))
        vs = np.fromiter((v for _, v, _ in pairs), dtype=np.uint64, count=len(pairs))
        lo, hi = np.minimum(us, vs), np.maximum(us, vs)
        base_keys = (lo * np.uint64(2654435761) + hi) & np.uint64(0xFFFFFFFF)
        # Flowlet sub-keys replicate the scalar ``base + sub * 0x9E3779B9``
        # (unmasked, as in the per-pair path) over a (k, pairs) grid.
        sub_keys = (
            base_keys[None, :]
            + (np.arange(k, dtype=np.uint64) * np.uint64(0x9E3779B9))[:, None]
        ).ravel()
        shares = np.tile(rates / k, k)
        link_idx, flow_idx = topo.batch_path_link_indices(
            np.tile(hosts_u, k), np.tile(hosts_v, k), sub_keys
        )
        dense_ids = topo.dense_link_ids()
        totals = np.bincount(
            link_idx, weights=shares[flow_idx], minlength=len(dense_ids)
        )
        return {
            dense_ids[i]: float(totals[i]) for i in np.nonzero(totals)[0]
        }

    def loads_reference(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> Dict[LinkId, float]:
        """The readable per-pair routing loop (differential reference).

        Routes every pair's flowlets through ``Topology.path_links`` one at
        a time; :meth:`loads` must aggregate to the same totals.
        """
        loads: Dict[LinkId, float] = {}
        topo = self._topology
        k = self._flowlets
        for u, v, rate in traffic.pairs():
            base_key = _pair_flow_key(u, v)
            share = rate / k
            for sub in range(k):
                path = topo.path_links(
                    allocation.server_of(u),
                    allocation.server_of(v),
                    flow_key=base_key + sub * 0x9E3779B9,
                )
                for link in path:
                    loads[link] = loads.get(link, 0.0) + share
        return loads

    def utilizations(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> Dict[LinkId, float]:
        """Per-link utilization (carried bits / capacity) for EVERY link.

        Idle links appear with utilization 0.0 — the Fig. 4a CDFs include
        them, which is what makes "most links are idle" visible.
        """
        loads = self.loads(allocation, traffic)
        return {
            link_id: 8.0 * loads.get(link_id, 0.0) / link.capacity_bps
            for link_id, link in self._topology.links.items()
        }

    def level_loads(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> Dict[int, float]:
        """Aggregate carried load per link level, in bytes/second.

        A flow at communication level ``l`` traverses exactly two links at
        every level ``i <= l`` (up and down), regardless of which ECMP path
        the hash picks, so the per-level totals are computed in one
        vectorized pass over the fast-engine pair arrays — no path
        enumeration.  Equals summing :meth:`loads` over the links of each
        level (the flowlet-spread variants included); the differential
        suite asserts exactly that.
        """
        snap = TrafficSnapshot.build(traffic, list(allocation.vm_ids()))
        topo = self._topology
        host_of = np.fromiter(
            (allocation.server_of(int(vm)) for vm in snap.vm_ids),
            dtype=np.int64,
            count=snap.n_vms,
        )
        levels = pair_levels(
            host_of[snap.pair_u],
            host_of[snap.pair_v],
            topo.host_rack_ids(),
            topo.host_pod_ids(),
        )
        totals: Dict[int, float] = {}
        for level in range(1, topo.max_level + 1):
            totals[level] = float(
                2.0 * snap.pair_rate[levels >= level].sum()
            )
        return totals

    def utilizations_by_level(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> Dict[int, List[float]]:
        """Utilization samples grouped by link level (1=edge .. 3=core)."""
        utils = self.utilizations(allocation, traffic)
        by_level: Dict[int, List[float]] = {}
        for link_id, value in utils.items():
            level = self._topology.link_level(link_id)
            by_level.setdefault(level, []).append(value)
        return by_level

    def max_utilization(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> float:
        """Highest utilization across all links (the congestion hotspot)."""
        utils = self.utilizations(allocation, traffic)
        return max(utils.values()) if utils else 0.0

    def most_utilized_link(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> Optional[Tuple[LinkId, float]]:
        """The link carrying the highest utilization, or None when idle."""
        utils = self.utilizations(allocation, traffic)
        if not utils:
            return None
        link_id = max(utils, key=lambda k: utils[k])
        if utils[link_id] == 0.0:
            return None
        return link_id, utils[link_id]

    def vm_contributions(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        link_id: LinkId,
    ) -> Dict[int, float]:
        """Per-VM rate crossing ``link_id`` (both endpoints contribute).

        This is what a centralized controller (Remedy) uses to rank VMs on
        a congested link.  Routed batched over the dense link index like
        :meth:`loads`; the retained per-pair loop survives as
        :meth:`vm_contributions_reference` (the differential oracle).
        """
        return self.vm_contributions_many(allocation, traffic, [link_id])[
            link_id
        ]

    def vm_contributions_many(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        link_ids: Sequence[LinkId],
    ) -> Dict[LinkId, Dict[int, float]]:
        """Per-VM contributions of several links from ONE routing pass.

        Routes every pair once through
        :meth:`repro.topology.base.Topology.batch_path_link_indices` and
        slices the requested links out of the dense index — what lets
        Remedy rank the VMs of every congested link per round without
        re-routing the whole matrix per link.  Like the reference, flows
        are attributed at flow level (the pair's single base-key path),
        matching :meth:`vm_contributions_reference` exactly.
        """
        result: Dict[LinkId, Dict[int, float]] = {
            link_id: {} for link_id in link_ids
        }
        topo = self._topology
        us, vs, rates = traffic.pair_arrays()
        if len(us) == 0 or not link_ids:
            return result
        hosts_u = np.fromiter(
            (allocation.server_of(int(u)) for u in us),
            dtype=np.int64,
            count=len(us),
        )
        hosts_v = np.fromiter(
            (allocation.server_of(int(v)) for v in vs),
            dtype=np.int64,
            count=len(vs),
        )
        keys = (
            us.astype(np.uint64) * np.uint64(2654435761) + vs.astype(np.uint64)
        ) & np.uint64(0xFFFFFFFF)
        link_idx, flow_idx = topo.batch_path_link_indices(
            hosts_u, hosts_v, keys
        )
        dense_index = topo.link_dense_index()
        # One grouping pass over the routed entries; each requested link is
        # then a binary-searched slice, and its per-VM sums one bincount
        # over the slice's (deduplicated) endpoint ids.
        order = np.argsort(link_idx, kind="stable")
        link_sorted = link_idx[order]
        flow_sorted = flow_idx[order]
        for link_id in link_ids:
            dense = dense_index.get(link_id)
            if dense is None:
                continue
            lo = np.searchsorted(link_sorted, dense, side="left")
            hi = np.searchsorted(link_sorted, dense, side="right")
            if lo == hi:
                continue
            pairs = flow_sorted[lo:hi]
            endpoints = np.concatenate([us[pairs], vs[pairs]])
            weights = np.tile(rates[pairs], 2)
            vm_ids, inverse = np.unique(endpoints, return_inverse=True)
            sums = np.bincount(inverse, weights=weights, minlength=len(vm_ids))
            result[link_id] = dict(zip(vm_ids.tolist(), sums.tolist()))
        return result

    def vm_contributions_reference(
        self,
        allocation: Allocation,
        traffic: TrafficMatrix,
        link_id: LinkId,
    ) -> Dict[int, float]:
        """The readable per-pair routing loop (differential reference)."""
        topo = self._topology
        contributions: Dict[int, float] = {}
        for u, v, rate in traffic.pairs():
            path = topo.path_links(
                allocation.server_of(u),
                allocation.server_of(v),
                flow_key=_pair_flow_key(u, v),
            )
            if link_id in path:
                contributions[u] = contributions.get(u, 0.0) + rate
                contributions[v] = contributions.get(v, 0.0) + rate
        return contributions
