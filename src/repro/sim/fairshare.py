"""Max-min fair flow throughput over the topology (congestion impact).

The cost function of §III counts *offered* load; it does not by itself say
how much congestion hurts the flows.  This module closes that loop: given
the pairwise demands and an allocation, it computes the **max-min fair**
rate allocation over the physical links (progressive filling: all flows
rise together, flows freeze when they hit their demand or when a link they
cross saturates).  Comparing aggregate satisfied demand before/after
S-CORE quantifies the paper's claim that localization "provid[es] the
operators with increased network capacity headroom".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cluster.allocation import Allocation
from repro.sim.network import _pair_flow_key
from repro.topology.base import Topology
from repro.topology.links import LinkId
from repro.traffic.matrix import TrafficMatrix

_EPSILON = 1e-12


@dataclass(frozen=True)
class FlowAllocation:
    """Achieved rate of one VM pair's aggregate flow."""

    vm_u: int
    vm_v: int
    demand: float
    achieved: float

    @property
    def satisfaction(self) -> float:
        """achieved / demand in [0, 1]."""
        if self.demand <= 0:
            return 1.0
        return min(1.0, self.achieved / self.demand)


@dataclass
class FairShareResult:
    """Outcome of the max-min fair computation."""

    flows: List[FlowAllocation]
    bottleneck_links: List[LinkId]

    @property
    def total_demand(self) -> float:
        """Aggregate offered load (bytes/s)."""
        return sum(f.demand for f in self.flows)

    @property
    def total_achieved(self) -> float:
        """Aggregate satisfied load (bytes/s)."""
        return sum(f.achieved for f in self.flows)

    @property
    def mean_satisfaction(self) -> float:
        """Mean per-flow satisfaction."""
        if not self.flows:
            return 1.0
        return sum(f.satisfaction for f in self.flows) / len(self.flows)

    @property
    def fully_satisfied_fraction(self) -> float:
        """Fraction of flows achieving their full demand."""
        if not self.flows:
            return 1.0
        return sum(
            1 for f in self.flows if f.satisfaction >= 1.0 - 1e-9
        ) / len(self.flows)


class MaxMinFairAllocator:
    """Progressive-filling max-min fair allocation of pair demands."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    def allocate(
        self, allocation: Allocation, traffic: TrafficMatrix
    ) -> FairShareResult:
        """Compute the fair rates for every communicating pair.

        Co-located pairs traverse no links and always receive their full
        demand.  Rates are in bytes/s; link capacities in bits/s.
        """
        topo = self._topology
        flows: List[Tuple[int, int, float, Tuple[LinkId, ...]]] = []
        for u, v, rate in traffic.pairs():
            path = topo.path_links(
                allocation.server_of(u),
                allocation.server_of(v),
                flow_key=_pair_flow_key(u, v),
            )
            flows.append((u, v, rate, path))

        achieved = [0.0] * len(flows)
        active = [i for i, (_, _, demand, path) in enumerate(flows) if path and demand > 0]
        # Pre-index: which active flows cross each link.
        link_flows: Dict[LinkId, List[int]] = {}
        for i in active:
            for link in flows[i][3]:
                link_flows.setdefault(link, []).append(i)
        # Remaining capacity per link, in bytes/s.
        headroom: Dict[LinkId, float] = {
            link: topo.links[link].capacity_bps / 8.0 for link in link_flows
        }
        bottlenecks: List[LinkId] = []

        active_set = set(active)
        while active_set:
            # Largest equal increment all active flows can take.
            delta = min(
                flows[i][2] - achieved[i] for i in active_set
            )
            saturating_link = None
            for link, members in link_flows.items():
                n = sum(1 for i in members if i in active_set)
                if n == 0:
                    continue
                share = headroom[link] / n
                if share < delta - _EPSILON:
                    delta = share
                    saturating_link = link
            delta = max(delta, 0.0)
            # Apply the increment.
            for i in active_set:
                achieved[i] += delta
            for link, members in link_flows.items():
                n = sum(1 for i in members if i in active_set)
                headroom[link] -= delta * n
            # Freeze demand-satisfied flows and flows on saturated links.
            frozen = {
                i for i in active_set
                if achieved[i] >= flows[i][2] - _EPSILON
            }
            for link, members in link_flows.items():
                if headroom[link] <= _EPSILON:
                    crossing = [i for i in members if i in active_set]
                    if crossing:
                        if link not in bottlenecks:
                            bottlenecks.append(link)
                        frozen.update(crossing)
            if not frozen:
                # Numerical stall guard: freeze everything.
                frozen = set(active_set)
            active_set -= frozen

        result_flows = []
        for i, (u, v, demand, path) in enumerate(flows):
            rate = demand if not path else achieved[i]
            result_flows.append(
                FlowAllocation(vm_u=u, vm_v=v, demand=demand, achieved=rate)
            )
        return FairShareResult(flows=result_flows, bottleneck_links=bottlenecks)
