"""Network energy model and energy-derived link weights (paper §II, §VIII).

The paper notes that "link weight assignment can be based on DC operator
policy to reflect diverse metrics, such as, e.g., energy consumption" and
concludes that S-CORE "can be exploited to optimise different performance
objectives".  This module makes that concrete:

* a per-switch energy model (idle floor + per-port utilization-proportional
  draw, the standard abstraction from Mahadevan et al.'s switch power
  profiling), evaluated from the link loads of an allocation;
* :func:`energy_link_weights` — weights ``c_i`` proportional to the energy
  cost of carrying a byte at each layer, so running S-CORE against them
  minimizes a network-energy proxy instead of the generic cost;
* VMFlow-style accounting of how many switches could be powered down once
  traffic is localized (the consolidation-for-energy angle of [10]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.allocation import Allocation
from repro.core.cost import LinkWeights
from repro.sim.network import LinkLoadCalculator
from repro.topology.base import Topology
from repro.traffic.matrix import TrafficMatrix
from repro.util.validation import check_non_negative, check_positive

#: Nominal power draw per switch class, watts.  ToR switches are cheap
#: shallow-buffer boxes; aggregation and core are high-density chassis.
DEFAULT_IDLE_W = {1: 90.0, 2: 300.0, 3: 900.0}
#: Utilization-proportional dynamic component (full-load extra watts per link).
DEFAULT_DYNAMIC_W = {1: 15.0, 2: 60.0, 3: 180.0}


@dataclass(frozen=True)
class EnergyModel:
    """Idle + utilization-proportional switch/link energy model.

    ``idle_w[level]`` is charged per *switch-facing link* at that layer
    whenever the link is active (carries any traffic); ``dynamic_w[level]``
    scales linearly with the link's utilization.
    """

    idle_w: Optional[Dict[int, float]] = None
    dynamic_w: Optional[Dict[int, float]] = None

    def _idle(self) -> Dict[int, float]:
        merged = dict(DEFAULT_IDLE_W)
        merged.update(self.idle_w or {})
        return merged

    def _dynamic(self) -> Dict[int, float]:
        merged = dict(DEFAULT_DYNAMIC_W)
        merged.update(self.dynamic_w or {})
        return merged

    def network_power_w(
        self,
        topology: Topology,
        allocation: Allocation,
        traffic: TrafficMatrix,
        sleep_idle_links: bool = True,
    ) -> float:
        """Total network power for the given placement and workload.

        With ``sleep_idle_links`` (the VMFlow assumption), links carrying
        no traffic draw nothing — so localizing traffic lets upper-layer
        links sleep.  Without it, only the dynamic component varies.
        """
        idle = self._idle()
        dynamic = self._dynamic()
        utils = LinkLoadCalculator(topology).utilizations(allocation, traffic)
        total = 0.0
        for link_id, utilization in utils.items():
            level = topology.link_level(link_id)
            if utilization > 0 or not sleep_idle_links:
                total += idle[level] / max(1, self._links_per_switch(topology, level))
                total += dynamic[level] * min(1.0, utilization)
        return total

    def sleepable_links(
        self,
        topology: Topology,
        allocation: Allocation,
        traffic: TrafficMatrix,
    ) -> Dict[int, int]:
        """Idle (power-down-able) link count per level."""
        utils = LinkLoadCalculator(topology).utilizations(allocation, traffic)
        out: Dict[int, int] = {level: 0 for level in range(1, topology.max_level + 1)}
        for link_id, utilization in utils.items():
            if utilization == 0.0:
                out[topology.link_level(link_id)] += 1
        return out

    @staticmethod
    def _links_per_switch(topology: Topology, level: int) -> int:
        """Rough links-per-switch divisor so idle power is charged once
        per switch rather than once per port."""
        n_links = len(topology.links_at_level(level))
        if level == 1:
            n_switches = topology.n_racks
        elif level == 2:
            n_switches = max(1, len({
                link[1] for link in topology.links_at_level(level)
            }))
        else:
            n_switches = max(1, len({
                link[1] for link in topology.links_at_level(level)
            }))
        return max(1, n_links // n_switches)


def energy_link_weights(
    model: EnergyModel = EnergyModel(),
    reference_rate_bps: float = 1e9,
) -> LinkWeights:
    """Link weights proportional to per-byte energy at each layer.

    The per-byte energy of a layer is its dynamic power at full load
    divided by the reference line rate; weights are normalized so
    ``c_1 = 1``.  Feeding these into :class:`repro.core.cost.CostModel`
    turns S-CORE into a network-energy minimizer (§VIII's "different
    performance objectives").
    """
    check_positive("reference_rate_bps", reference_rate_bps)
    dynamic = model._dynamic()
    per_byte = {
        level: dynamic[level] / reference_rate_bps for level in sorted(dynamic)
    }
    base = per_byte[1]
    weights = tuple(per_byte[level] / base for level in sorted(per_byte))
    # Guard: the model must keep upper layers strictly more expensive,
    # otherwise localization has no energy incentive.
    return LinkWeights(weights=weights)
