"""Continuous-time event-queue runner: S-CORE under fire, mid-round.

The paper's token protocol runs in a *live* datacenter — tenants arrive
and leave, traffic drifts, racks fail — while migration rounds are in
flight.  This module closes that gap: a heap of timestamped
:class:`Event` objects is pumped into the scheduler's wave loop through
the ``event_pump`` seam of :meth:`SCOREScheduler.run`, so events land
*between waves* of :class:`~repro.core.rounds.BatchedRoundEngine` at
their simulated due time — not merely between runs.

Timestamp semantics
-------------------
Simulated time advances ``token_interval_s`` per token hold (the paper's
Fig. 3 time axis); the scheduler's clock persists across runs, and a
retired VM's remaining holds still consume their ticks (settled with the
``retired`` reason), so a round's duration is fixed at its visit-order
snapshot.  Within a round, the pump runs after every applied wave at the
time of the wave's last settled hold — wave granularity is the finest
injection point the batched protocol admits (a wave is atomic by
construction).  :meth:`EventQueueRunner.schedule_at_round` converts
"round units" (fractions of one full token circulation of the *initial*
population) to seconds once, at runner construction.

Correctness contract
--------------------
Every event mutates state exclusively through the scheduler's
incremental churn/delta APIs (``admit_vms``/``retire_vms``/
``apply_traffic_delta``/``drain_hosts``/``set_host_capacity``/
``set_bandwidth_threshold``), which route through the fast engine's
footprint invalidation — so the persistent round-score cache stays
bit-exact and the cached and uncached wave loops remain twins under any
injection schedule (``tests/test_event_interleaving.py`` pins this).
``validate=True`` additionally runs
:func:`repro.util.validation.check_engine_invariants` after every
applied event — the opt-in per-event debug hook.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cluster.allocation import CapacityError
from repro.cluster.placement import place_arrivals
from repro.core.scheduler import SchedulerReport, SCOREScheduler
from repro.util.validation import check_engine_invariants, check_positive


class Event:
    """One timestamped mutation of the running system.

    Subclasses implement :meth:`apply`, mutating state only through the
    scheduler's incremental APIs, and return whether anything actually
    changed (``False`` — e.g. a full cluster rejecting arrivals — lets
    the pump skip the cost re-anchor).  ``apply`` may schedule follow-up
    events (staggered restores, budget lifts) via ``runner.schedule``.
    """

    #: Admission class (see :mod:`repro.service.admission`): rate-only
    #: events carry no structural churn — under overload they may be
    #: coalesced into a pending peer or shed outright.  Structural
    #: events (arrivals, retirements, outages, capacity changes — the
    #: default) are never dropped.
    RATE_ONLY = False

    def apply(self, runner: "EventQueueRunner", now: float) -> bool:
        raise NotImplementedError

    def coalesce(self, other: "Event") -> Optional["Event"]:
        """Merge a *later* rate-only event into this one, or ``None``.

        Only consulted for ``RATE_ONLY`` events under admission-control
        overload; the merged event replaces ``self`` in the queue.
        """
        return None

    def describe(self) -> str:
        """One-line human description (CLI tables, logs)."""
        return type(self).__name__


@dataclass(frozen=True)
class AppliedEvent:
    """Log record of one pumped event."""

    time_s: float
    event: Event
    changed: bool


class Arrival(Event):
    """A tenant burst arrives and wires hot flows to the running system.

    ``count`` VMs are minted by the environment's placement manager (the
    scenario config's uniform RAM/CPU shape, preserving the engine's
    uniform-population fast path), placed near the hottest existing VM's
    rack (spilling per :func:`~repro.cluster.placement.place_arrivals`),
    admitted through the scheduler, and wired at ``rate`` to that VM
    plus a ``rate``/4 chain among themselves.  A full cluster clips the
    burst; no feasible placement at all is a no-op.
    """

    def __init__(self, count: int, rate: float = 500.0) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        check_positive("rate", rate)
        self.count = count
        self.rate = rate
        #: VM ids admitted by the last apply (for paired Retirements).
        self.admitted: Tuple[int, ...] = ()

    def apply(self, runner: "EventQueueRunner", now: float) -> bool:
        environment = runner.environment
        if environment is None:
            raise RuntimeError(
                "Arrival events need a runner built with an environment "
                "(the placement manager mints the VMs)"
            )
        scheduler = runner.scheduler
        allocation = scheduler.allocation
        matrix = scheduler.traffic
        free = environment.cluster.total_vm_slots - allocation.n_vms
        size = min(self.count, max(0, free))
        if size == 0:
            return False
        seed_vm = max(
            allocation.vm_ids(), key=lambda v: (matrix.vm_load(v), -v)
        )
        rack = allocation.topology.rack_of(allocation.server_of(seed_vm))
        config = environment.config
        vms = environment.manager.create_vms(
            size, ram_mb=config.vm_ram_mb, cpu=config.vm_cpu
        )
        try:
            hosts = place_arrivals(allocation, vms, preferred_rack=rack)
        except CapacityError:
            return False
        scheduler.admit_vms(vms, hosts)
        delta = [(vm.vm_id, seed_vm, self.rate) for vm in vms]
        delta += [
            (vms[i].vm_id, vms[i + 1].vm_id, self.rate / 4.0)
            for i in range(len(vms) - 1)
        ]
        scheduler.apply_traffic_delta(delta)
        self.admitted = tuple(vm.vm_id for vm in vms)
        return True

    def describe(self) -> str:
        return f"arrival x{self.count} @ {self.rate:g}"


class Retirement(Event):
    """Tenant departures: ``count`` VMs leave (flows cease, token shrinks).

    ``vm_ids`` retires an explicit set; otherwise ``pick`` selects
    deterministically from the live population: ``hottest``/``coldest``
    by aggregate traffic load, ``newest``/``oldest`` by VM id.  The
    token always keeps at least one entry (the departure set is clipped),
    and ids that already left are skipped — a Retirement scheduled
    against a VM another event removed degrades to a no-op, not a crash.
    """

    PICKS = ("hottest", "coldest", "newest", "oldest")

    def __init__(
        self,
        count: int = 1,
        pick: str = "newest",
        vm_ids: Sequence[int] = (),
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if pick not in self.PICKS:
            raise ValueError(f"unknown pick {pick!r}; known: {self.PICKS}")
        self.count = count
        self.pick = pick
        self.vm_ids = tuple(int(v) for v in vm_ids)

    def _select(self, scheduler: SCOREScheduler) -> List[int]:
        alive = list(scheduler.token.vm_ids)
        if self.vm_ids:
            chosen = [v for v in self.vm_ids if v in scheduler.allocation]
        else:
            matrix = scheduler.traffic
            if self.pick == "hottest":
                alive.sort(key=lambda v: (-matrix.vm_load(v), v))
            elif self.pick == "coldest":
                alive.sort(key=lambda v: (matrix.vm_load(v), v))
            elif self.pick == "newest":
                alive.sort(reverse=True)
            else:  # oldest
                alive.sort()
            chosen = alive[: self.count]
        # The token refuses to lose its last entry; clip, don't crash.
        survivors = len(alive) - len(set(chosen) & set(alive))
        while chosen and survivors < 1:
            survivors += 1
            chosen.pop()
        return chosen

    def apply(self, runner: "EventQueueRunner", now: float) -> bool:
        chosen = self._select(runner.scheduler)
        if not chosen:
            return False
        runner.scheduler.retire_vms(chosen)
        return True

    def describe(self) -> str:
        if self.vm_ids:
            return f"retire {list(self.vm_ids)}"
        return f"retire x{self.count} ({self.pick})"


class TrafficSurge(Event):
    """Traffic drift burst: the ``top_pairs`` heaviest pairs scale by
    ``factor`` (a flash surge > 1, a cool-down < 1), through the
    scheduler's paired delta path.

    A surge is pure rate drift — no VM appears, leaves or moves — so it
    is the one event class admission control may shed under overload,
    and two surges over the same pair window compose multiplicatively
    (:meth:`coalesce`)."""

    RATE_ONLY = True

    def __init__(self, factor: float, top_pairs: int = 8) -> None:
        check_positive("factor", factor)
        if top_pairs < 1:
            raise ValueError(f"top_pairs must be >= 1, got {top_pairs}")
        self.factor = factor
        self.top_pairs = top_pairs

    def coalesce(self, other: Event) -> Optional["TrafficSurge"]:
        if (
            isinstance(other, TrafficSurge)
            and other.top_pairs == self.top_pairs
        ):
            return TrafficSurge(
                self.factor * other.factor, top_pairs=self.top_pairs
            )
        return None

    def apply(self, runner: "EventQueueRunner", now: float) -> bool:
        matrix = runner.scheduler.traffic
        ranked = sorted(
            matrix.pairs(), key=lambda p: (-p[2], p[0], p[1])
        )[: self.top_pairs]
        if not ranked or self.factor == 1.0:
            return False
        delta = [(u, v, rate * self.factor) for u, v, rate in ranked]
        return runner.scheduler.apply_traffic_delta(delta) > 0

    def describe(self) -> str:
        return f"surge top-{self.top_pairs} x{self.factor:g}"


class CapacityChange(Event):
    """Resize hosts in place (server upgrades / degraded slots).

    ``max_vms`` is clamped to each host's current occupancy — a shrink
    below usage models a *capacity budget* change, not an eviction, so
    it never raises; pair with :class:`Outage` for evacuations.
    """

    def __init__(
        self,
        hosts: Sequence[int],
        max_vms: Optional[int] = None,
        nic_bps: Optional[float] = None,
    ) -> None:
        self.hosts = tuple(int(h) for h in hosts)
        if not self.hosts:
            raise ValueError("CapacityChange needs at least one host")
        self.max_vms = max_vms
        self.nic_bps = nic_bps

    def apply(self, runner: "EventQueueRunner", now: float) -> bool:
        scheduler = runner.scheduler
        changed = False
        for host in self.hosts:
            max_vms = self.max_vms
            if max_vms is not None:
                in_use = len(scheduler.allocation.vms_on(host))
                max_vms = max(int(max_vms), in_use)
            scheduler.set_host_capacity(
                host, max_vms=max_vms, nic_bps=self.nic_bps
            )
            changed = True
        return changed

    def describe(self) -> str:
        return f"capacity {list(self.hosts)} -> max_vms={self.max_vms}"


class Outage(Event):
    """Correlated failure: whole racks and/or pods go dark.

    Every host of the named racks/pods is evacuated and taken offline
    (``drain_hosts(offline=True)`` — slot capacity zeroed so no round
    migrates anything back).  When the survivors cannot absorb the
    evacuees the drain stops at the stuck VM (the partial evacuation
    stands; the un-drained hosts stay up) — a failed failover, not a
    crash of the simulation.  ``restore_after`` schedules one
    :class:`Restore` per rack, staggered ``stagger_s`` apart in rack
    order — the rolling recovery of a real incident.
    """

    def __init__(
        self,
        racks: Sequence[int] = (),
        pods: Sequence[int] = (),
        restore_after: Optional[float] = None,
        stagger_s: float = 0.0,
    ) -> None:
        self.racks = tuple(int(r) for r in racks)
        self.pods = tuple(int(p) for p in pods)
        if not self.racks and not self.pods:
            raise ValueError("Outage needs at least one rack or pod")
        if restore_after is not None:
            check_positive("restore_after", restore_after)
        if stagger_s < 0:
            raise ValueError(f"stagger_s must be >= 0, got {stagger_s}")
        self.restore_after = restore_after
        self.stagger_s = stagger_s

    def _failed_racks(self, topology) -> List[int]:
        racks = set(self.racks)
        if self.pods:
            pods = set(self.pods)
            for host in topology.hosts:
                if topology.pod_of(host) in pods:
                    racks.add(topology.rack_of(host))
        return sorted(racks)

    def apply(self, runner: "EventQueueRunner", now: float) -> bool:
        scheduler = runner.scheduler
        topology = scheduler.allocation.topology
        racks = self._failed_racks(topology)
        hosts = [h for rack in racks for h in topology.hosts_in_rack(rack)]
        try:
            scheduler.drain_hosts(hosts, offline=True)
        except CapacityError:
            # Survivors full: the drain stopped at the stuck VM, earlier
            # evacuations stand, nothing went offline.  Still a change.
            pass
        if self.restore_after is not None:
            for i, rack in enumerate(racks):
                runner.schedule(
                    now + self.restore_after + i * self.stagger_s,
                    Restore(topology.hosts_in_rack(rack)),
                )
        return True

    def describe(self) -> str:
        parts = []
        if self.racks:
            parts.append(f"racks {list(self.racks)}")
        if self.pods:
            parts.append(f"pods {list(self.pods)}")
        return "outage " + ", ".join(parts)


class Restore(Event):
    """Recovery: hosts taken offline by an :class:`Outage` (or a manual
    offline drain) get their saved capacity back and become migration
    targets again at the next feasibility probe."""

    def __init__(self, hosts: Sequence[int]) -> None:
        self.hosts = tuple(int(h) for h in hosts)
        if not self.hosts:
            raise ValueError("Restore needs at least one host")

    def apply(self, runner: "EventQueueRunner", now: float) -> bool:
        runner.scheduler.restore_hosts(self.hosts)
        return True

    def describe(self) -> str:
        return f"restore hosts {self.hosts[0]}..{self.hosts[-1]}"


class BandwidthCrunch(Event):
    """§V-C budget squeeze: migration-bandwidth contention caps the
    fraction of a target NIC that post-migration egress may use.
    ``lift_after`` schedules the squeeze's end (budget back to
    ``lift_to``, default unlimited)."""

    def __init__(
        self,
        threshold: Optional[float],
        lift_after: Optional[float] = None,
        lift_to: Optional[float] = None,
    ) -> None:
        if threshold is not None and not 0 < threshold <= 1:
            raise ValueError(
                f"bandwidth_threshold must be in (0, 1], got {threshold}"
            )
        if lift_after is not None:
            check_positive("lift_after", lift_after)
        self.threshold = threshold
        self.lift_after = lift_after
        self.lift_to = lift_to

    def apply(self, runner: "EventQueueRunner", now: float) -> bool:
        runner.scheduler.set_bandwidth_threshold(self.threshold)
        if self.lift_after is not None:
            runner.schedule(
                now + self.lift_after, BandwidthCrunch(self.lift_to)
            )
        return True

    def describe(self) -> str:
        if self.threshold is None:
            return "bandwidth budget lifted"
        return f"bandwidth crunch @ {self.threshold:g}"


class EventQueueRunner:
    """Drives one :class:`SCOREScheduler` from a heap of timestamped events.

    Construction captures the *round length in seconds* — the initial
    population times ``token_interval_s`` — as the unit
    :meth:`schedule_at_round` converts with; the scheduler's persistent
    clock supplies "now".  :meth:`run` is the production path (events
    land mid-round through the wave-loop pump); :meth:`run_at_boundaries`
    is the differential twin that defers every due event to the next
    round boundary — the fuzz suite runs both against independently
    built twins and pins each against a rebuilt-from-scratch engine.

    ``validate=True`` runs :func:`check_engine_invariants` after every
    applied event (failures name the event that triggered them);
    ``on_event`` (``callable(AppliedEvent)``) observes the log as it
    grows, and ``on_before_event`` (``callable(time_s, Event)``) fires
    *before* each event applies — the write-ahead seam the journal of
    :mod:`repro.persist` records through.  ``fault`` wires a
    :class:`~repro.persist.faults.FaultPlan`'s between-waves kill point
    into the pump (its ``check_pump`` runs before any due event).
    """

    def __init__(
        self,
        scheduler: SCOREScheduler,
        environment=None,
        validate: bool = False,
        on_event: Optional[Callable[[AppliedEvent], None]] = None,
        on_before_event: Optional[Callable[[float, Event], None]] = None,
        fault=None,
    ) -> None:
        self.scheduler = scheduler
        self.environment = environment
        self.validate = validate
        self.on_event = on_event
        self.on_before_event = on_before_event
        self.fault = fault
        self.round_seconds = len(scheduler.token) * scheduler.token_interval_s
        self.log: List[AppliedEvent] = []
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0

    @property
    def pending(self) -> int:
        """Events still waiting in the queue."""
        return len(self._heap)

    def schedule(self, time_s: float, event: Event) -> None:
        """Enqueue ``event`` at absolute simulated second ``time_s``.

        Times in the past fire at the very next pump; the sequence
        number breaks same-instant ties in scheduling order.
        """
        heapq.heappush(self._heap, (float(time_s), self._seq, event))
        self._seq += 1

    def schedule_at_round(self, at_round: float, event: Event) -> None:
        """Enqueue at ``at_round`` global round units (0 = first round's
        start, 1.5 = halfway through the second round, measured against
        the population at runner construction)."""
        self.schedule(at_round * self.round_seconds, event)

    def pump(self, now: float) -> bool:
        """Apply every event due at or before ``now``; True if any changed.

        This is the callable handed to ``scheduler.run(event_pump=...)``
        — the wave loop invokes it between waves with the simulated time
        of the last settled hold.  Events an application schedules are
        themselves due-checked in the same pump (an outage's restore can
        never fire in the same pump: its time is strictly later).
        """
        if self.fault is not None:
            self.fault.check_pump(now)
        changed = False
        while self._heap and self._heap[0][0] <= now + 1e-12:
            time_s, _, event = heapq.heappop(self._heap)
            if self.on_before_event is not None:
                self.on_before_event(time_s, event)
            did = event.apply(self, now)
            changed = changed or did
            record = AppliedEvent(time_s=time_s, event=event, changed=did)
            self.log.append(record)
            if self.validate:
                check_engine_invariants(
                    self.scheduler,
                    context=f"{event.describe()} @ t={time_s:.3f}s",
                )
            if self.on_event is not None:
                self.on_event(record)
        return changed

    def run(self, n_iterations: int = 5, **kwargs) -> SchedulerReport:
        """Run the scheduler with mid-round event injection (the real
        continuous-time semantics).  Events already due at the current
        clock are applied before the round order is snapshot."""
        self.pump(self.scheduler.clock)
        return self.scheduler.run(
            n_iterations=n_iterations, event_pump=self.pump, **kwargs
        )

    def run_at_boundaries(
        self, n_iterations: int = 5, **kwargs
    ) -> List[SchedulerReport]:
        """The round-boundary twin: every due event defers to the nearest
        round boundary (one scheduler run per iteration, pumping between
        them).  Same events, same total simulated time — only the
        injection granularity differs."""
        reports: List[SchedulerReport] = []
        for _ in range(n_iterations):
            self.pump(self.scheduler.clock)
            reports.append(self.scheduler.run(n_iterations=1, **kwargs))
        self.pump(self.scheduler.clock)
        return reports
