"""Atomic, checksummed, generation-versioned snapshots of warm state.

A snapshot file holds two parts::

    {"format": "score-snapshot/v1", "generation": 7, "payload_bytes": N,
     "payload_sha256": "...", "meta": {...}}\\n
    <pickle payload, N bytes>

The one-line JSON header is self-describing (format tag, generation,
payload length and SHA-256) and ``meta`` carries caller context — for
scheduler snapshots the journal position the snapshot covers, so
recovery knows which journal suffix still applies.  The payload is a
single :mod:`pickle` of one state object graph; pickling the whole
graph at once preserves the identity sharing the engine relies on (the
scheduler, the placement manager and the fast engine all referencing
*the same* allocation and traffic matrix).

Durability discipline (the write path, via :class:`StorageIO`):

1. serialize fully in memory — nothing touches disk on a failed pickle;
2. write to ``<final>.tmp`` in the destination directory, ``flush`` +
   ``fsync``;
3. ``os.replace`` onto the final generation-numbered name (atomic on
   POSIX);
4. ``fsync`` the directory so the rename itself is durable.

A torn write therefore only ever produces a torn *temp* file on a
crash-consistent filesystem; the checksum header additionally catches
non-atomic filesystems, bit rot and truncation at read time, and
:func:`load_latest_good` degrades to the newest generation that still
verifies (the first rung of the recovery ladder — see
``docs/persistence.md``).

Transient IO errors (``OSError``) are retried with bounded exponential
backoff; the retry budget lives on :class:`StorageIO` so tests inject
deterministic fault sequences (:mod:`repro.persist.faults`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import time
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

FORMAT = "score-snapshot/v1"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{8})\.snap$")


class SnapshotError(Exception):
    """Base class for snapshot persistence failures."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot file failed verification (torn, truncated, bit-rotten).

    Carries the offending ``path`` and a one-line ``reason`` so the
    degradation ladder can report what it skipped.
    """

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"{path}: {reason}")
        self.path = str(path)
        self.reason = reason


class NoSnapshotError(SnapshotError):
    """No usable snapshot generation exists (next rung: cold rebuild)."""


class StorageIO:
    """All snapshot/journal disk writes, behind one injectable seam.

    Every write retries up to ``retries`` times on ``OSError`` with
    exponential backoff starting at ``backoff_s`` (the *sleeper* is a
    method so tests run with zero wall-clock).  The ``_pre_write`` /
    ``_post_write`` / ``_pre_append`` hooks are no-ops here; the
    fault-injection harness overrides them to tear, corrupt or crash at
    configured points without reimplementing the write discipline.
    """

    def __init__(self, retries: int = 3, backoff_s: float = 0.01) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self.backoff_s = backoff_s

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)

    def _with_retries(self, attempt_fn):
        for attempt in range(self.retries + 1):
            try:
                return attempt_fn()
            except OSError:
                if attempt == self.retries:
                    raise
                self.sleep(self.backoff_s * (2 ** attempt))

    # Fault-injection seams (see repro.persist.faults.FaultyIO).
    def _pre_write(self, path: str, blob: bytes) -> None:
        pass

    def _post_write(self, path: str, blob: bytes) -> None:
        pass

    def _pre_append(self, path: str, blob: bytes, handle) -> None:
        pass

    def write_file_atomic(self, path: str, blob: bytes) -> None:
        """Temp file + fsync + atomic rename + directory fsync."""

        def _attempt():
            self._pre_write(path, blob)
            tmp = f"{path}.tmp"
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            self._fsync_dir(os.path.dirname(path) or ".")
            self._post_write(path, blob)

        self._with_retries(_attempt)

    def append_record(self, path: str, handle, blob: bytes) -> None:
        """One journal append: write + flush + fsync (WAL durability)."""

        def _attempt():
            self._pre_append(path, blob, handle)
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())

        self._with_retries(_attempt)

    @staticmethod
    def _fsync_dir(directory: str) -> None:
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


class LoadedSnapshot(NamedTuple):
    """One successfully verified snapshot, plus what the ladder skipped."""

    path: str
    generation: int
    header: Dict[str, Any]
    state: Any
    #: ``(path, reason)`` for every newer generation that failed to verify.
    skipped: Tuple[Tuple[str, str], ...]


def snapshot_path(directory: str, generation: int) -> str:
    """The canonical file name of one snapshot generation."""
    return os.path.join(directory, f"snapshot-{generation:08d}.snap")


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """``(generation, path)`` for every snapshot file, oldest first."""
    if not os.path.isdir(directory):
        return []
    found = []
    for name in os.listdir(directory):
        match = _SNAPSHOT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found)


def next_generation(directory: str) -> int:
    """1 + the highest existing generation (1 for an empty directory)."""
    existing = list_snapshots(directory)
    return existing[-1][0] + 1 if existing else 1


def write_snapshot(
    directory: str,
    state: Any,
    meta: Optional[Dict[str, Any]] = None,
    *,
    generation: Optional[int] = None,
    io: Optional[StorageIO] = None,
) -> str:
    """Write one new snapshot generation atomically; returns its path."""
    io = io or StorageIO()
    os.makedirs(directory, exist_ok=True)
    if generation is None:
        generation = next_generation(directory)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "format": FORMAT,
        "generation": int(generation),
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "meta": dict(meta or {}),
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
    path = snapshot_path(directory, generation)
    io.write_file_atomic(path, blob)
    return path


def read_header(path: str) -> Dict[str, Any]:
    """Parse and sanity-check just the JSON header line."""
    try:
        with open(path, "rb") as handle:
            line = handle.readline()
    except OSError as exc:
        raise SnapshotCorruptError(path, f"unreadable: {exc}") from exc
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorruptError(path, f"bad header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != FORMAT:
        raise SnapshotCorruptError(
            path, f"unknown format {header.get('format') if isinstance(header, dict) else header!r}"
        )
    return header


def read_snapshot(path: str) -> Tuple[Dict[str, Any], Any]:
    """Verify and load one snapshot file: ``(header, state)``.

    Raises :class:`SnapshotCorruptError` on any verification failure —
    short payload (torn write), checksum mismatch (corruption), or an
    unpicklable payload.
    """
    header = read_header(path)
    with open(path, "rb") as handle:
        handle.readline()
        payload = handle.read()
    expected = int(header.get("payload_bytes", -1))
    if len(payload) != expected:
        raise SnapshotCorruptError(
            path, f"torn payload: {len(payload)} bytes, header says {expected}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise SnapshotCorruptError(path, "payload checksum mismatch")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise SnapshotCorruptError(path, f"unpicklable payload: {exc}") from exc
    return header, state


def load_latest_good(directory: str) -> LoadedSnapshot:
    """The degradation ladder's first rung: newest generation that verifies.

    Walks generations newest-first, skipping (and recording) every file
    that fails verification; raises :class:`NoSnapshotError` when none
    is usable — the caller's cue to cold-rebuild from the initial spec
    and replay the full journal.
    """
    skipped: List[Tuple[str, str]] = []
    for generation, path in reversed(list_snapshots(directory)):
        try:
            header, state = read_snapshot(path)
        except SnapshotCorruptError as exc:
            skipped.append((path, exc.reason))
            continue
        return LoadedSnapshot(
            path=path,
            generation=generation,
            header=header,
            state=state,
            skipped=tuple(skipped),
        )
    raise NoSnapshotError(
        f"no usable snapshot under {directory!r} "
        f"({len(skipped)} corrupt generation(s) skipped)"
    )


def _quick_verify(path: str) -> bool:
    """Cheap integrity screen: header parses, file length matches it.

    Catches torn and vanished files without reading the payload; a
    byte-flip corruption still needs the checksum, which
    :func:`read_snapshot` pays only when a generation is actually
    loaded.
    """
    try:
        header = read_header(path)
        with open(path, "rb") as handle:
            header_len = len(handle.readline())
        expected = header_len + int(header["payload_bytes"])
        return os.path.getsize(path) == expected
    except (SnapshotCorruptError, KeyError, TypeError, ValueError, OSError):
        return False


def prune_snapshots(
    directory: str, keep: int = 3
) -> List[str]:
    """Delete all but the newest ``keep`` generations; returns removals.

    ``keep`` must stay >= 2 — the ladder needs a previous generation to
    fall back to when the newest turns out corrupt.  When none of the
    newest ``keep`` generations passes a quick integrity screen (header
    + length — torn or vanished writes), the newest *older* generation
    that does pass is spared too: pruning must never delete the only
    generation the ladder could still load.  Files that vanish mid-walk
    (a concurrent ``load_latest_good`` or prune) are skipped, not
    errors.
    """
    if keep < 2:
        raise ValueError(f"keep must be >= 2, got {keep}")
    snapshots = list_snapshots(directory)
    doomed = snapshots[:-keep]
    kept = snapshots[-keep:]
    if doomed and not any(_quick_verify(path) for _, path in kept):
        for generation, path in reversed(doomed):
            if _quick_verify(path):
                doomed = [d for d in doomed if d[0] != generation]
                break
    removed = []
    for _, path in doomed:
        try:
            os.remove(path)
        except OSError:
            continue
        removed.append(path)
    return removed
