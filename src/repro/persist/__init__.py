"""Durable scheduler state: snapshots, write-ahead journal, recovery.

Three layers, bottom up:

* :mod:`repro.persist.snapshot` — versioned, checksummed, atomically
  written snapshot generations plus the :class:`StorageIO` seam every
  disk touch goes through (bounded retry/backoff, fault injection);
* :mod:`repro.persist.journal` — an append-only, CRC-framed,
  torn-tail-repairing write-ahead journal;
* :mod:`repro.persist.durable` — :class:`DurableScenarioRun`, the
  checkpointed scenario driver whose kill-at-any-point recovery the
  crash-differential suite (``tests/test_crash_recovery.py``) pins.

:mod:`repro.persist.faults` supplies the simulated-crash harness
(:class:`FaultPlan` / :class:`FaultyIO`) the recovery tests drive.
"""

from repro.persist.durable import (
    DurableScenarioRun,
    JournaledScheduler,
    RecoveryError,
    resume_durable_scenario,
    run_durable_scenario,
)
from repro.persist.faults import FaultPlan, FaultyIO, SimulatedCrash
from repro.persist.journal import JOURNAL_NAME, Journal, JournalRecord
from repro.persist.snapshot import (
    NoSnapshotError,
    SnapshotCorruptError,
    SnapshotError,
    StorageIO,
    list_snapshots,
    load_latest_good,
    prune_snapshots,
    read_header,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "DurableScenarioRun",
    "JournaledScheduler",
    "RecoveryError",
    "run_durable_scenario",
    "resume_durable_scenario",
    "FaultPlan",
    "FaultyIO",
    "SimulatedCrash",
    "Journal",
    "JournalRecord",
    "JOURNAL_NAME",
    "SnapshotError",
    "SnapshotCorruptError",
    "NoSnapshotError",
    "StorageIO",
    "list_snapshots",
    "load_latest_good",
    "prune_snapshots",
    "read_header",
    "read_snapshot",
    "write_snapshot",
]
