"""The write-ahead event journal: every mutation on disk before it lands.

One journal is an append-only text file of newline-delimited JSON
records::

    {"seq": 17, "kind": "op", "data": {...}, "crc": "9f2a11c3"}

``seq`` increases by exactly 1 per record; ``crc`` is the CRC-32 of the
record's canonical JSON (sorted keys, no spaces) *without* the ``crc``
field.  Appends are flushed and fsynced before the caller proceeds —
write-ahead semantics: when an operation's effects exist in memory, its
record already exists on disk.

Record kinds (the schema recovery interprets — see
``docs/persistence.md``):

``begin``
    The run's self-contained spec (scenario, epochs, iterations,
    checkpoint cadence).  Always record 1; the cold-rebuild rung of the
    recovery ladder reconstructs the whole environment from it.
``op``
    One state-mutating scheduler call (``admit_vms``, ``retire_vms``,
    ``apply_traffic_delta``, ``drain_hosts``, ``restore_hosts``,
    ``set_host_capacity``, ``set_bandwidth_threshold``) with resolved
    arguments, written *before* the call executes.
``event``
    One :class:`~repro.sim.eventqueue.EventQueueRunner` event at its due
    time, written before it is applied (its constituent ``op`` records
    follow).
``transition``, ``round``, ``epoch``
    Commit markers: an epoch transition, token round or epoch finished
    with the recorded outcome (cost, migrations, decision digest, next
    holder).  Replay re-executes deterministically and *verifies*
    against these.
``snapshot``
    A snapshot generation was written covering everything up to this
    point.
``compact``
    A compaction rewrite dropped every record between the ``begin``
    record and this marker's ``seq`` (they were older than every
    surviving snapshot generation, so no recovery path could need
    them).  The marker bridges the sequence chain: the scan accepts a
    forward jump exactly here, nowhere else.

Torn tails: a crash mid-append leaves a final record that is truncated
or fails its CRC.  :meth:`Journal.open` scans the file, keeps the
longest valid prefix, truncates the torn tail in place and resumes
appending after it — exactly the uncommitted work deterministic replay
regenerates.  A corrupt record *followed by valid ones* (mid-file bit
rot rather than a torn append) cannot be safely bridged, so everything
from the first bad record on is dropped too; the commit verification
pass catches any resulting divergence.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, Iterator, List, NamedTuple, Optional

from repro.persist.snapshot import StorageIO

JOURNAL_NAME = "journal.wal"


class JournalError(Exception):
    """Structural journal failure (bad seq chain on append, closed file)."""


class JournalRecord(NamedTuple):
    """One decoded journal record."""

    seq: int
    kind: str
    data: Dict[str, Any]


def _canonical(body: Dict[str, Any]) -> bytes:
    return json.dumps(
        body, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def _crc(body: Dict[str, Any]) -> str:
    return f"{zlib.crc32(_canonical(body)) & 0xFFFFFFFF:08x}"


def _decode_line(line: bytes) -> Optional[JournalRecord]:
    """One line -> record, or None for anything torn/corrupt."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(obj, dict):
        return None
    crc = obj.pop("crc", None)
    if (
        crc != _crc(obj)
        or not isinstance(obj.get("seq"), int)
        or not isinstance(obj.get("kind"), str)
        or not isinstance(obj.get("data"), dict)
    ):
        return None
    return JournalRecord(seq=obj["seq"], kind=obj["kind"], data=obj["data"])


class Journal:
    """Append-only WAL over one file, with torn-tail repair on open.

    ``sync=False`` drops the per-append fsync (tests that hammer the
    journal thousands of times; production recovery guarantees need the
    default).  All writes go through the injectable :class:`StorageIO`.
    """

    def __init__(
        self,
        path: str,
        *,
        io: Optional[StorageIO] = None,
        sync: bool = True,
    ) -> None:
        self.path = str(path)
        self._io = io or StorageIO()
        self._sync = sync
        self._records: List[JournalRecord] = []
        #: Bytes of torn/corrupt tail dropped by the open-time scan.
        self.repaired_bytes = 0
        self._scan_and_repair()
        self._handle = open(self.path, "ab")

    # -- open-time scan ------------------------------------------------

    def _scan_and_repair(self) -> None:
        if not os.path.exists(self.path):
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            with open(self.path, "ab"):
                pass
            return
        with open(self.path, "rb") as handle:
            raw = handle.read()
        pos = 0
        expected_seq = 1
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            if newline == -1:
                break  # unterminated tail: torn append
            record = _decode_line(raw[pos:newline])
            if record is None:
                break  # corrupt record; everything after is unreachable
            if record.seq != expected_seq and not (
                record.kind == "compact" and record.seq > expected_seq
            ):
                break  # broken chain (a compact marker may jump forward)
            self._records.append(record)
            expected_seq = record.seq + 1
            pos = newline + 1
        if pos < len(raw):
            self.repaired_bytes = len(raw) - pos
            with open(self.path, "rb+") as handle:
                handle.truncate(pos)

    # -- API -----------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._records[-1].seq if self._records else 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self._records)

    def append(self, kind: str, data: Dict[str, Any]) -> int:
        """Write one record durably; returns its sequence number."""
        if self._handle is None:
            raise JournalError("journal is closed")
        body = {"seq": self.last_seq + 1, "kind": str(kind), "data": data}
        line = _canonical({**body, "crc": _crc(body)}) + b"\n"
        if self._sync:
            self._io.append_record(self.path, self._handle, line)
        else:
            self._handle.write(line)
            self._handle.flush()
        record = JournalRecord(seq=body["seq"], kind=body["kind"], data=data)
        self._records.append(record)
        return record.seq

    def records(
        self, after_seq: int = 0, kinds: Optional[tuple] = None
    ) -> List[JournalRecord]:
        """Durable records with ``seq > after_seq`` (optionally filtered)."""
        return [
            r
            for r in self._records
            if r.seq > after_seq and (kinds is None or r.kind in kinds)
        ]

    def compact(self, up_to_seq: int) -> int:
        """Drop committed records with ``seq <= up_to_seq``; return count.

        The head record (the ``begin`` spec — resumes always need it)
        survives, and a ``compact`` marker at ``seq == up_to_seq``
        bridges the chain so the open-time scan still verifies.  The
        rewrite is atomic (temp file + rename via :class:`StorageIO`),
        so a crash mid-compaction leaves either the old journal or the
        new one — both recover.  Sequence numbers are preserved:
        snapshot headers referencing ``journal_seq`` positions after
        ``up_to_seq`` stay valid.  Callers must pick ``up_to_seq`` no
        newer than the oldest surviving snapshot's journal position —
        compaction removes the cold-rebuild rung for the dropped span.
        """
        if self._handle is None:
            raise JournalError("journal is closed")
        if not self._records:
            return 0
        head = self._records[0]
        suffix = [r for r in self._records if r.seq > max(up_to_seq, head.seq)]
        dropped = len(self._records) - 1 - len(suffix)
        if dropped <= 0:
            return 0
        marker = JournalRecord(
            seq=int(up_to_seq),
            kind="compact",
            data={"first_kept": int(up_to_seq) + 1, "dropped": dropped},
        )
        lines = []
        for record in (head, marker, *suffix):
            body = {
                "seq": record.seq,
                "kind": record.kind,
                "data": record.data,
            }
            lines.append(_canonical({**body, "crc": _crc(body)}) + b"\n")
        self._handle.close()
        self._handle = None
        try:
            self._io.write_file_atomic(self.path, b"".join(lines))
        finally:
            # Reopen even if the rewrite died short of the rename — the
            # old file is then still the journal and stays appendable.
            self._handle = open(self.path, "ab")
        self._records = [head, marker, *suffix]
        return dropped

    def find_first(self, kind: str) -> Optional[JournalRecord]:
        """The earliest record of one kind (the ``begin`` lookup)."""
        for record in self._records:
            if record.kind == kind:
                return record
        return None

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
